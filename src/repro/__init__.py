"""repro: reproduction of the DATE 2018 MSS/GREAT spintronics paper.

Subpackages
-----------
``repro.core``
    MSS device physics — MTJ transport, macrospin LLGS, retention,
    STT switching statistics, bias magnets, sensor and oscillator modes.
``repro.pdk``
    Process design kit: CMOS technology nodes, transistor compact model,
    corners and statistical variation.
``repro.spice``
    SPICE-class circuit simulator (MNA, DC + transient) with an MDL
    measurement layer.
``repro.cells``
    MRAM bit cell, sense amplifier, write driver, non-volatile flip-flop
    and the characterisation flow feeding VAET-STT.
``repro.nvsim``
    NVSim-class circuit-level memory latency/energy/area estimator.
``repro.vaet``
    VAET-STT: variation-aware estimation (Table 1, Figs. 7-9).
``repro.archsim``
    gem5-class trace-driven big.LITTLE system simulator.
``repro.mcpat``
    McPAT-class power/area roll-up.
``repro.magpie``
    MAGPIE cross-layer hybrid-memory exploration flow (Figs. 11-12).
``repro.dse``
    Parallel, cached design-space exploration engine: declarative
    parameter spaces (grid/LHS), content-hash keyed jobs, an on-disk
    result cache, a multiprocessing campaign runner with failure
    isolation, and Pareto frontier extraction.  ``explore_memory``
    drives VAET-STT, ``explore_system`` drives MAGPIE; the legacy
    ``DesignSpaceExplorer.sweep_subarrays`` / ``MagpieFlow.run``
    APIs are thin wrappers over it (see ``examples/dse_campaign.py``).
"""

from repro.core import (
    MSSDevice,
    MSSMode,
    design_memory_mss,
    design_oscillator_mss,
    design_sensor_mss,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MSSDevice",
    "MSSMode",
    "design_memory_mss",
    "design_oscillator_mss",
    "design_sensor_mss",
]
