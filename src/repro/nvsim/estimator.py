"""Top-level NVSim-class estimator.

Combines bank overhead and subarray leaf access into the macro-level
read/write latency, per-access energy, leakage and area — the numbers
the "Nominal" column of Table 1 reports and the inputs MAGPIE's memory
level consumes.
"""

from repro.cells.cellconfig import CellConfig
from repro.nvsim.bank import BankModel
from repro.nvsim.config import MemoryConfig
from repro.nvsim.result import MemoryEstimate
from repro.pdk.kit import ProcessDesignKit


class NVSimEstimator:
    """Variation-unaware memory macro estimator.

    Args:
        pdk: Hybrid PDK (node + MSS device).
        config: Memory organisation.
        cell_config: Optional characterised bit cell; when omitted the
            cell parameters are derived analytically from the PDK.
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        config: MemoryConfig,
        cell_config: CellConfig = None,
    ):
        self.pdk = pdk
        self.config = config
        self.bank = BankModel(pdk, config, cell_config)
        self.subarray = self.bank.subarray

    def estimate(self) -> MemoryEstimate:
        """Produce the macro estimate."""
        bank_timing = self.bank.timing()
        leaf = self.subarray.timing()
        overhead = bank_timing.overhead_delay

        read_latency = overhead + leaf.read_latency
        write_latency = overhead + leaf.write_latency

        word = self.config.word_bits
        active = self.config.active_subarrays
        read_energy = (
            bank_timing.decoder.energy
            + bank_timing.htree_energy
            + active * self.subarray.wordline_energy()
            + word * self.subarray.read_energy_per_bit()
        )
        write_energy = (
            bank_timing.decoder.energy
            + bank_timing.htree_energy
            + active * self.subarray.wordline_energy()
            + word * self.subarray.write_energy_per_bit()
        )
        leakage = (
            self.config.banks
            * self.config.subarrays_per_bank
            * self.subarray.leakage_power()
        )
        area = self.config.banks * self.bank.area()
        return MemoryEstimate(
            read_latency=read_latency,
            write_latency=write_latency,
            read_energy=read_energy,
            write_energy=write_energy,
            leakage_power=leakage,
            area=area,
        )
