"""Memory organisation configuration for the NVSim-class estimator.

Mirrors the knobs of NVSim (paper ref. [3]): array capacity and shape,
word width, bank/mat/subarray organisation, memory role (RAM vs cache)
and the cell type occupying the subarrays.
"""

import enum
import math
from dataclasses import dataclass

from repro.utils.serde import check_known_fields


class MemoryType(enum.Enum):
    """What the memory is used as (affects periphery assumptions)."""

    RAM = "ram"
    CACHE = "cache"


class CellKind(enum.Enum):
    """Bit-cell technology filling the array."""

    STT_MRAM = "stt-mram"
    SRAM = "sram"


@dataclass(frozen=True)
class MemoryConfig:
    """Organisation of one memory macro.

    Attributes:
        rows: Total bit rows (e.g. 1024 for the paper's Table 1 array).
        cols: Total bit columns.
        word_bits: Bits accessed per operation.
        banks: Independently addressable banks.
        subarray_rows: Rows per subarray (wordline segmentation).
        subarray_cols: Columns per subarray (bitline segmentation).
        memory_type: RAM or cache periphery.
        cell: Bit-cell technology.
    """

    rows: int = 1024
    cols: int = 1024
    word_bits: int = 64
    banks: int = 1
    subarray_rows: int = 256
    subarray_cols: int = 256
    memory_type: MemoryType = MemoryType.RAM
    cell: CellKind = CellKind.STT_MRAM

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "word_bits", "banks", "subarray_rows", "subarray_cols"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError("%s must be a positive power of two, got %r" % (name, value))
        if self.subarray_rows > self.rows:
            raise ValueError("subarray_rows exceeds total rows")
        if self.subarray_cols > self.cols:
            raise ValueError("subarray_cols exceeds total cols")
        if self.word_bits > self.cols:
            raise ValueError("word wider than the array")

    @property
    def capacity_bits(self) -> int:
        """Total capacity [bits]."""
        return self.rows * self.cols * self.banks

    @property
    def capacity_bytes(self) -> int:
        """Total capacity [bytes]."""
        return self.capacity_bits // 8

    @property
    def subarrays_per_bank(self) -> int:
        """Subarray count in one bank."""
        return (self.rows // self.subarray_rows) * (self.cols // self.subarray_cols)

    @property
    def active_subarrays(self) -> int:
        """Subarrays activated per access (word striped across them)."""
        return max(1, self.word_bits // min(self.word_bits, self.subarray_cols))

    @property
    def address_bits(self) -> int:
        """Row + column address width."""
        words_per_row = self.cols // self.word_bits
        return int(math.log2(self.rows)) + int(math.log2(max(words_per_row, 1)))

    def with_word_bits(self, word_bits: int) -> "MemoryConfig":
        """Copy with a different word width."""
        from dataclasses import replace

        return replace(self, word_bits=word_bits)

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (enums by value).

        The key order and value types are deterministic, so the dict can
        feed content-hash keyed caches (``repro.dse``).
        """
        return {
            "rows": self.rows,
            "cols": self.cols,
            "word_bits": self.word_bits,
            "banks": self.banks,
            "subarray_rows": self.subarray_rows,
            "subarray_cols": self.subarray_cols,
            "memory_type": self.memory_type.value,
            "cell": self.cell.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryConfig":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys or enum values (typo safety —
                a silently dropped key would poison cache keys).
        """
        check_known_fields(cls, data)
        values = dict(data)
        if "memory_type" in values:
            values["memory_type"] = MemoryType(values["memory_type"])
        if "cell" in values:
            values["cell"] = CellKind(values["cell"])
        return cls(**values)


#: The array evaluated throughout Sec. III (Table 1, Figs. 7-9).
PAPER_ARRAY = MemoryConfig(rows=1024, cols=1024, word_bits=64)
