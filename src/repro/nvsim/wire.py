"""Interconnect RC models (wordlines, bitlines, H-trees).

NVSim's delay methodology: distributed-RC lines evaluated with the
Elmore approximation,

    t_50% = 0.69 R_drv (C_wire + C_load) + 0.38 R_wire C_wire
            + 0.69 R_wire C_load,

which is accurate to a few percent for monotone step responses and —
more importantly — has exactly the scaling behaviour the cross-node
comparison of Table 1 relies on.
"""

from dataclasses import dataclass

from repro.pdk.technology import CMOSTechnology


@dataclass(frozen=True)
class WireSegment:
    """One routed wire segment.

    Attributes:
        length_um: Routed length [um].
        res_per_um: Resistance per micron [ohm/um].
        cap_per_um: Capacitance per micron [F/um].
    """

    length_um: float
    res_per_um: float
    cap_per_um: float

    def __post_init__(self) -> None:
        if self.length_um < 0.0:
            raise ValueError("wire length must be non-negative")

    @property
    def resistance(self) -> float:
        """Total wire resistance [ohm]."""
        return self.length_um * self.res_per_um

    @property
    def capacitance(self) -> float:
        """Total wire capacitance [F]."""
        return self.length_um * self.cap_per_um

    def elmore_delay(self, driver_resistance: float, load_capacitance: float) -> float:
        """50 % step delay through the segment [s]."""
        r_w, c_w = self.resistance, self.capacitance
        return (
            0.69 * driver_resistance * (c_w + load_capacitance)
            + 0.38 * r_w * c_w
            + 0.69 * r_w * load_capacitance
        )

    def switching_energy(self, voltage: float, load_capacitance: float = 0.0) -> float:
        """CV^2 energy of one full-swing transition [J]."""
        return (self.capacitance + load_capacitance) * voltage * voltage


def local_wire(tech: CMOSTechnology, length_um: float) -> WireSegment:
    """Local-layer wire (wordlines/bitlines): tighter pitch, higher RC."""
    return WireSegment(
        length_um=length_um,
        res_per_um=tech.wire_res_per_um * 2.0,
        cap_per_um=tech.wire_cap_per_um * 1.15,
    )


def intermediate_wire(tech: CMOSTechnology, length_um: float) -> WireSegment:
    """Intermediate-layer wire (intra-bank H-tree)."""
    return WireSegment(
        length_um=length_um,
        res_per_um=tech.wire_res_per_um,
        cap_per_um=tech.wire_cap_per_um,
    )


def global_wire(tech: CMOSTechnology, length_um: float) -> WireSegment:
    """Global-layer wire (bank interconnect): wide and fast."""
    return WireSegment(
        length_um=length_um,
        res_per_um=tech.wire_res_per_um * 0.35,
        cap_per_um=tech.wire_cap_per_um * 1.3,
    )


def driver_resistance(tech: CMOSTechnology, width_um: float) -> float:
    """Equivalent switching resistance of an inverter driver [ohm].

    R_drv ~ Vdd / I_on(W); the standard effective-resistance abstraction
    used by logical-effort timing.
    """
    if width_um <= 0.0:
        raise ValueError("driver width must be positive")
    return tech.vdd / tech.on_current(width_um)
