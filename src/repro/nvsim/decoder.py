"""Row/column decoder timing and energy via logical effort.

NVSim models decoders as chains of predecoders and final drivers; the
clean abstraction is logical effort: total path effort F = G*B*H, with
optimal stage count N ~ log4(F) and delay N * tau * (F^(1/N) + p).
"""

import math
from dataclasses import dataclass

from repro.pdk.technology import CMOSTechnology

#: Parasitic delay per stage in units of tau (inverter self-loading).
STAGE_PARASITIC = 1.0

#: Logical effort of the NAND-style decode stages (per input ~ 4/3).
DECODE_STAGE_EFFORT = 1.33


@dataclass(frozen=True)
class DecoderEstimate:
    """Timing/energy summary of one decoder.

    Attributes:
        delay: Address-to-wordline-select delay [s].
        energy: Switched energy per decode [J].
        stages: Chosen stage count.
    """

    delay: float
    energy: float
    stages: int


def decoder_estimate(
    tech: CMOSTechnology,
    address_bits: int,
    load_capacitance: float,
) -> DecoderEstimate:
    """Estimate a decoder driving ``load_capacitance``.

    Args:
        tech: CMOS technology node.
        address_bits: Address width feeding the decoder.
        load_capacitance: Capacitance of the selected output line [F].

    Returns:
        Logical-effort delay and CV^2 energy.
    """
    if address_bits < 1:
        raise ValueError("decoder needs at least one address bit")
    if load_capacitance <= 0.0:
        raise ValueError("load capacitance must be positive")
    tau = tech.gate_delay_fo4 / 5.0  # FO4 ~ 5 tau.
    input_cap = tech.gate_cap_per_um * 4.0 * tech.min_width_um
    electrical_effort = load_capacitance / input_cap
    # Branching: each address bit fans to true/complement plus the
    # decode tree; approximate total branching 2^bits spread over the
    # predecode levels.
    branching = 2.0 ** (address_bits / 2.0)
    logical_effort = DECODE_STAGE_EFFORT ** max(1, address_bits // 2)
    path_effort = max(logical_effort * branching * electrical_effort, 1.0)
    stages = max(2, int(round(math.log(path_effort, 4.0))))
    stage_effort = path_effort ** (1.0 / stages)
    delay = stages * tau * (stage_effort + STAGE_PARASITIC)
    # Energy: the active decode path switches ~stages gates of growing
    # size; geometric series dominated by the final driver.
    driver_cap = load_capacitance / 3.0
    switched_cap = input_cap * address_bits * 2.0 + driver_cap * 1.5 + load_capacitance
    energy = switched_cap * tech.vdd * tech.vdd
    return DecoderEstimate(delay=delay, energy=energy, stages=stages)
