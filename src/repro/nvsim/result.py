"""Result records of the NVSim-class estimator."""

from dataclasses import dataclass

from repro.utils.table import Table


@dataclass(frozen=True)
class MemoryEstimate:
    """Nominal (variation-unaware) estimate of one memory macro.

    This is the "Nominal" column of Table 1 — what plain NVSim reports
    before VAET-STT layers the variation analysis on top.

    Attributes:
        read_latency: Access time for reads [s].
        write_latency: Access time for writes [s].
        read_energy: Energy per read access [J].
        write_energy: Energy per write access [J].
        leakage_power: Total static power [W].
        area: Total macro area [m^2].
    """

    read_latency: float
    write_latency: float
    read_energy: float
    write_energy: float
    leakage_power: float
    area: float

    def render(self, title: str = "memory estimate") -> str:
        """Human-readable summary table."""
        table = Table(["metric", "value"], title=title)
        table.add_row(["read latency (ns)", self.read_latency * 1e9])
        table.add_row(["write latency (ns)", self.write_latency * 1e9])
        table.add_row(["read energy (pJ)", self.read_energy * 1e12])
        table.add_row(["write energy (pJ)", self.write_energy * 1e12])
        table.add_row(["leakage (mW)", self.leakage_power * 1e3])
        table.add_row(["area (mm^2)", self.area * 1e6])
        return table.render()
