"""NVSim-class circuit-level memory latency/energy/area model."""

from repro.nvsim.config import CellKind, MemoryConfig, MemoryType, PAPER_ARRAY
from repro.nvsim.wire import (
    WireSegment,
    driver_resistance,
    global_wire,
    intermediate_wire,
    local_wire,
)
from repro.nvsim.decoder import DecoderEstimate, decoder_estimate
from repro.nvsim.senseamp_model import SenseAmpEstimate, sense_amp_estimate
from repro.nvsim.subarray import SubarrayModel, SubarrayTiming
from repro.nvsim.bank import BankModel, BankTiming
from repro.nvsim.result import MemoryEstimate
from repro.nvsim.estimator import NVSimEstimator

__all__ = [
    "CellKind",
    "MemoryConfig",
    "MemoryType",
    "PAPER_ARRAY",
    "WireSegment",
    "driver_resistance",
    "global_wire",
    "intermediate_wire",
    "local_wire",
    "DecoderEstimate",
    "decoder_estimate",
    "SenseAmpEstimate",
    "sense_amp_estimate",
    "SubarrayModel",
    "SubarrayTiming",
    "BankModel",
    "BankTiming",
    "MemoryEstimate",
    "NVSimEstimator",
]
