"""Analytic sense-amplifier model for the array estimator.

Voltage-mode sensing: the selected cell discharges/holds the bitline
against a reference; the sense amplifier fires once the differential
reaches its offset-dominated threshold, then regenerates to full swing.

    t_develop = C_bl * dV_sense / I_signal
    t_regen   = tau_sa * ln(Vdd / (2 dV_sense))
"""

import math
from dataclasses import dataclass

from repro.pdk.technology import CMOSTechnology


@dataclass(frozen=True)
class SenseAmpEstimate:
    """Sense stage summary.

    Attributes:
        delay: Develop + regenerate delay [s].
        energy: Energy per sense operation [J].
        develop_time: Signal development component [s].
    """

    delay: float
    energy: float
    develop_time: float


def sense_amp_estimate(
    tech: CMOSTechnology,
    bitline_capacitance: float,
    signal_current: float,
    sense_margin_voltage: float = 0.05,
) -> SenseAmpEstimate:
    """Estimate the sense stage.

    Args:
        tech: CMOS node.
        bitline_capacitance: Bitline + sense node capacitance [F].
        signal_current: Differential cell-vs-reference current [A].
        sense_margin_voltage: Differential the latch needs [V] (offset
            plus noise margin).

    Returns:
        Delay/energy estimate.
    """
    if signal_current <= 0.0:
        raise ValueError("signal current must be positive")
    if bitline_capacitance <= 0.0:
        raise ValueError("bitline capacitance must be positive")
    develop = bitline_capacitance * sense_margin_voltage / signal_current
    tau_sa = 2.0 * tech.gate_delay_fo4 / 5.0
    regen = tau_sa * math.log(tech.vdd / (2.0 * sense_margin_voltage))
    # Energy: bitline partial swing + latch full swing on internal caps.
    latch_cap = 12.0 * tech.gate_cap_per_um * tech.min_width_um
    energy = (
        bitline_capacitance * sense_margin_voltage * tech.vdd
        + latch_cap * tech.vdd * tech.vdd
    )
    return SenseAmpEstimate(delay=develop + regen, energy=energy, develop_time=develop)
