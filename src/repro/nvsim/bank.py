"""Bank assembly: subarrays + decoders + H-tree routing.

A bank is a grid of subarrays; an access decodes the row/column
address, routes through the intra-bank H-tree to the selected
subarrays, performs the leaf access, and drives the word back out.
Word bits are striped across as many subarrays as needed.
"""

import math
from dataclasses import dataclass

from repro.nvsim.config import MemoryConfig
from repro.nvsim.decoder import DecoderEstimate, decoder_estimate
from repro.nvsim.subarray import SubarrayModel
from repro.nvsim.wire import driver_resistance, intermediate_wire
from repro.pdk.kit import ProcessDesignKit


@dataclass(frozen=True)
class BankTiming:
    """Bank-level access decomposition.

    Attributes:
        decoder: Row-decoder estimate.
        htree_delay: One-way H-tree routing delay [s].
        htree_energy: H-tree switching energy per access (word-wide) [J].
        output_delay: Output driver delay [s].
    """

    decoder: DecoderEstimate
    htree_delay: float
    htree_energy: float
    output_delay: float

    @property
    def overhead_delay(self) -> float:
        """Total non-leaf delay added to every access [s]."""
        return self.decoder.delay + self.htree_delay + self.output_delay


class BankModel:
    """Analytic model of one bank built from :class:`SubarrayModel`.

    Args:
        pdk: Hybrid PDK.
        config: Memory organisation.
        cell_config: Optional characterised bit-cell (else analytic).
    """

    def __init__(self, pdk: ProcessDesignKit, config: MemoryConfig, cell_config=None):
        self.pdk = pdk
        self.config = config
        self.tech = pdk.tech
        self.subarray = SubarrayModel(pdk, config, cell_config)

    def bank_side_um(self) -> float:
        """Physical side length of the (square-ish) bank [um]."""
        total_area = self.subarray.area() * self.config.subarrays_per_bank
        return math.sqrt(total_area) * 1e6

    def timing(self) -> BankTiming:
        """Bank-level overhead timing/energy."""
        side = self.bank_side_um()
        wordline_load = self.subarray.wordline.capacitance
        decoder = decoder_estimate(self.tech, self.config.address_bits, wordline_load * 2.0)
        # H-tree: address in + data out, ~half the bank side each way.
        tree = intermediate_wire(self.tech, 0.5 * side)
        r_drv = driver_resistance(self.tech, 10.0 * self.tech.min_width_um)
        htree_delay = tree.elmore_delay(r_drv, 8e-15)
        # Data H-tree: the word is heavily multiplexed onto a narrower
        # differential bus (factor 8), as in NVSim's internal-sensing
        # organisations; full-width point-to-point routing would dwarf
        # every other energy term.
        data_lines = max(8, self.config.word_bits // 8)
        htree_energy = tree.switching_energy(self.tech.vdd, 8e-15) * data_lines
        output_delay = 2.0 * self.tech.gate_delay_fo4
        return BankTiming(
            decoder=decoder,
            htree_delay=htree_delay,
            htree_energy=htree_energy,
            output_delay=output_delay,
        )

    def area(self) -> float:
        """Bank area [m^2] including routing overhead."""
        leaf = self.subarray.area() * self.config.subarrays_per_bank
        return leaf * 1.12
