"""Subarray timing/energy/area model.

The subarray is the leaf of the NVSim organisation: a rows x cols cell
matrix with its wordline drivers, bitline muxes, sense amplifiers and
write drivers.  All Table-1-relevant physics concentrates here: the
write pulse (from the MSS switching model) rides on top of the
wordline/bitline RC, and the read is bitline development + sensing.
"""

import math
from dataclasses import dataclass

from repro.cells.cellconfig import CellConfig
from repro.nvsim.config import CellKind, MemoryConfig
from repro.nvsim.senseamp_model import SenseAmpEstimate, sense_amp_estimate
from repro.nvsim.wire import WireSegment, driver_resistance, local_wire
from repro.pdk.kit import ProcessDesignKit

#: Periphery area overhead of a subarray relative to its cell matrix.
SUBARRAY_AREA_OVERHEAD = 0.35

#: Wordline driver width [um-multiples of min width].
WL_DRIVER_FACTOR = 8.0

#: Array write-driver width factor (shared per column, area-constrained,
#: hence much weaker than the characterisation bench driver).
WRITE_DRIVER_FACTOR = 1.2

#: Read bias applied to the bitline during sensing [V].
READ_BIAS = 0.06

#: Differential voltage the sense latch needs to fire reliably [V].
SENSE_MARGIN = 0.03


@dataclass(frozen=True)
class SubarrayTiming:
    """Per-subarray access decomposition.

    Attributes:
        wordline_delay: WL driver + RC delay [s].
        bitline_delay: BL charge/precharge delay [s].
        sense: Sense stage estimate (reads).
        write_pulse: Cell switching pulse width [s] (writes).
        write_current: Current delivered to one cell during writes [A].
        read_current: Cell read current [A].
    """

    wordline_delay: float
    bitline_delay: float
    sense: SenseAmpEstimate
    write_pulse: float
    write_current: float
    read_current: float

    @property
    def read_latency(self) -> float:
        """WL + BL + sense [s]."""
        return self.wordline_delay + self.bitline_delay + self.sense.delay

    @property
    def write_latency(self) -> float:
        """WL + BL + two switching pulses [s].

        Row writes are two-phase: the shared source line per column
        group can only drive one polarity at a time, so all '0' bits
        are written first, then all '1' bits.
        """
        return self.wordline_delay + self.bitline_delay + 2.0 * self.write_pulse


class SubarrayModel:
    """Analytic model of one subarray.

    Args:
        pdk: Hybrid PDK (CMOS node + MSS device).
        config: Memory organisation (subarray shape taken from it).
        cell_config: Characterised bit-cell (None = derive analytically
            from the PDK device models).
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        config: MemoryConfig,
        cell_config: CellConfig = None,
    ):
        self.pdk = pdk
        self.config = config
        self.tech = pdk.tech
        self.cell_config = cell_config
        if config.cell is CellKind.STT_MRAM:
            self._cell_area = self.tech.mram_cell_area()
        else:
            self._cell_area = self.tech.sram_cell_area()
        self._cell_pitch_um = math.sqrt(self._cell_area) * 1e6
        self._switching = pdk.switching_model()
        self._transport = pdk.mtj_transport()

    # -- geometry -----------------------------------------------------

    @property
    def wordline(self) -> WireSegment:
        """Wordline wire across the subarray."""
        return local_wire(self.tech, self.config.subarray_cols * self._cell_pitch_um)

    @property
    def bitline(self) -> WireSegment:
        """Bitline wire down the subarray."""
        return local_wire(self.tech, self.config.subarray_rows * self._cell_pitch_um)

    def area(self) -> float:
        """Subarray area including periphery [m^2]."""
        matrix = self.config.subarray_rows * self.config.subarray_cols * self._cell_area
        return matrix * (1.0 + SUBARRAY_AREA_OVERHEAD)

    # -- electrical ---------------------------------------------------

    def _wordline_delay(self) -> float:
        gate_load = (
            self.config.subarray_cols
            * self.tech.gate_cap_per_um
            * 4.0
            * self.tech.min_width_um
        )
        r_drv = driver_resistance(self.tech, WL_DRIVER_FACTOR * self.tech.min_width_um)
        return self.wordline.elmore_delay(r_drv, gate_load)

    def _bitline_delay(self, voltage_swing: float) -> float:
        r_drv = driver_resistance(
            self.tech, WRITE_DRIVER_FACTOR * self.tech.min_width_um
        )
        # Swing-scaled RC charge time.
        base = self.bitline.elmore_delay(r_drv, 2e-15)
        return base * max(voltage_swing / self.tech.vdd, 0.2)

    def _mtj_path_resistance(self, antiparallel: bool, bias: float) -> float:
        r_mtj = self._transport.state_resistance(antiparallel, bias)
        r_access = self.tech.vdd / self.tech.on_current(4.0 * self.tech.min_width_um)
        r_driver = self.tech.vdd / self.tech.on_current(
            WRITE_DRIVER_FACTOR * self.tech.min_width_um
        )
        return r_mtj + r_access + r_driver + self.bitline.resistance

    def write_current(self) -> float:
        """Nominal current delivered to one cell during a write [A].

        Worst-case polarity: writing toward AP sees the AP resistance
        for most of the pulse and source degeneration in the access
        device (folded into the path resistance).
        """
        if self.cell_config is not None:
            # Scale the characterised bench current by the ratio of bench
            # to in-array path resistance.
            bench_r = self.cell_config.resistance_antiparallel
            array_r = self._mtj_path_resistance(True, 0.5 * self.tech.vdd)
            return self.cell_config.switching_current * (
                (bench_r + 2000.0) / (array_r + 2000.0)
            )
        return self.tech.vdd / self._mtj_path_resistance(True, 0.5 * self.tech.vdd)

    def read_current(self) -> float:
        """Cell read current at the read bias [A]."""
        return READ_BIAS / self._mtj_path_resistance(True, READ_BIAS)

    def timing(self) -> SubarrayTiming:
        """Nominal (variation-unaware) subarray timing."""
        if self.config.cell is CellKind.SRAM:
            return self._sram_timing()
        write_current = self.write_current()
        write_pulse = self._switching.mean_switching_time(write_current)
        read_current = self.read_current()
        # Differential signal current between the two states.
        i_p = READ_BIAS / self._mtj_path_resistance(False, READ_BIAS)
        i_ap = READ_BIAS / self._mtj_path_resistance(True, READ_BIAS)
        signal = 0.5 * (i_p - i_ap)
        sense = sense_amp_estimate(
            self.tech, self.bitline.capacitance + 2e-15, signal,
            sense_margin_voltage=SENSE_MARGIN,
        )
        return SubarrayTiming(
            wordline_delay=self._wordline_delay(),
            bitline_delay=self._bitline_delay(self.tech.vdd),
            sense=sense,
            write_pulse=write_pulse,
            write_current=write_current,
            read_current=read_current,
        )

    def _sram_timing(self) -> SubarrayTiming:
        """6T SRAM leaf timing (the MAGPIE baseline cell)."""
        cell_current = self.tech.on_current(1.5 * self.tech.min_width_um)
        sense = sense_amp_estimate(
            self.tech, self.bitline.capacitance + 4e-15, cell_current * 0.5
        )
        fo4 = self.tech.gate_delay_fo4
        return SubarrayTiming(
            wordline_delay=self._wordline_delay(),
            bitline_delay=self._bitline_delay(0.3 * self.tech.vdd),
            sense=sense,
            write_pulse=2.0 * fo4,
            write_current=cell_current,
            read_current=cell_current,
        )

    # -- energy -------------------------------------------------------

    def read_energy_per_bit(self) -> float:
        """Energy of reading one bit [J]."""
        timing = self.timing()
        if self.config.cell is CellKind.STT_MRAM:
            read_bias = READ_BIAS
        else:
            read_bias = 0.3 * self.tech.vdd
        bitline = self.bitline.capacitance * read_bias * self.tech.vdd
        return (
            bitline
            + timing.sense.energy
            + timing.read_current * read_bias * timing.sense.develop_time
        )

    def write_energy_per_bit(self) -> float:
        """Energy of writing one bit [J]."""
        timing = self.timing()
        if self.config.cell is CellKind.SRAM:
            return self.bitline.switching_energy(self.tech.vdd) * 0.5
        cell = timing.write_current * self.tech.vdd * timing.write_pulse
        bitline = self.bitline.switching_energy(self.tech.vdd)
        return cell + bitline

    def wordline_energy(self) -> float:
        """Energy of one wordline activation [J]."""
        gate_load = (
            self.config.subarray_cols
            * self.tech.gate_cap_per_um
            * 4.0
            * self.tech.min_width_um
        )
        return self.wordline.switching_energy(self.tech.vdd, gate_load)

    def leakage_power(self) -> float:
        """Static power of the subarray [W].

        STT-MRAM cells do not leak; SRAM cells dominate their arrays.
        Periphery (drivers, sense amps) leaks in both.
        """
        cells = self.config.subarray_rows * self.config.subarray_cols
        periphery_width = (
            self.config.subarray_rows * WL_DRIVER_FACTOR
            + self.config.subarray_cols * (WRITE_DRIVER_FACTOR + 6.0)
        ) * self.tech.min_width_um
        periphery = periphery_width * self.tech.leakage_per_um * self.tech.vdd
        if self.config.cell is CellKind.SRAM:
            cell_leak = cells * 2.0 * self.tech.min_width_um * self.tech.leakage_per_um * self.tech.vdd * 0.3
            return periphery + cell_leak
        return periphery
