"""McPAT-class component power/energy roll-up."""

from repro.mcpat.components import Component, EnergyBreakdown, estimate_energy
from repro.mcpat.report import render_breakdown, render_summary

__all__ = [
    "Component",
    "EnergyBreakdown",
    "estimate_energy",
    "render_breakdown",
    "render_summary",
]
