"""Rendering helpers for energy breakdowns."""

from typing import Iterable, List

from repro.mcpat.components import Component, EnergyBreakdown
from repro.utils.table import Table


def render_breakdown(breakdowns: List[EnergyBreakdown], title: str) -> str:
    """Tabulate component energies across scenarios (Fig.-11 style).

    Args:
        breakdowns: One breakdown per scenario (same workload).
        title: Table title; scenario columns are numbered in order.
    """
    headers = ["component"] + [b.workload for b in breakdowns]
    table = Table(headers, title=title)
    for component in Component:
        row = [component.value]
        for breakdown in breakdowns:
            row.append(breakdown.component_total(component) * 1e3)
        table.add_row(row)
    totals = ["total (mJ)"] + [b.total_energy * 1e3 for b in breakdowns]
    table.add_row(totals)
    return table.render()


def render_summary(breakdowns: Iterable[EnergyBreakdown], title: str) -> str:
    """Tabulate time/energy/EDP of several runs (Fig.-12 style)."""
    table = Table(
        ["workload", "time (ms)", "energy (mJ)", "EDP (uJ*s)"], title=title
    )
    for breakdown in breakdowns:
        table.add_row(
            [
                breakdown.workload,
                breakdown.exec_time * 1e3,
                breakdown.total_energy * 1e3,
                breakdown.edp * 1e6,
            ]
        )
    return table.render()
