"""Component-wise energy accounting (the McPAT substitute).

McPAT "allows us to analyze not only the energy consumption related to
the memory components, but also to evaluate the energy of the complete
system including the processor cores, buses, and memory controller"
(Sec. IV-C).  Components here mirror the Fig. 11 breakdown: big cores,
LITTLE cores, L1 caches, the two L2 caches, interconnect, memory
controller and DRAM.
"""

import enum
from dataclasses import dataclass
from typing import Dict

from repro.archsim.soc import SoCConfig
from repro.archsim.stats import ActivityReport


class Component(enum.Enum):
    """Energy breakdown components (the bars of Fig. 11)."""

    BIG_CORES = "big-cores"
    LITTLE_CORES = "little-cores"
    L1_CACHES = "l1-caches"
    L2_BIG = "l2-big"
    L2_LITTLE = "l2-little"
    INTERCONNECT = "interconnect"
    MEMORY_CONTROLLER = "memory-controller"
    DRAM = "dram"


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component dynamic + static energy of one run.

    Attributes:
        workload: Kernel name.
        exec_time: Run time the static energy integrates over [s].
        dynamic: Dynamic energy per component [J].
        static: Leakage energy per component [J].
    """

    workload: str
    exec_time: float
    dynamic: Dict[Component, float]
    static: Dict[Component, float]

    def component_total(self, component: Component) -> float:
        """Dynamic + static energy of one component [J]."""
        return self.dynamic.get(component, 0.0) + self.static.get(component, 0.0)

    @property
    def total_energy(self) -> float:
        """Whole-SoC energy [J]."""
        return sum(self.dynamic.values()) + sum(self.static.values())

    @property
    def edp(self) -> float:
        """Energy-delay product [J*s] (the Fig. 12 merit)."""
        return self.total_energy * self.exec_time


def estimate_energy(soc: SoCConfig, report: ActivityReport) -> EnergyBreakdown:
    """Roll an activity report up into the component energy breakdown."""
    time = report.exec_time
    dynamic: Dict[Component, float] = {}
    static: Dict[Component, float] = {}

    # Cores: EPI * instructions + per-core leakage over the run.
    for component, cluster_cfg, activity in (
        (Component.BIG_CORES, soc.big, report.big),
        (Component.LITTLE_CORES, soc.little, report.little),
    ):
        core = cluster_cfg.core
        dynamic[component] = core.energy_per_instruction * activity.instructions
        static[component] = core.leakage_power * cluster_cfg.num_cores * time

    # L1: per-access energy + leakage for num_cores private caches.
    l1_dynamic = 0.0
    l1_static = 0.0
    for cluster_cfg, activity in ((soc.big, report.big), (soc.little, report.little)):
        tech = cluster_cfg.l1_tech
        accesses = activity.l1_reads + activity.l1_writes
        l1_dynamic += accesses * tech.read_energy
        capacity_mb = cluster_cfg.l1_kb / 1024.0 * cluster_cfg.num_cores
        l1_static += tech.leakage_per_mb * capacity_mb * time
    dynamic[Component.L1_CACHES] = l1_dynamic
    static[Component.L1_CACHES] = l1_static

    # L2 slices: technology-dependent access energies and leakage —
    # the terms the SRAM -> STT-MRAM swap changes.
    for component, cluster_cfg, activity in (
        (Component.L2_BIG, soc.big, report.big),
        (Component.L2_LITTLE, soc.little, report.little),
    ):
        tech = cluster_cfg.l2_tech
        dynamic[component] = (
            activity.l2_reads * tech.read_energy
            + activity.l2_writes * tech.write_energy
        )
        static[component] = tech.leakage_per_mb * cluster_cfg.l2_mb * time

    # Interconnect and memory path.
    l2_traffic = report.big.l2_accesses + report.little.l2_accesses
    dram_accesses = (
        report.big.dram_reads + report.big.dram_writes
        + report.little.dram_reads + report.little.dram_writes
    )
    dynamic[Component.INTERCONNECT] = soc.bus_energy_per_access * (
        l2_traffic + dram_accesses
    )
    static[Component.INTERCONNECT] = 5e-3 * time
    dynamic[Component.MEMORY_CONTROLLER] = 8e-12 * dram_accesses
    static[Component.MEMORY_CONTROLLER] = soc.memory_controller_leakage * time
    dram_tech = soc.dram
    dynamic[Component.DRAM] = dram_accesses * dram_tech.read_energy
    static[Component.DRAM] = 60e-3 * time  # LPDDR background/refresh.

    return EnergyBreakdown(
        workload=report.workload, exec_time=time, dynamic=dynamic, static=static
    )
