"""Analytic core timing models (big OoO and LITTLE in-order).

The big.LITTLE clusters of the paper's Exynos-5-like SoC model differ
in how much memory latency they hide: the in-order LITTLE exposes
essentially every L1-miss cycle, while the out-of-order big overlaps a
large fraction through its instruction window and MLP.  The analytic
model is the standard first-order decomposition

    cycles = N_instr * CPI_base / issue_width
           + exposed_miss_cycles (scaled by the overlap factor)
"""

from dataclasses import asdict, dataclass

from repro.utils.serde import check_known_fields


@dataclass(frozen=True)
class CoreModel:
    """Timing/energy personality of one core type.

    Attributes:
        name: "big" (OoO) or "little" (in-order).
        frequency: Clock frequency [Hz].
        issue_width: Sustained issue width.
        stall_overlap: Fraction of memory stall cycles hidden by the
            core (0 = in-order exposes all, ~0.6 = aggressive OoO).
        mlp: Memory-level parallelism divisor on DRAM stalls.
        energy_per_instruction: Core dynamic energy per instruction [J].
        leakage_power: Static power per core [W].
        write_stall_fraction: Fraction of L2/DRAM *write* latency that
            actually stalls the core (store buffers hide the rest).
    """

    name: str
    frequency: float
    issue_width: float
    stall_overlap: float
    mlp: float
    energy_per_instruction: float
    leakage_power: float
    write_stall_fraction: float

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (cache-key safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CoreModel":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        return cls(**data)

    def base_cycles(self, instructions: int, base_cpi: float) -> float:
        """Compute-only cycle count."""
        return instructions * base_cpi / self.issue_width

    def exposed(self, stall_cycles: float) -> float:
        """Stall cycles after OoO overlap."""
        return stall_cycles * (1.0 - self.stall_overlap)


#: Cortex-A15-class out-of-order core (the "big" cluster), 45 nm.
BIG_CORE_45NM = CoreModel(
    name="big",
    frequency=2.0e9,
    issue_width=3.0,
    stall_overlap=0.55,
    mlp=2.5,
    energy_per_instruction=180e-12,
    leakage_power=55e-3,
    write_stall_fraction=0.12,
)

#: Cortex-A7-class in-order core (the "LITTLE" cluster), 45 nm.
LITTLE_CORE_45NM = CoreModel(
    name="little",
    frequency=1.4e9,
    issue_width=1.0,
    stall_overlap=0.05,
    mlp=1.2,
    energy_per_instruction=55e-12,
    leakage_power=9e-3,
    write_stall_fraction=0.35,
)
