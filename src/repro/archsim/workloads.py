"""Synthetic Parsec/MiBench-like workload descriptors and traces.

The paper's MAGPIE evaluation runs Parsec 3.0 kernels (Fig. 11 shows
bodytrack; Fig. 12 sweeps the suite) and mentions MiBench/SPEC for the
single-core studies.  Without the binaries or gem5, each kernel is
replaced by a *statistical workload descriptor* — instruction count,
memory intensity, read/write mix, working-set size and temporal
locality — from which both a synthetic address trace (detailed mode)
and a closed-form reuse-distance model (analytic mode) are derived.

The parameters are set from the well-known Parsec characterisation
studies (working sets, memory intensity and write fractions per
kernel), which is what determines each kernel's response to the
L2 capacity/latency/energy changes MAGPIE studies.
"""

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.utils.serde import check_known_fields


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Statistical descriptor of one benchmark kernel.

    Attributes:
        name: Kernel name.
        instructions: Dynamic instruction count simulated per core.
        memory_fraction: Fraction of instructions touching memory.
        write_fraction: Fraction of memory accesses that are writes.
        working_set_kb: Dominant working set per thread [KiB].
        reuse_sigma: Lognormal sigma of the reuse-distance distribution
            (wide = flat locality, narrow = tight loops).
        streaming_fraction: Fraction of accesses with effectively
            infinite reuse distance (cold/streaming misses).
        base_cpi: Non-memory CPI of the kernel's instruction mix.
        parallel_fraction: Amdahl parallel fraction across threads.
        median_fraction: Median reuse distance as a fraction of the
            working set.  Compute-bound kernels re-touch small hot
            structures (~0.02); memory-bound ones sweep broadly (~0.125).
    """

    name: str
    instructions: int
    memory_fraction: float
    write_fraction: float
    working_set_kb: float
    reuse_sigma: float
    streaming_fraction: float
    base_cpi: float
    parallel_fraction: float
    median_fraction: float = 0.125

    def __post_init__(self) -> None:
        if not 0.0 < self.memory_fraction < 1.0:
            raise ValueError("memory fraction must be in (0, 1)")
        if not 0.0 <= self.write_fraction < 1.0:
            raise ValueError("write fraction must be in [0, 1)")
        if self.working_set_kb <= 0.0:
            raise ValueError("working set must be positive")

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (cache-key safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadDescriptor":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        return cls(**data)

    @property
    def memory_accesses(self) -> int:
        """Total memory operations."""
        return int(self.instructions * self.memory_fraction)

    def reuse_distance_survival(self, lines: float, line_bytes: int = 64) -> float:
        """P(reuse distance > ``lines``) — the analytic miss model.

        Reuse distances (in cache lines) follow a lognormal body whose
        median tracks a fraction of the working set, plus a streaming
        tail that never re-references in cache range.
        """
        if lines <= 0.0:
            return 1.0
        ws_lines = self.working_set_kb * 1024.0 / line_bytes
        median = max(ws_lines * self.median_fraction, 4.0)
        sigma = self.reuse_sigma
        z = (math.log(lines) - math.log(median)) / sigma
        body_survival = 0.5 * math.erfc(z / math.sqrt(2.0))
        return self.streaming_fraction + (1.0 - self.streaming_fraction) * body_survival


#: Parsec-3.0-like kernel set (parameters follow published Parsec
#: working-set/intensity characterisations).
PARSEC_KERNELS: Dict[str, WorkloadDescriptor] = {
    "blackscholes": WorkloadDescriptor(
        "blackscholes", 40_000_000, 0.22, 0.26, 64.0, 1.1, 0.010, 0.85, 0.97, 0.03
    ),
    "bodytrack": WorkloadDescriptor(
        "bodytrack", 60_000_000, 0.30, 0.22, 1024.0, 2.2, 0.020, 1.00, 0.92
    ),
    "canneal": WorkloadDescriptor(
        "canneal", 45_000_000, 0.36, 0.18, 16384.0, 2.8, 0.060, 1.30, 0.88
    ),
    "dedup": WorkloadDescriptor(
        "dedup", 50_000_000, 0.33, 0.30, 4096.0, 2.5, 0.045, 1.10, 0.90
    ),
    "ferret": WorkloadDescriptor(
        "ferret", 55_000_000, 0.31, 0.20, 2048.0, 2.4, 0.030, 1.05, 0.93
    ),
    "fluidanimate": WorkloadDescriptor(
        "fluidanimate", 50_000_000, 0.28, 0.24, 3072.0, 2.3, 0.025, 0.95, 0.90
    ),
    "freqmine": WorkloadDescriptor(
        "freqmine", 55_000_000, 0.34, 0.21, 6144.0, 2.6, 0.035, 1.15, 0.89
    ),
    "streamcluster": WorkloadDescriptor(
        "streamcluster", 45_000_000, 0.38, 0.14, 8192.0, 2.4, 0.120, 1.25, 0.94
    ),
    "swaptions": WorkloadDescriptor(
        "swaptions", 40_000_000, 0.20, 0.24, 96.0, 1.0, 0.004, 0.80, 0.97, 0.02
    ),
    "x264": WorkloadDescriptor(
        "x264", 60_000_000, 0.29, 0.27, 1536.0, 2.3, 0.030, 0.90, 0.91
    ),
}


#: MiBench-like embedded kernels for the single-core studies.
MIBENCH_KERNELS: Dict[str, WorkloadDescriptor] = {
    "qsort": WorkloadDescriptor(
        "qsort", 8_000_000, 0.32, 0.28, 256.0, 2.0, 0.02, 1.0, 0.0
    ),
    "susan": WorkloadDescriptor(
        "susan", 10_000_000, 0.27, 0.18, 128.0, 1.4, 0.015, 0.9, 0.0, 0.06
    ),
    "dijkstra": WorkloadDescriptor(
        "dijkstra", 6_000_000, 0.35, 0.15, 512.0, 2.2, 0.03, 1.1, 0.0
    ),
    "sha": WorkloadDescriptor(
        "sha", 7_000_000, 0.21, 0.22, 32.0, 1.1, 0.005, 0.8, 0.0, 0.03
    ),
}


class TraceGenerator:
    """Synthetic address-trace generator matching a descriptor.

    Produces (address, is_write) events whose **LRU stack distances**
    follow the descriptor's lognormal + streaming mixture, so a cache
    of C lines measures a miss rate close to the analytic survival
    function P(D > C) — the property the model-validation tests check.

    Implementation: an explicit LRU stack of unique lines; each reuse
    samples a stack *depth* from the distribution and touches the line
    at that depth (moving it to the top), which realises the sampled
    stack distance exactly whenever the stack is deep enough.
    """

    def __init__(self, descriptor: WorkloadDescriptor, seed: int = 42,
                 line_bytes: int = 64):
        self.descriptor = descriptor
        self.line_bytes = line_bytes
        self._rng = np.random.default_rng(seed)
        ws_lines = int(descriptor.working_set_kb * 1024 / line_bytes)
        self._ws_lines = max(ws_lines, 16)
        self._stack: List[int] = []  # unique lines, most recent last
        self._next_cold = 0

    def events(self, count: int) -> Iterator[Tuple[int, bool]]:
        """Yield ``count`` access events."""
        descriptor = self.descriptor
        rng = self._rng
        median = max(self._ws_lines * descriptor.median_fraction, 4.0)
        log_median = math.log(median)
        stack = self._stack
        for _ in range(count):
            is_write = bool(rng.random() < descriptor.write_fraction)
            streaming = rng.random() < descriptor.streaming_fraction
            if streaming or not stack:
                line = self._next_cold
                self._next_cold += 1
                stack.append(line)
            else:
                depth = int(rng.lognormal(log_median, descriptor.reuse_sigma))
                if depth >= len(stack):
                    # Beyond everything seen so far: behaves as cold.
                    line = self._next_cold
                    self._next_cold += 1
                    stack.append(line)
                else:
                    line = stack.pop(-1 - depth)
                    stack.append(line)
            if len(stack) > 8 * self._ws_lines:
                del stack[: 2 * self._ws_lines]
            yield line * self.line_bytes, is_write
