"""Memory-technology parameter records for the system simulator.

The archsim layer does not know device physics — it consumes flat
latency/energy/leakage records per cache level.  MAGPIE fills these
from NVSim (SRAM) and VAET-STT (STT-MRAM); the defaults here are the
wired-up 45 nm values so the simulator is usable standalone.
"""

from dataclasses import asdict, dataclass

from repro.utils.serde import check_known_fields


@dataclass(frozen=True)
class MemoryTechnology:
    """Electrical summary of one cache/memory level.

    Attributes:
        label: "sram" / "stt-mram" / "dram".
        read_latency: Read access time [s].
        write_latency: Write access time [s].
        read_energy: Energy per read [J].
        write_energy: Energy per write [J].
        leakage_per_mb: Static power per MiB of capacity [W].
        area_per_mb: Area per MiB [m^2] (drives iso-area capacity).
    """

    label: str
    read_latency: float
    write_latency: float
    read_energy: float
    write_energy: float
    leakage_per_mb: float
    area_per_mb: float

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (cache-key safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryTechnology":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        return cls(**data)

    def scaled_for_capacity(self, capacity_mb: float) -> "MemoryTechnology":
        """Mildly scale latency with capacity (wire growth ~ sqrt)."""
        import dataclasses
        import math

        factor = math.sqrt(max(capacity_mb, 0.25) / 1.0)
        return dataclasses.replace(
            self,
            read_latency=self.read_latency * factor ** 0.5,
            write_latency=self.write_latency * factor ** 0.25
            if self.label == "sram"
            else self.write_latency,
        )


#: 45 nm SRAM L2 macro (NVSim-derived defaults).
SRAM_L2_45NM = MemoryTechnology(
    label="sram",
    read_latency=2.0e-9,
    write_latency=2.0e-9,
    read_energy=120e-12,
    write_energy=120e-12,
    leakage_per_mb=85e-3,
    area_per_mb=3.2e-6,
)

#: 45 nm STT-MRAM L2 macro (VAET-STT-derived defaults).
STT_L2_45NM = MemoryTechnology(
    label="stt-mram",
    read_latency=2.4e-9,
    write_latency=11.0e-9,
    read_energy=150e-12,
    write_energy=650e-12,
    leakage_per_mb=12e-3,
    area_per_mb=0.85e-6,
)

#: LPDDR-class main memory behind the SoC.
DRAM_45NM = MemoryTechnology(
    label="dram",
    read_latency=60e-9,
    write_latency=60e-9,
    read_energy=2.5e-9,
    write_energy=2.5e-9,
    leakage_per_mb=0.18e-3,
    area_per_mb=0.0,
)

#: Per-core L1 (always SRAM — STT write latency is untenable at L1).
SRAM_L1_45NM = MemoryTechnology(
    label="sram",
    read_latency=0.5e-9,
    write_latency=0.5e-9,
    read_energy=15e-12,
    write_energy=15e-12,
    leakage_per_mb=95e-3,
    area_per_mb=3.5e-6,
)
