"""gem5-class trace-driven/analytic big.LITTLE system simulator."""

from repro.archsim.cache import Cache, CacheStats
from repro.archsim.cpu import BIG_CORE_45NM, CoreModel, LITTLE_CORE_45NM
from repro.archsim.memtech import (
    DRAM_45NM,
    MemoryTechnology,
    SRAM_L1_45NM,
    SRAM_L2_45NM,
    STT_L2_45NM,
)
from repro.archsim.soc import ClusterConfig, SoCConfig
from repro.archsim.stats import ActivityReport, ClusterActivity
from repro.archsim.workloads import (
    MIBENCH_KERNELS,
    PARSEC_KERNELS,
    TraceGenerator,
    WorkloadDescriptor,
)
from repro.archsim.simulator import (
    LINE_BYTES,
    simulate,
    simulate_cluster,
    simulate_trace_driven,
)

__all__ = [
    "Cache",
    "CacheStats",
    "BIG_CORE_45NM",
    "CoreModel",
    "LITTLE_CORE_45NM",
    "DRAM_45NM",
    "MemoryTechnology",
    "SRAM_L1_45NM",
    "SRAM_L2_45NM",
    "STT_L2_45NM",
    "ClusterConfig",
    "SoCConfig",
    "ActivityReport",
    "ClusterActivity",
    "MIBENCH_KERNELS",
    "PARSEC_KERNELS",
    "TraceGenerator",
    "WorkloadDescriptor",
    "LINE_BYTES",
    "simulate",
    "simulate_cluster",
    "simulate_trace_driven",
]
