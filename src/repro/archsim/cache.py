"""Set-associative cache simulator (detailed mode).

A classic LRU, write-back/write-allocate cache with full event
accounting — the per-level numbers gem5's stats file reports (hits,
misses, writebacks).  Used directly for trace-driven runs and as the
ground truth the analytic hierarchy model is validated against.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class CacheStats:
    """Event counters of one cache level.

    Attributes:
        read_hits: Read accesses that hit.
        read_misses: Read accesses that missed.
        write_hits: Write accesses that hit.
        write_misses: Write accesses that missed.
        writebacks: Dirty evictions pushed to the next level.
        fills: Lines installed (one per miss with allocate).
    """

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def reads(self) -> int:
        """Total read accesses."""
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        """Total write accesses."""
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Overall miss rate (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """One set-associative LRU cache level.

    Args:
        name: Label used in reports.
        size_bytes: Total capacity.
        assoc: Associativity (ways).
        line_bytes: Line size.
        next_level: Cache behind this one (None = memory).

    Raises:
        ValueError: On non-power-of-two geometry or capacity/assoc
            mismatch.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
        next_level: Optional["Cache"] = None,
    ):
        if size_bytes <= 0 or size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                "capacity %d not divisible into %d ways of %d-byte lines"
                % (size_bytes, assoc, line_bytes)
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.next_level = next_level
        self.stats = CacheStats()
        # Per set: list of (tag, dirty) in LRU order (front = LRU).
        self._sets: List[List[Tuple[int, bool]]] = [[] for _ in range(self.num_sets)]

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int, is_write: bool) -> bool:
        """Access one address; returns True on hit.

        Misses allocate (write-allocate policy) and recurse into the
        next level; dirty victims generate writebacks that also recurse.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        for position, (way_tag, dirty) in enumerate(ways):
            if way_tag == tag:
                ways.pop(position)
                ways.append((tag, dirty or is_write))
                if is_write:
                    self.stats.write_hits += 1
                else:
                    self.stats.read_hits += 1
                return True
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        self._fill(set_index, tag, dirty=is_write)
        if self.next_level is not None:
            self.next_level.access(address, is_write=False)
        return False

    def _fill(self, set_index: int, tag: int, dirty: bool) -> None:
        ways = self._sets[set_index]
        if len(ways) >= self.assoc:
            victim_tag, victim_dirty = ways.pop(0)
            if victim_dirty:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    victim_line = victim_tag * self.num_sets + set_index
                    self.next_level.access(
                        victim_line * self.line_bytes, is_write=True
                    )
        ways.append((tag, dirty))
        self.stats.fills += 1

    def flush_dirty(self) -> int:
        """Write back every dirty line (end-of-run accounting).

        Returns:
            Number of writebacks generated.
        """
        count = 0
        for set_index, ways in enumerate(self._sets):
            for tag, dirty in ways:
                if dirty:
                    count += 1
                    self.stats.writebacks += 1
                    if self.next_level is not None:
                        line = tag * self.num_sets + set_index
                        self.next_level.access(line * self.line_bytes, is_write=True)
            self._sets[set_index] = [(t, False) for t, _ in ways]
        return count

    def reset_stats(self) -> None:
        """Zero the counters without touching contents."""
        self.stats = CacheStats()
