"""Activity reports — the "gem5 stats file" of the substrate.

MAGPIE's flow diagram parses runtime, read/write memory accesses,
hit/miss rates and IPC out of the simulator output; this module is
that record, plus its text serialisation (the "File Parser" boxes of
Fig. 10 round-trip through it).
"""

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class ClusterActivity:
    """Event counts of one cluster during a run.

    Attributes:
        name: Cluster label ("big"/"little").
        instructions: Retired instructions (all cores).
        cycles: Consumed core cycles (critical thread).
        l1_reads: L1 read accesses.
        l1_writes: L1 write accesses.
        l1_misses: L1 misses.
        l2_reads: L2 read accesses.
        l2_writes: L2 write accesses (fills + writebacks).
        l2_misses: L2 misses.
        dram_reads: DRAM reads caused by this cluster.
        dram_writes: DRAM writes caused by this cluster.
        busy_time: Wall-clock busy time of the cluster [s].
    """

    name: str
    instructions: float = 0.0
    cycles: float = 0.0
    l1_reads: float = 0.0
    l1_writes: float = 0.0
    l1_misses: float = 0.0
    l2_reads: float = 0.0
    l2_writes: float = 0.0
    l2_misses: float = 0.0
    dram_reads: float = 0.0
    dram_writes: float = 0.0
    busy_time: float = 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when idle)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l2_accesses(self) -> float:
        """Total L2 accesses."""
        return self.l2_reads + self.l2_writes


@dataclass
class ActivityReport:
    """Full-run activity: per-cluster events plus wall-clock time.

    Attributes:
        workload: Kernel name.
        exec_time: End-to-end execution time [s].
        big: Big-cluster activity.
        little: LITTLE-cluster activity.
    """

    workload: str
    exec_time: float
    big: ClusterActivity
    little: ClusterActivity

    def render(self) -> str:
        """Serialise to the flat gem5-stats-like text format."""
        lines = ["* archsim activity report", "workload = %s" % self.workload,
                 "exec_time = %r" % self.exec_time]
        for cluster in (self.big, self.little):
            for field_info in fields(cluster):
                if field_info.name == "name":
                    continue
                value = getattr(cluster, field_info.name)
                lines.append("%s.%s = %r" % (cluster.name, field_info.name, value))
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "ActivityReport":
        """Parse the text format back (MAGPIE's file-parser stage).

        Raises:
            ValueError: On malformed lines or missing keys.
        """
        values: Dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("*"):
                continue
            if "=" not in line:
                raise ValueError("malformed stats line: %r" % line)
            key, _, raw = line.partition("=")
            values[key.strip()] = raw.strip()
        clusters = {}
        for name in ("big", "little"):
            cluster = ClusterActivity(name=name)
            for field_info in fields(ClusterActivity):
                if field_info.name == "name":
                    continue
                key = "%s.%s" % (name, field_info.name)
                if key not in values:
                    raise ValueError("stats file missing %r" % key)
                setattr(cluster, field_info.name, float(values[key]))
            clusters[name] = cluster
        return cls(
            workload=values["workload"],
            exec_time=float(values["exec_time"]),
            big=clusters["big"],
            little=clusters["little"],
        )
