"""SoC configuration: clusters, cache sizes and memory technologies.

Models the paper's evaluation platform: "an Exynos 5 Octa SoC model
integrating STT-RAM memory at cache level" — a big.LITTLE with four
out-of-order big cores and four in-order LITTLE cores, private L1s and
one shared L2 per cluster, over a common LPDDR memory.
"""

from dataclasses import dataclass, field, replace

from repro.archsim.cpu import BIG_CORE_45NM, CoreModel, LITTLE_CORE_45NM
from repro.archsim.memtech import (
    DRAM_45NM,
    MemoryTechnology,
    SRAM_L1_45NM,
    SRAM_L2_45NM,
    STT_L2_45NM,
)
from repro.utils.serde import check_known_fields


@dataclass(frozen=True)
class ClusterConfig:
    """One CPU cluster and its cache slice.

    Attributes:
        name: "big" or "little".
        core: Core timing model.
        num_cores: Core count.
        l1_kb: Private L1 data capacity per core [KiB].
        l1_tech: L1 memory technology (SRAM).
        l2_mb: Shared L2 capacity [MiB].
        l2_tech: L2 memory technology (SRAM or STT-MRAM).
    """

    name: str
    core: CoreModel
    num_cores: int = 4
    l1_kb: float = 32.0
    l1_tech: MemoryTechnology = SRAM_L1_45NM
    l2_mb: float = 2.0
    l2_tech: MemoryTechnology = SRAM_L2_45NM

    def with_l2(self, l2_mb: float, l2_tech: MemoryTechnology) -> "ClusterConfig":
        """Copy with a different L2 macro."""
        return replace(self, l2_mb=l2_mb, l2_tech=l2_tech)

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (nested records included)."""
        return {
            "name": self.name,
            "core": self.core.to_dict(),
            "num_cores": self.num_cores,
            "l1_kb": self.l1_kb,
            "l1_tech": self.l1_tech.to_dict(),
            "l2_mb": self.l2_mb,
            "l2_tech": self.l2_tech.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        values = dict(data)
        if "core" in values:
            values["core"] = CoreModel.from_dict(values["core"])
        for key in ("l1_tech", "l2_tech"):
            if key in values:
                values[key] = MemoryTechnology.from_dict(values[key])
        return cls(**values)


@dataclass(frozen=True)
class SoCConfig:
    """The full big.LITTLE platform.

    Attributes:
        big: Big-cluster configuration.
        little: LITTLE-cluster configuration.
        dram: Main-memory technology record.
        bus_energy_per_access: Interconnect energy per L2<->DRAM
            transaction [J].
        memory_controller_leakage: Static power of the DRAM controller
            [W].
    """

    big: ClusterConfig = field(
        default_factory=lambda: ClusterConfig("big", BIG_CORE_45NM, l2_mb=2.0)
    )
    little: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            "little", LITTLE_CORE_45NM, l2_mb=0.5
        )
    )
    dram: MemoryTechnology = DRAM_45NM
    bus_energy_per_access: float = 30e-12
    memory_controller_leakage: float = 25e-3

    def to_dict(self) -> dict:
        """Stable JSON-ready representation of the whole platform."""
        return {
            "big": self.big.to_dict(),
            "little": self.little.to_dict(),
            "dram": self.dram.to_dict(),
            "bus_energy_per_access": self.bus_energy_per_access,
            "memory_controller_leakage": self.memory_controller_leakage,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SoCConfig":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        values = dict(data)
        for key in ("big", "little"):
            if key in values:
                values[key] = ClusterConfig.from_dict(values[key])
        if "dram" in values:
            values["dram"] = MemoryTechnology.from_dict(values["dram"])
        return cls(**values)

    @staticmethod
    def full_sram() -> "SoCConfig":
        """The paper's reference scenario (Full-SRAM)."""
        return SoCConfig()

    @staticmethod
    def iso_area_stt_capacity(sram_mb: float) -> float:
        """STT-MRAM capacity fitting the area of an SRAM macro.

        STT-MRAM's ~40 F^2 cell vs SRAM's ~146 F^2 yields ~4x density at
        equal area — the capacity lever behind the LITTLE-cluster
        speedups of Fig. 12.
        """
        ratio = SRAM_L2_45NM.area_per_mb / STT_L2_45NM.area_per_mb
        return sram_mb * round(ratio)
