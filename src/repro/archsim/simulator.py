"""Analytic big.LITTLE system simulator (the gem5 substitute).

Threads are statically partitioned across all eight cores (the Parsec
pthread model); each cluster's four threads share that cluster's L2.
The slower cluster sets the parallel-phase time — which is why a
larger (iso-area STT-MRAM) L2 on the *LITTLE* cluster can shorten the
whole program: the LITTLE side is usually the critical path and is the
most memory-bound.

Cache behaviour uses the kernels' reuse-distance survival function
(validated against the detailed simulator in the tests); core timing
uses the standard CPI + exposed-stall decomposition of
:mod:`repro.archsim.cpu`.
"""

from dataclasses import dataclass

from repro.archsim.soc import ClusterConfig, SoCConfig
from repro.archsim.stats import ActivityReport, ClusterActivity
from repro.archsim.workloads import WorkloadDescriptor

#: Cache line size used across the hierarchy [bytes].
LINE_BYTES = 64

#: Associativity-induced capacity efficiency of real caches.
CAPACITY_EFFICIENCY = 0.82


@dataclass
class _ClusterRun:
    """Intermediate per-cluster result."""

    activity: ClusterActivity
    thread_time: float


def _effective_lines(capacity_bytes: float, shared_by: int = 1) -> float:
    """LRU-effective line count of a cache shared by ``shared_by``."""
    return CAPACITY_EFFICIENCY * capacity_bytes / (LINE_BYTES * shared_by)


def simulate_cluster(
    cluster: ClusterConfig,
    workload: WorkloadDescriptor,
    instructions_per_thread: float,
    dram,
) -> _ClusterRun:
    """Run one cluster's share of the parallel phase analytically.

    Args:
        cluster: Cluster configuration.
        workload: Kernel descriptor.
        instructions_per_thread: Work per thread in this phase.
        dram: Main-memory technology record.

    Returns:
        Activity and the (identical-threads) per-thread time.
    """
    core = cluster.core
    accesses = instructions_per_thread * workload.memory_fraction
    writes = accesses * workload.write_fraction
    reads = accesses - writes

    l1_lines = _effective_lines(cluster.l1_kb * 1024.0)
    l2_lines = _effective_lines(
        cluster.l2_mb * 1024.0 * 1024.0, shared_by=cluster.num_cores
    )
    m1 = workload.reuse_distance_survival(l1_lines)
    m_l2_global = workload.reuse_distance_survival(l1_lines + l2_lines)
    m2 = m_l2_global / m1 if m1 > 0.0 else 0.0

    l1_misses = accesses * m1
    l2_reads = l1_misses
    dirty_fraction = min(0.6, workload.write_fraction * 1.4)
    l2_fills = l1_misses
    l2_writebacks = l1_misses * dirty_fraction
    l2_writes = l2_fills + l2_writebacks
    l2_misses = l2_reads * m2
    dram_reads = l2_misses
    dram_writes = l2_misses * dirty_fraction

    frequency = core.frequency
    l2_read_cycles = cluster.l2_tech.read_latency * frequency
    l2_write_cycles = cluster.l2_tech.write_latency * frequency
    dram_cycles = dram.read_latency * frequency

    read_stall = (
        l1_misses * (1.0 - m2) * l2_read_cycles
        + l2_misses * dram_cycles / core.mlp
    )
    write_stall = (
        l2_writebacks * l2_write_cycles * core.write_stall_fraction
        + dram_writes * dram_cycles * core.write_stall_fraction / core.mlp
    )
    cycles = (
        core.base_cycles(instructions_per_thread, workload.base_cpi)
        + core.exposed(read_stall)
        + write_stall
    )
    thread_time = cycles / frequency

    threads = cluster.num_cores
    activity = ClusterActivity(
        name=cluster.name,
        instructions=instructions_per_thread * threads,
        cycles=cycles,
        l1_reads=reads * threads,
        l1_writes=writes * threads,
        l1_misses=l1_misses * threads,
        l2_reads=l2_reads * threads,
        l2_writes=l2_writes * threads,
        l2_misses=l2_misses * threads,
        dram_reads=dram_reads * threads,
        dram_writes=dram_writes * threads,
        busy_time=thread_time,
    )
    return _ClusterRun(activity=activity, thread_time=thread_time)


def simulate(soc: SoCConfig, workload: WorkloadDescriptor) -> ActivityReport:
    """Simulate one kernel on the big.LITTLE platform.

    The parallel phase splits evenly over all eight threads; the serial
    remainder runs on one big core.  Execution time is the serial time
    plus the slowest cluster's parallel time.
    """
    total_threads = soc.big.num_cores + soc.little.num_cores
    parallel_instr = workload.instructions * workload.parallel_fraction
    serial_instr = workload.instructions - parallel_instr
    per_thread = parallel_instr / total_threads

    big_run = simulate_cluster(soc.big, workload, per_thread, soc.dram)
    little_run = simulate_cluster(soc.little, workload, per_thread, soc.dram)
    parallel_time = max(big_run.thread_time, little_run.thread_time)

    serial_time = 0.0
    if serial_instr > 0.0:
        serial_run = simulate_cluster(soc.big, workload, serial_instr, soc.dram)
        # Single-thread: the activity accounts num_cores threads; rescale.
        scale = 1.0 / soc.big.num_cores
        for name in (
            "instructions", "l1_reads", "l1_writes", "l1_misses",
            "l2_reads", "l2_writes", "l2_misses", "dram_reads", "dram_writes",
        ):
            value = getattr(serial_run.activity, name) * scale
            setattr(
                big_run.activity, name, getattr(big_run.activity, name) + value
            )
        big_run.activity.cycles += serial_run.activity.cycles
        serial_time = serial_run.thread_time

    exec_time = parallel_time + serial_time
    big_run.activity.busy_time = big_run.thread_time + serial_time
    little_run.activity.busy_time = little_run.thread_time
    return ActivityReport(
        workload=workload.name,
        exec_time=exec_time,
        big=big_run.activity,
        little=little_run.activity,
    )


def simulate_trace_driven(
    soc: SoCConfig,
    workload: WorkloadDescriptor,
    num_events: int = 200_000,
    seed: int = 42,
) -> ActivityReport:
    """Detailed-mode run: synthetic trace through real LRU caches.

    Much slower than :func:`simulate`; used for validation and the
    detailed-mode example.  One representative thread per cluster is
    simulated and scaled up.
    """
    from repro.archsim.cache import Cache
    from repro.archsim.workloads import TraceGenerator

    report = simulate(soc, workload)  # analytic baseline for timing
    for cluster_cfg, activity in (
        (soc.big, report.big),
        (soc.little, report.little),
    ):
        l2 = Cache(
            "l2", int(cluster_cfg.l2_mb * 1024 * 1024 // cluster_cfg.num_cores),
            assoc=8, line_bytes=LINE_BYTES,
        )
        l1 = Cache("l1", int(cluster_cfg.l1_kb * 1024), assoc=4,
                   line_bytes=LINE_BYTES, next_level=l2)
        generator = TraceGenerator(workload, seed=seed)
        for address, is_write in generator.events(num_events):
            l1.access(address, is_write)
        scale = (
            activity.l1_reads + activity.l1_writes
        ) / max(l1.stats.accesses, 1)
        activity.l1_misses = l1.stats.misses * scale
        activity.l2_reads = l1.stats.misses * scale
        activity.l2_writes = (l1.stats.misses + l1.stats.writebacks) * scale
        activity.l2_misses = l2.stats.misses * scale
        activity.dram_reads = l2.stats.misses * scale
        activity.dram_writes = l2.stats.writebacks * scale
    return report
