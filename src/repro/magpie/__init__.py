"""MAGPIE cross-layer hybrid-memory exploration flow (Figs. 10-12)."""

from repro.magpie.scenarios import Scenario, build_scenario
from repro.magpie.flow import L2_LINE_BITS, MagpieFlow, ScenarioResult
from repro.magpie.report import fig11_breakdown, fig12_relative
from repro.magpie.iot import DutyCyclePoint, IoTNodeStudy

__all__ = [
    "Scenario",
    "build_scenario",
    "L2_LINE_BITS",
    "MagpieFlow",
    "ScenarioResult",
    "fig11_breakdown",
    "fig12_relative",
    "DutyCyclePoint",
    "IoTNodeStudy",
]
