"""IoT node duty-cycle study: the paper's motivating use case, modelled.

"The main components of IoT devices are autonomous battery-operated
smart embedded systems ... decrease their power consumption (by
reducing the power consumptions of memory and sensor interfaces blocks
by 5x or 10x)" (Sec. I).

This module evaluates a duty-cycled single-core sensor node (MiBench-
class kernels on one LITTLE core) with its working memory either in
SRAM (must be retained in sleep) or in MSS STT-MRAM (power-gated to
zero).  It reports the daily energy ledger and the duty-cycle
crossover below which non-volatility wins — the quantitative version
of the paper's 5-10x claim.
"""

from dataclasses import dataclass
from typing import List, Sequence

from repro.archsim.cpu import LITTLE_CORE_45NM
from repro.archsim.memtech import MemoryTechnology
from repro.archsim.soc import ClusterConfig, SoCConfig
from repro.archsim.simulator import simulate_cluster
from repro.archsim.workloads import MIBENCH_KERNELS, WorkloadDescriptor
from repro.magpie.flow import MagpieFlow

#: Sleep-mode retention factor of a drowsy SRAM (fraction of active leakage).
SRAM_RETENTION_FACTOR = 0.35

#: NVFF checkpoint cost per wake cycle [J] (32 registers, store+restore).
CHECKPOINT_ENERGY = 32 * 2.5e-13


@dataclass(frozen=True)
class DutyCyclePoint:
    """One duty-cycle evaluation.

    Attributes:
        wakeups_per_day: Number of active episodes per day.
        active_time: Busy time per episode [s].
        sram_daily_energy: Daily energy with retained SRAM [J].
        stt_daily_energy: Daily energy with power-gated STT-MRAM [J].
        savings: 1 - stt/sram.
    """

    wakeups_per_day: float
    active_time: float
    sram_daily_energy: float
    stt_daily_energy: float

    @property
    def savings(self) -> float:
        """Fractional energy saving of the STT node."""
        return 1.0 - self.stt_daily_energy / self.sram_daily_energy


class IoTNodeStudy:
    """Duty-cycled sensor-node energy model on MAGPIE memory records.

    Args:
        flow: A MAGPIE flow (supplies the SRAM/STT memory records so
            the study stays wired to the device level).
        kernel: MiBench-class workload run on each wake-up.
        memory_kb: Working memory (scratchpad) capacity [KiB].
    """

    def __init__(
        self,
        flow: MagpieFlow,
        kernel: WorkloadDescriptor = None,
        memory_kb: float = 128.0,
    ):
        self.flow = flow
        self.kernel = kernel or MIBENCH_KERNELS["qsort"]
        self.memory_kb = memory_kb
        self.sram_record, self.stt_record = flow.memory_records()
        self.core = LITTLE_CORE_45NM

    def _episode(self, memory: MemoryTechnology):
        """Simulate one wake-up episode on the given memory tech."""
        cluster = ClusterConfig(
            name="little",
            core=self.core,
            num_cores=1,
            l1_kb=16.0,
            l2_mb=self.memory_kb / 1024.0,
            l2_tech=memory,
        )
        soc = SoCConfig.full_sram()
        run = simulate_cluster(cluster, self.kernel, self.kernel.instructions, soc.dram)
        activity = run.activity
        # Active energy: core + memory accesses.
        energy = (
            self.core.energy_per_instruction * activity.instructions
            + (activity.l2_reads * memory.read_energy)
            + (activity.l2_writes * memory.write_energy)
            + self.core.leakage_power * run.thread_time
            + memory.leakage_per_mb * (self.memory_kb / 1024.0) * run.thread_time
        )
        return run.thread_time, energy

    def evaluate(self, wakeups_per_day: float) -> DutyCyclePoint:
        """Daily ledger at a given wake-up rate."""
        if wakeups_per_day <= 0.0:
            raise ValueError("need at least one wake-up per day")
        sram_time, sram_active = self._episode(self.sram_record)
        stt_time, stt_active = self._episode(self.stt_record)
        active_total_sram = wakeups_per_day * sram_active
        active_total_stt = wakeups_per_day * (stt_active + CHECKPOINT_ENERGY)

        day = 86400.0
        sleep_sram = (
            (day - wakeups_per_day * sram_time)
            * self.sram_record.leakage_per_mb
            * (self.memory_kb / 1024.0)
            * SRAM_RETENTION_FACTOR
        )
        sleep_stt = 0.0  # power-gated: non-volatile memory needs nothing.
        return DutyCyclePoint(
            wakeups_per_day=wakeups_per_day,
            active_time=stt_time,
            sram_daily_energy=active_total_sram + sleep_sram,
            stt_daily_energy=active_total_stt + sleep_stt,
        )

    def sweep(self, wakeups: Sequence[float]) -> List[DutyCyclePoint]:
        """Evaluate a ladder of duty cycles."""
        return [self.evaluate(w) for w in wakeups]

    def crossover_wakeups_per_day(self) -> float:
        """Wake-up rate above which SRAM becomes competitive.

        STT pays per-episode (write energy + checkpoint), SRAM pays a
        constant standby floor: the crossover is where the two daily
        ledgers meet.  Returns ``inf`` if STT wins at any realistic
        rate (<= 10 wake-ups per second).
        """
        low, high = 1.0, 86400.0 * 10.0

        def gap(rate: float) -> float:
            point = self.evaluate(rate)
            return point.stt_daily_energy - point.sram_daily_energy

        if gap(high) < 0.0:
            return float("inf")
        from scipy import optimize

        return float(optimize.brentq(gap, low, high))
