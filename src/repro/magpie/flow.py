"""MAGPIE: the cross-layer hybrid-memory evaluation flow (Fig. 10).

"MAGPIE is built upon three mature and popular tools: the gem5
full-system simulator, the McPAT and VAET-STT power/energy and area
estimation tools ... MAGPIE promotes a script-oriented approach that
assists a designer in the design and evaluation tasks."

The flow wires every layer of this repository together:

1. **PDK** (circuit level)   — device parameters for the chosen node;
2. **VAET-STT** (memory level) — variation-aware latency/energy/leakage
   of the STT-MRAM L2 macro; NVSim for the SRAM reference;
3. **archsim** (system level) — big.LITTLE runs per kernel/scenario,
   serialised through the gem5-stats text format and re-parsed (the
   "File Parser" boxes are real steps, as in the flow diagram);
4. **mcpat** — component energy roll-up, EDP.
"""

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.archsim.memtech import MemoryTechnology
from repro.archsim.simulator import simulate
from repro.archsim.soc import SoCConfig
from repro.archsim.stats import ActivityReport
from repro.archsim.workloads import PARSEC_KERNELS, WorkloadDescriptor
from repro.magpie.scenarios import Scenario, build_scenario
from repro.mcpat.components import EnergyBreakdown, estimate_energy
from repro.nvsim.config import CellKind, MemoryConfig
from repro.nvsim.estimator import NVSimEstimator
from repro.pdk.kit import ProcessDesignKit
from repro.vaet.estimator import VAETSTT

#: L2 cache line size in bits (64-byte lines).
L2_LINE_BITS = 512


@dataclass
class ScenarioResult:
    """One (kernel, scenario) evaluation.

    Attributes:
        scenario: The evaluated scenario.
        report: Parsed activity report.
        energy: Component energy breakdown.
    """

    scenario: Scenario
    report: ActivityReport
    energy: EnergyBreakdown


class MagpieFlow:
    """Script-oriented cross-layer evaluation flow.

    Args:
        node_nm: CMOS node for the whole platform (45 in the paper's
            illustration).
        base: Optional platform override (core counts, SRAM L2 sizes).
        wer_target: Reliability target the STT-MRAM L2 write path is
            margined for (sets its write latency through VAET-STT).
    """

    def __init__(
        self,
        node_nm: int = 45,
        base: Optional[SoCConfig] = None,
        wer_target: float = 1e-9,
    ):
        self.node_nm = node_nm
        self.pdk = ProcessDesignKit.for_node(node_nm)
        self.base = base or SoCConfig.full_sram()
        self.wer_target = wer_target
        self._memory_records: Dict[float, Tuple[MemoryTechnology, MemoryTechnology]] = {}

    # -- memory level ---------------------------------------------------

    def memory_records(self) -> Tuple[MemoryTechnology, MemoryTechnology]:
        """(SRAM L2, STT-MRAM L2) macro records from the memory level.

        The STT record is variation-aware: its write latency carries the
        VAET-STT margin for the flow's WER target and ECC t=1, its
        energies are the Monte-Carlo means; the SRAM record comes from
        the plain NVSim path.  Cached per WER target — this is the
        expensive stage, and reconfiguring ``wer_target`` on a live flow
        must not serve records margined for the old target.
        """
        if self.wer_target in self._memory_records:
            return self._memory_records[self.wer_target]
        array = MemoryConfig(
            rows=1024, cols=1024, word_bits=L2_LINE_BITS,
            subarray_rows=256, subarray_cols=256,
        )
        # SRAM reference macro.
        sram_estimator = NVSimEstimator(
            self.pdk, replace(array, cell=CellKind.SRAM)
        )
        sram = sram_estimator.estimate()
        megabit_to_mb = 8.0  # 1 MiB = 8 of these 1 Mb arrays.
        sram_record = MemoryTechnology(
            label="sram",
            read_latency=sram.read_latency,
            write_latency=sram.write_latency,
            read_energy=sram.read_energy,
            write_energy=sram.write_energy,
            leakage_per_mb=sram.leakage_power * megabit_to_mb,
            area_per_mb=sram.area * megabit_to_mb,
        )
        # STT-MRAM macro through VAET-STT.
        tool = VAETSTT(self.pdk, array)
        estimate = tool.estimate(num_words=1500)
        ecc_point = tool.ecc().point(1, self.wer_target)
        read_margin = tool.error_rates().read_margin(min(self.wer_target, 1e-9))
        stt_record = MemoryTechnology(
            label="stt-mram",
            read_latency=read_margin.total_latency,
            write_latency=ecc_point.total_latency,
            read_energy=estimate.read_energy.mean,
            write_energy=estimate.write_energy.mean,
            leakage_per_mb=estimate.nominal.leakage_power * megabit_to_mb,
            area_per_mb=estimate.nominal.area * megabit_to_mb,
        )
        self._memory_records[self.wer_target] = (sram_record, stt_record)
        return self._memory_records[self.wer_target]

    # -- system level ---------------------------------------------------

    def build_soc(self, scenario: Scenario) -> SoCConfig:
        """Instantiate the platform for one scenario."""
        sram_record, stt_record = self.memory_records()
        return build_scenario(scenario, sram_record, stt_record, self.base)

    def run_one(self, workload: WorkloadDescriptor, scenario: Scenario) -> ScenarioResult:
        """Evaluate one kernel under one scenario.

        The activity report round-trips through its text serialisation,
        mirroring the gem5-stats -> file-parser handoff of Fig. 10.
        """
        soc = self.build_soc(scenario)
        raw_report = simulate(soc, workload)
        report = ActivityReport.parse(raw_report.render())
        energy = estimate_energy(soc, report)
        return ScenarioResult(scenario=scenario, report=report, energy=energy)

    def run(
        self,
        workloads: Optional[Iterable[str]] = None,
        scenarios: Optional[Iterable[Scenario]] = None,
        runner=None,
        progress=None,
    ) -> Dict[Tuple[str, Scenario], ScenarioResult]:
        """Evaluate a kernel x scenario grid.

        The grid runs on the :mod:`repro.dse` engine: each (kernel,
        scenario) cell is a content-hashed job carrying the memory-level
        records, so a caching/parallel ``CampaignRunner`` can be passed
        in.  The default serial runner reproduces the historic
        cell-by-cell outputs exactly.

        Args:
            workloads: Parsec kernel names (default: all, sorted).
            scenarios: Scenario members or their string values
                (default: all).
            runner: Optional ``CampaignRunner``.
            progress: Optional per-cell streaming callback (see
                ``repro.dse.runner.Progress``).

        Raises:
            KeyError: On unknown kernel names or scenario values.
        """
        names, chosen = self.validate_grid(workloads, scenarios)

        from repro.dse.campaign import run_system_cells
        from repro.dse.runner import CampaignRunner

        grid = [(name, scenario) for name in names for scenario in chosen]
        engine = runner if runner is not None else CampaignRunner(workers=1)
        return run_system_cells(self, grid, engine, progress=progress)

    def validate_grid(
        self,
        workloads: Optional[Iterable[str]] = None,
        scenarios: Optional[Iterable[Scenario]] = None,
    ) -> Tuple[List[str], List[Scenario]]:
        """Validated (kernel names, Scenario list) grid axes.

        The single source of kernel/scenario validation, shared with the
        ``repro.dse`` campaign entry points.

        Raises:
            KeyError: On unknown kernel names or scenario values.
        """
        names = list(workloads) if workloads is not None else sorted(PARSEC_KERNELS)
        for name in names:
            if name not in PARSEC_KERNELS:
                raise KeyError(
                    "unknown kernel %r; available: %s" % (name, sorted(PARSEC_KERNELS))
                )
        return names, self._validate_scenarios(scenarios)

    @staticmethod
    def _validate_scenarios(
        scenarios: Optional[Iterable[Scenario]],
    ) -> List[Scenario]:
        """Normalise a scenario iterable, mirroring the kernel check."""
        if scenarios is None:
            return list(Scenario)
        chosen: List[Scenario] = []
        for scenario in scenarios:
            if isinstance(scenario, Scenario):
                chosen.append(scenario)
                continue
            try:
                chosen.append(Scenario(scenario))
            except ValueError:
                raise KeyError(
                    "unknown scenario %r; available: %s"
                    % (scenario, sorted(s.value for s in Scenario))
                )
        return chosen
