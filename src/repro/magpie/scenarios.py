"""The four L2-technology scenarios of the paper's evaluation.

Sec. IV-D: "big.LITTLE architecture where all cache memories are in
SRAM (i.e., our reference scenario, referred to as Full-SRAM); similar
architecture but the L2 cache of the LITTLE cluster is now in
STT-MRAM (LITTLE-L2-STT-MRAM), similar architecture but the L2 of the
big cluster is in STT-MRAM (big-L2-STT-MRAM), and similar architecture
where L2 caches of both clusters are in STT-MRAM (Full-L2-STT-MRAM)."

STT-MRAM replaces SRAM at *iso-area*: the ~4x denser cell buys ~4x the
capacity in the same silicon, which is where the LITTLE-cluster
speedups come from.
"""

import enum

from repro.archsim.memtech import MemoryTechnology
from repro.archsim.soc import SoCConfig


class Scenario(enum.Enum):
    """L2 technology assignment per cluster."""

    FULL_SRAM = "Full-SRAM"
    LITTLE_L2_STT = "LITTLE-L2-STT-MRAM"
    BIG_L2_STT = "big-L2-STT-MRAM"
    FULL_L2_STT = "Full-L2-STT-MRAM"

    @property
    def little_uses_stt(self) -> bool:
        """True if the LITTLE cluster's L2 is STT-MRAM."""
        return self in (Scenario.LITTLE_L2_STT, Scenario.FULL_L2_STT)

    @property
    def big_uses_stt(self) -> bool:
        """True if the big cluster's L2 is STT-MRAM."""
        return self in (Scenario.BIG_L2_STT, Scenario.FULL_L2_STT)


def build_scenario(
    scenario: Scenario,
    sram_l2: MemoryTechnology,
    stt_l2: MemoryTechnology,
    base: SoCConfig = None,
) -> SoCConfig:
    """Instantiate the SoC for one scenario.

    Args:
        scenario: Which L2s are swapped to STT-MRAM.
        sram_l2: SRAM L2 macro record (from NVSim).
        stt_l2: STT-MRAM L2 macro record (from VAET-STT).
        base: Baseline platform (defaults to the Full-SRAM reference).

    Returns:
        The configured SoC, with iso-area capacity scaling applied to
        every STT-MRAM L2.
    """
    import dataclasses

    base = base or SoCConfig.full_sram()
    density = sram_l2.area_per_mb / stt_l2.area_per_mb
    big = dataclasses.replace(base.big, l2_tech=sram_l2)
    little = dataclasses.replace(base.little, l2_tech=sram_l2)
    if scenario.big_uses_stt:
        big = big.with_l2(base.big.l2_mb * round(density), stt_l2)
    if scenario.little_uses_stt:
        little = little.with_l2(base.little.l2_mb * round(density), stt_l2)
    return dataclasses.replace(base, big=big, little=little)
