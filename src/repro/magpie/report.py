"""Fig. 11 / Fig. 12 report rendering for MAGPIE results."""

from typing import Dict, List, Tuple

from repro.magpie.flow import ScenarioResult
from repro.magpie.scenarios import Scenario
from repro.mcpat.components import Component
from repro.utils.table import Table


def fig11_breakdown(
    results: Dict[Tuple[str, Scenario], ScenarioResult], kernel: str
) -> Table:
    """Energy breakdown by component across scenarios (Fig. 11).

    Raises:
        KeyError: If the kernel was not evaluated under every scenario.
    """
    table = Table(
        ["component (mJ)"] + [s.value for s in Scenario],
        title="Fig. 11 — energy breakdown, %s" % kernel,
    )
    for component in Component:
        row = [component.value]
        for scenario in Scenario:
            result = results[(kernel, scenario)]
            row.append(result.energy.component_total(component) * 1e3)
        table.add_row(row)
    row = ["total"]
    for scenario in Scenario:
        row.append(results[(kernel, scenario)].energy.total_energy * 1e3)
    table.add_row(row)
    return table


def fig12_relative(
    results: Dict[Tuple[str, Scenario], ScenarioResult], kernels: List[str]
) -> Table:
    """Per-kernel time/energy/EDP relative to Full-SRAM (Fig. 12)."""
    table = Table(
        ["kernel", "scenario", "time ratio", "energy ratio", "EDP ratio"],
        title="Fig. 12 — normalised to Full-SRAM",
    )
    for kernel in kernels:
        reference = results[(kernel, Scenario.FULL_SRAM)].energy
        for scenario in (
            Scenario.LITTLE_L2_STT,
            Scenario.BIG_L2_STT,
            Scenario.FULL_L2_STT,
        ):
            candidate = results[(kernel, scenario)].energy
            table.add_row(
                [
                    kernel,
                    scenario.value,
                    candidate.exec_time / reference.exec_time,
                    candidate.total_energy / reference.total_energy,
                    candidate.edp / reference.edp,
                ]
            )
    return table
