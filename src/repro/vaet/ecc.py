"""ECC trade-off analysis (Fig. 8).

"Another approach is to reduce the timing margin and employ appropriate
Error Correcting Codes (ECCs) to correct errors in the tail of the
distribution ... compared to the case with no ECC (0-bit correction),
there is a drastic improvement in latency by using an ECC with one-bit
error correction.  However, the improvement in latency for higher bit
error correction is comparatively less."

Model: a t-error-correcting BCH code over the data word tolerates up to
t failed bits per codeword, so the *per-bit* WER budget relaxes from
~target/n (t=0, union bound) to the p solving P[Binom(n, p) > t] =
target — orders of magnitude looser.  The looser per-bit budget
shortens the pulse; the decoder adds a latency and storage tax that
grows with t, producing the diminishing returns of Fig. 8.
"""

import math
from dataclasses import dataclass
from typing import List

from scipy import optimize, stats

from repro.vaet.error_rates import ErrorRateAnalysis


def bch_parity_bits(data_bits: int, correct_bits: int) -> int:
    """Parity bits of a binary BCH code correcting ``correct_bits``.

    r ~ m * t with m = ceil(log2(n+1)); exact for the narrow-sense
    binary BCH family used by memory controllers.
    """
    if correct_bits == 0:
        return 0
    m = max(1, math.ceil(math.log2(data_bits + 1)))
    return m * correct_bits


def block_failure_probability(codeword_bits: int, per_bit_wer: float,
                              correct_bits: int) -> float:
    """P[more than ``correct_bits`` of ``codeword_bits`` fail]."""
    if per_bit_wer <= 0.0:
        return 0.0
    if per_bit_wer >= 1.0:
        return 1.0
    return float(stats.binom.sf(correct_bits, codeword_bits, per_bit_wer))


def per_bit_budget(codeword_bits: int, correct_bits: int, target: float) -> float:
    """Per-bit WER allowed so the block failure stays below ``target``.

    Solved on log10(p) with bisection; the Poisson small-p approximation
    P ~ (n p)^(t+1) / (t+1)! seeds the bracket.

    Raises:
        ValueError: On a non-physical target.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")

    def gap(log_p: float) -> float:
        p = 10.0 ** log_p
        probability = block_failure_probability(codeword_bits, p, correct_bits)
        return math.log10(max(probability, 1e-300)) - math.log10(target)

    lo, hi = -30.0, -0.01
    if gap(lo) > 0.0:
        raise ValueError("target unreachable even at per-bit WER 1e-30")
    return 10.0 ** optimize.brentq(gap, lo, hi, xtol=1e-6)


@dataclass(frozen=True)
class ECCPoint:
    """One point of the ECC-vs-latency trade (one bar of Fig. 8).

    Attributes:
        correct_bits: Correction capability t.
        codeword_bits: Data + parity bits written per access.
        per_bit_wer: Relaxed per-bit WER budget.
        pulse_width: Required per-phase write pulse [s].
        decoder_latency: Encode+decode pipeline latency [s].
        total_latency: Full write latency including ECC logic [s].
        storage_overhead: Parity bits / data bits.
    """

    correct_bits: int
    codeword_bits: int
    per_bit_wer: float
    pulse_width: float
    decoder_latency: float
    total_latency: float
    storage_overhead: float


class ECCAnalysis:
    """Write-latency vs ECC strength study over one array."""

    def __init__(self, analysis: ErrorRateAnalysis):
        self.analysis = analysis
        self.engine = analysis.engine

    def _pulse_for_per_bit_wer(self, per_bit: float) -> float:
        """Invert the population-mean per-cell WER for a pulse width."""
        mean_wer = self.analysis.mean_cell_wer

        floor = mean_wer(1.0)  # 1 s pulse: only stuck cells remain.
        if per_bit <= floor:
            raise ValueError(
                "per-bit WER %.1e below stuck-cell floor %.1e" % (per_bit, floor)
            )

        def gap(log_pulse: float) -> float:
            wer = max(mean_wer(math.exp(log_pulse)), 1e-299)
            return math.log(wer) - math.log(per_bit)

        lo, hi = math.log(5e-12), math.log(0.9)
        return math.exp(optimize.brentq(gap, lo, hi, xtol=1e-4))

    def decoder_latency(self, correct_bits: int, codeword_bits: int) -> float:
        """Pipeline latency of the BCH encoder/corrector [s].

        t = 0: wire-through.  t = 1 (Hamming): one syndrome XOR tree.
        t > 1: Berlekamp-Massey-style correction, ~2t extra GF stages.
        """
        if correct_bits == 0:
            return 0.0
        fo4 = self.engine.variation.pdk.tech.gate_delay_fo4
        tree_depth = math.ceil(math.log2(codeword_bits))
        syndrome = tree_depth * fo4
        correction = 2.0 * correct_bits * 3.0 * fo4
        return syndrome + correction

    def point(self, correct_bits: int, target_wer: float) -> ECCPoint:
        """Evaluate one correction capability at a block-failure target."""
        if correct_bits < 0:
            raise ValueError("correction capability must be non-negative")
        data_bits = self.engine.word_bits
        parity = bch_parity_bits(data_bits, correct_bits)
        codeword = data_bits + parity
        per_bit = per_bit_budget(codeword, correct_bits, target_wer)
        pulse = self._pulse_for_per_bit_wer(per_bit)
        decode = self.decoder_latency(correct_bits, codeword)
        total = self.engine._overhead + 2.0 * pulse + decode
        return ECCPoint(
            correct_bits=correct_bits,
            codeword_bits=codeword,
            per_bit_wer=per_bit,
            pulse_width=pulse,
            decoder_latency=decode,
            total_latency=total,
            storage_overhead=parity / data_bits,
        )

    def sweep(self, max_correct_bits: int, target_wer: float) -> List[ECCPoint]:
        """The Fig. 8 sweep: t = 0 .. max_correct_bits."""
        return [self.point(t, target_wer) for t in range(max_correct_bits + 1)]
