"""Distribution summaries and tail extrapolation.

Monte Carlo gives the body of the latency/energy distributions (the
mu and sigma of Table 1); the error-rate analyses (Figs. 7-8) need
probabilities down to 1e-18, far beyond any feasible sample count.
The standard VAET-STT trick applies: the analytic per-cell WER
envelope is *exponential* in pulse width, so log-tail extrapolation is
exact in form and only the prefactor comes from sampling.
"""

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class DistributionSummary:
    """First/second-moment summary of a sampled distribution.

    Attributes:
        mean: Sample mean.
        std: Sample standard deviation (ddof=1).
        p50: Median.
        p99: 99th percentile.
        minimum: Smallest sample.
        maximum: Largest sample.
        count: Sample count.
    """

    mean: float
    std: float
    p50: float
    p99: float
    minimum: float
    maximum: float
    count: int


def summarize(samples: Sequence[float]) -> DistributionSummary:
    """Summarise a finite sample set.

    Raises:
        ValueError: On empty input or non-finite samples.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample set")
    if not np.all(np.isfinite(data)):
        raise ValueError("samples must be finite (filter non-switching events first)")
    return DistributionSummary(
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        p50=float(np.percentile(data, 50.0)),
        p99=float(np.percentile(data, 99.0)),
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        count=int(data.size),
    )


def exceedance_quantile(samples: np.ndarray, probability: float) -> float:
    """Value t with P(X > t) = probability, extrapolating the tail.

    Within the empirical range the quantile is read directly; beyond it
    the upper tail is fit as log P(X > t) = a - b t (exponential tail,
    the correct form for switching-time maxima) and extrapolated.

    Raises:
        ValueError: If probability is outside (0, 1) or samples empty.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    data = np.sort(np.asarray(samples, dtype=float))
    n = data.size
    if n == 0:
        raise ValueError("no samples")
    if probability >= 1.0 / n:
        return float(np.quantile(data, 1.0 - probability))
    # Fit the top decade of the empirical survival function.
    k = max(10, n // 100)
    tail = data[-k:]
    survival = (np.arange(k, 0, -1)) / n
    slope, intercept = np.polyfit(tail, np.log(survival), 1)
    if slope >= 0.0:
        # Degenerate tail (all ties); fall back to the max plus margin.
        return float(data[-1])
    return float((math.log(probability) - intercept) / slope)
