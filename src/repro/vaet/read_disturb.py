"""Read-disturb analysis (Fig. 9).

"The read operation in STT-MRAM is also affected by read disturb,
where the read current accidentally flips the data stored in the MTJ
... Even though a higher read latency leads to a lower RER as per
Fig. 7, it will lead to increased read disturb probability as shown in
Fig. 9.  Hence the read period should be fixed considering the
conflicting requirements for RER and read disturb."

The disturb is a thermally-activated reversal over the barrier lowered
by the read current: P = 1 - exp(-t_read / tau), tau = tau0 *
exp(Delta (1 - I_read/I_c0)), population-averaged over process
variation (weak cells dominate, as always).
"""

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.thermal import ATTEMPT_TIME
from repro.nvsim.subarray import READ_BIAS
from repro.vaet.error_rates import ErrorRateAnalysis


@dataclass(frozen=True)
class ReadDisturbPoint:
    """One point of the Fig. 9 curve.

    Attributes:
        read_period: Read current exposure time [s].
        per_bit_probability: Population-mean per-bit disturb probability.
        per_word_probability: Union bound over the word.
    """

    read_period: float
    per_bit_probability: float
    per_word_probability: float


class ReadDisturbAnalysis:
    """Read-disturb probability vs read period for one array."""

    def __init__(self, analysis: ErrorRateAnalysis):
        self.analysis = analysis
        self.engine = analysis.engine
        cells = analysis.cells
        variation = self.engine.variation
        read_currents = READ_BIAS / (
            cells.resistance_p
            + variation._fixed_path_r / np.sqrt(cells.drive_strength)
        )
        overdrive = np.minimum(read_currents / cells.critical_current, 0.999)
        effective_delta = cells.delta * (1.0 - overdrive)
        exponent = np.minimum(effective_delta, 700.0)
        self._tau = ATTEMPT_TIME * np.exp(exponent)

    def per_bit_probability(self, read_period: float) -> float:
        """Population-mean per-bit disturb probability for one read."""
        if read_period < 0.0:
            raise ValueError("read period must be non-negative")
        ratio = read_period / self._tau
        probability = -np.expm1(-np.minimum(ratio, 700.0))
        return float(np.mean(probability))

    def point(self, read_period: float) -> ReadDisturbPoint:
        """Evaluate one read period."""
        per_bit = self.per_bit_probability(read_period)
        per_word = min(1.0, per_bit * self.engine.word_bits)
        return ReadDisturbPoint(read_period, per_bit, per_word)

    def sweep(self, read_periods: Sequence[float]) -> List[ReadDisturbPoint]:
        """The Fig. 9 sweep over read periods."""
        return [self.point(t) for t in read_periods]

    def max_read_period(self, per_word_budget: float) -> float:
        """Longest read period keeping the word disturb under budget.

        The inverse question Fig. 9 exists to answer: the read period
        must satisfy the RER floor (Fig. 7) from below and this bound
        from above.
        """
        if not 0.0 < per_word_budget < 1.0:
            raise ValueError("budget must be in (0, 1)")
        # P ~ t * mean(1/tau) for small P: invert directly, then verify.
        mean_inverse_tau = float(np.mean(1.0 / self._tau))
        period = per_word_budget / (self.engine.word_bits * mean_inverse_tau)
        return period
