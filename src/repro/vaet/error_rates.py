"""Error-rate driven timing margins (Fig. 7).

"Due to the high value of sigma for the latencies, a large timing
margin is required to keep the error rates within acceptable limits"
and "for lower values of target error rates, high timing margins are
required" (Sec. III).

Writes: the per-cell WER envelope WER(t) = (pi^2 Delta / 4) e^(-2 r t)
is averaged over the sampled process population (each cell has its own
Delta and rate r), union-bounded over the word, and inverted for the
pulse width that meets the target.  The average is dominated by the
weak-cell tail — exactly the effect VAET-STT exists to capture.

Reads: sensing fails when the developed differential at the sense
instant is below the latch offset.  Longer sensing develops more
signal, so RER falls with read period; the Gaussian signal/offset
budget gives RER(t) in closed form.
"""

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize
from scipy.special import ndtr

from repro.nvsim.subarray import SENSE_MARGIN
from repro.vaet.montecarlo import MonteCarloEngine
from repro.vaet.variation_model import CellSamples, scalar_reference_enabled


@dataclass(frozen=True)
class WriteMarginResult:
    """Write-latency solve for one WER target.

    Attributes:
        wer_target: Per-word write error rate target.
        pulse_width: Required per-phase pulse width [s].
        total_latency: Overhead + two margined phases [s].
    """

    wer_target: float
    pulse_width: float
    total_latency: float


@dataclass(frozen=True)
class ReadMarginResult:
    """Read-latency solve for one RER target.

    Attributes:
        rer_target: Per-word read error rate target.
        sense_time: Required signal development time [s].
        total_latency: Overhead + develop + regeneration [s].
    """

    rer_target: float
    sense_time: float
    total_latency: float


class ErrorRateAnalysis:
    """WER/RER timing-margin solver bound to one Monte Carlo engine."""

    def __init__(self, engine: MonteCarloEngine, population: int = 200_000,
                 seed: int = 2018):
        self.engine = engine
        rng = np.random.default_rng(seed)
        self.cells: CellSamples = engine.variation.sample_cells(rng, population)
        self._rates = engine.variation.switching_rates(self.cells)
        self._signals = engine.variation.read_signal_currents(self.cells)
        # Pulse-independent factors, hoisted so the margin solvers (tens
        # of word_wer/word_rer evaluations per brentq call) only pay for
        # one exp/ndtr pass over the population per iteration.
        self._switching = self._rates > 0.0
        self._stuck_fraction = float(np.mean(self._rates <= 0.0))
        self._envelope = (math.pi ** 2) * self.cells.delta / 4.0
        self._nominal_signal = float(np.median(self._signals))
        cdv = engine.leaf.sense.develop_time * self._nominal_signal
        # C such that t_nom develops dV across the nominal cell.
        self._capacitance_equiv = cdv / SENSE_MARGIN
        self._developed_per_second = self._signals / self._capacitance_equiv

    # -- writes -------------------------------------------------------

    def mean_cell_wer(self, pulse_width: float) -> float:
        """Population-mean per-cell WER (no word union bound).

        The shared write-error kernel: cells with zero precessional
        rate (delivered current below I_c0) contribute WER 1 — they
        dominate once the sampled population is large enough to contain
        them.  Also the per-bit WER the ECC layer budgets against.
        """
        if pulse_width <= 0.0:
            return 1.0
        if scalar_reference_enabled():
            return self._mean_cell_wer_scalar(pulse_width)
        per_cell = self._envelope * np.exp(-2.0 * self._rates * pulse_width)
        per_cell = np.where(self._switching, np.minimum(per_cell, 1.0), 1.0)
        return float(np.mean(per_cell))

    def _mean_cell_wer_scalar(self, pulse_width: float) -> float:
        """Reference kernel: one cell at a time (``REPRO_VAET_SCALAR``)."""
        terms = []
        for envelope, rate, switching in zip(
            self._envelope, self._rates, self._switching
        ):
            if switching:
                terms.append(min(envelope * math.exp(-2.0 * rate * pulse_width), 1.0))
            else:
                terms.append(1.0)
        return math.fsum(terms) / len(terms)

    def word_wer(self, pulse_width) -> float:
        """Expected per-word WER at a per-phase pulse width.

        Population-averaged per-cell WER, union-bounded over the word.
        Accepts a scalar pulse width (returns a float) or an array of
        pulse widths (returns an array, one WER per pulse — the batch
        fast path evaluates the whole sweep in one broadcast).
        """
        if np.ndim(pulse_width) > 0:
            return self._word_wer_batch(np.asarray(pulse_width, dtype=float))
        mean_wer = self.mean_cell_wer(float(pulse_width))
        return min(1.0, max(mean_wer * self.engine.word_bits, 1e-300))

    def _word_wer_batch(self, pulse_widths: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`word_wer` over an array of pulse widths."""
        pulses = pulse_widths[:, None]
        per_cell = self._envelope[None, :] * np.exp(
            -2.0 * self._rates[None, :] * pulses
        )
        per_cell = np.where(
            self._switching[None, :], np.minimum(per_cell, 1.0), 1.0
        )
        mean_wer = np.where(
            pulse_widths > 0.0, np.mean(per_cell, axis=1), 1.0
        )
        return np.minimum(
            1.0, np.maximum(mean_wer * self.engine.word_bits, 1e-300)
        )

    def write_margin(self, wer_target: float) -> WriteMarginResult:
        """Solve the pulse width for a per-word WER target.

        Raises:
            ValueError: If the target is unreachable (stuck-cell floor —
                the population contains sub-critical cells whose WER no
                pulse width can fix; that is ECC's job, Fig. 8).
        """
        if not 0.0 < wer_target < 1.0:
            raise ValueError("WER target must be in (0, 1)")
        floor = self._stuck_fraction * self.engine.word_bits
        if wer_target <= floor:
            raise ValueError(
                "WER target %.1e below the stuck-cell floor %.1e; "
                "requires error correction" % (wer_target, floor)
            )

        def gap(log_pulse: float) -> float:
            wer = max(self.word_wer(math.exp(log_pulse)), 1e-299)
            return math.log(wer) - math.log(wer_target)

        lo, hi = math.log(10e-12), math.log(1e-6)
        pulse = math.exp(optimize.brentq(gap, lo, hi, xtol=1e-4))
        total = self.engine._overhead + 2.0 * pulse
        return WriteMarginResult(wer_target, pulse, total)

    # -- reads ----------------------------------------------------------

    def word_rer(self, sense_time, offset_sigma: float = None) -> float:
        """Expected per-word RER for a given development time.

        The developed differential of bit i is I_i * t / C; it must beat
        a Gaussian latch offset.  RER_bit = Q((I_i t / C - 0) / sigma_os)
        ... evaluated per sampled cell and union-bounded over the word.
        Accepts a scalar sense time (returns a float) or an array of
        sense times (returns an array, one RER per time).
        """
        sigma = offset_sigma if offset_sigma is not None else SENSE_MARGIN / 3.0
        if np.ndim(sense_time) > 0:
            return self._word_rer_batch(np.asarray(sense_time, dtype=float), sigma)
        if sense_time <= 0.0:
            return 1.0
        if scalar_reference_enabled():
            return self._word_rer_scalar(float(sense_time), sigma)
        # ndtr(-x) is scipy's own norm.sf(x) without the distribution
        # dispatch overhead (stats._norm_sf(x) = _norm_cdf(-x)).
        per_cell = ndtr(-(self._developed_per_second * sense_time / sigma))
        return min(1.0, float(np.mean(per_cell)) * self.engine.word_bits)

    def _word_rer_scalar(self, sense_time: float, sigma: float) -> float:
        """Reference kernel: one cell at a time (``REPRO_VAET_SCALAR``)."""
        terms = [
            float(ndtr(-(developed * sense_time / sigma)))
            for developed in self._developed_per_second
        ]
        mean_rer = math.fsum(terms) / len(terms)
        return min(1.0, mean_rer * self.engine.word_bits)

    def _word_rer_batch(self, sense_times: np.ndarray, sigma: float) -> np.ndarray:
        """Vectorised :meth:`word_rer` over an array of sense times."""
        developed = self._developed_per_second[None, :] * sense_times[:, None]
        per_cell = ndtr(-(developed / sigma))
        mean_rer = np.where(
            sense_times > 0.0, np.mean(per_cell, axis=1), 1.0
        )
        return np.minimum(1.0, mean_rer * self.engine.word_bits)

    def read_margin(self, rer_target: float) -> ReadMarginResult:
        """Solve the sense time for a per-word RER target."""
        if not 0.0 < rer_target < 1.0:
            raise ValueError("RER target must be in (0, 1)")

        def gap(log_time: float) -> float:
            return math.log(
                max(self.word_rer(math.exp(log_time)), 1e-300)
            ) - math.log(rer_target)

        lo, hi = math.log(1e-12), math.log(1e-6)
        sense_time = math.exp(optimize.brentq(gap, lo, hi, xtol=1e-4))
        regen = self.engine.leaf.sense.delay - self.engine.leaf.sense.develop_time
        total = self.engine._overhead + sense_time + regen
        return ReadMarginResult(rer_target, sense_time, total)
