"""VAET-STT top level: the variation-aware memory estimator.

Produces the Table 1 comparison — nominal (NVSim) values next to the
mean and standard deviation of the variation-aware distributions — and
bundles the margin, ECC and read-disturb analyses behind one object.

"The results show that the variation-aware latency and energy values
are significantly higher than those of the nominal case, highlighting
the importance of variation-aware analysis." (Sec. III)
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cells.cellconfig import CellConfig
from repro.nvsim.config import MemoryConfig
from repro.nvsim.estimator import NVSimEstimator
from repro.nvsim.result import MemoryEstimate
from repro.pdk.kit import ProcessDesignKit
from repro.utils.table import Table
from repro.vaet.distributions import DistributionSummary, summarize
from repro.vaet.ecc import ECCAnalysis
from repro.vaet.error_rates import ErrorRateAnalysis
from repro.vaet.montecarlo import MonteCarloEngine
from repro.vaet.read_disturb import ReadDisturbAnalysis
from repro.vaet.variation_model import VariationModel


@dataclass(frozen=True)
class VariationAwareEstimate:
    """Nominal + distribution estimate of one memory macro (Table 1).

    Attributes:
        nominal: The variation-unaware NVSim estimate.
        write_latency: Distribution of word write latency.
        write_energy: Distribution of word write energy.
        read_latency: Distribution of word read latency.
        read_energy: Distribution of word read energy.
    """

    nominal: MemoryEstimate
    write_latency: DistributionSummary
    write_energy: DistributionSummary
    read_latency: DistributionSummary
    read_energy: DistributionSummary

    def render(self, title: str = "VAET-STT estimate") -> str:
        """Render the Table-1-style nominal / mu / sigma table."""
        table = Table(["metric", "nominal", "mu", "sigma"], title=title)
        rows = [
            ("write latency (ns)", self.nominal.write_latency, self.write_latency, 1e9),
            ("write energy (pJ)", self.nominal.write_energy, self.write_energy, 1e12),
            ("read latency (ns)", self.nominal.read_latency, self.read_latency, 1e9),
            ("read energy (pJ)", self.nominal.read_energy, self.read_energy, 1e12),
        ]
        for label, nominal, dist, scale in rows:
            table.add_row(
                [label, nominal * scale, dist.mean * scale, dist.std * scale]
            )
        return table.render()


class VAETSTT:
    """Variation Aware Estimator Tool for STT-MRAM (paper ref. [6]).

    Args:
        pdk: Hybrid PDK at the node under study.
        config: Memory organisation.
        cell_config: Optional characterised bit cell.
        seed: Monte Carlo seed (fixed for reproducible tables).
        error_population: Cell population sampled by the margin solver.
            The default reproduces the paper tables; DSE campaigns dial
            it down for throughput.
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        config: MemoryConfig,
        cell_config: Optional[CellConfig] = None,
        seed: int = 2018,
        error_population: int = 200_000,
    ):
        self.pdk = pdk
        self.config = config
        self.nvsim = NVSimEstimator(pdk, config, cell_config)
        self.variation = VariationModel(pdk, self.nvsim.subarray)
        self._leaf_timing = self.nvsim.subarray.timing()
        self._bank_timing = self.nvsim.bank.timing()
        self.engine = MonteCarloEngine(
            self.variation, self._leaf_timing, self._bank_timing, config.word_bits
        )
        self.seed = seed
        self.error_population = error_population
        self._error_analyses: dict = {}
        self._ecc_analyses: dict = {}
        self._disturb_analyses: dict = {}

    def estimate(
        self, num_words: int = 4000, seed: Optional[int] = None
    ) -> VariationAwareEstimate:
        """Monte Carlo the Table-1 distributions.

        Args:
            num_words: Sampled word count.
            seed: Explicit RNG seed for this estimate; defaults to the
                tool seed so existing tables are bit-identical.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        writes = self.engine.sample_writes(rng, num_words)
        reads = self.engine.sample_reads(rng, num_words)
        return VariationAwareEstimate(
            nominal=self.nvsim.estimate(),
            write_latency=summarize(writes.latency),
            write_energy=summarize(writes.energy),
            read_latency=summarize(reads.latency),
            read_energy=summarize(reads.energy),
        )

    def error_rates(self, seed: Optional[int] = None) -> ErrorRateAnalysis:
        """The Fig. 7 margin solver (cached per seed — sampling is heavy)."""
        key = self.seed if seed is None else seed
        if key not in self._error_analyses:
            self._error_analyses[key] = ErrorRateAnalysis(
                self.engine, population=self.error_population, seed=key
            )
        return self._error_analyses[key]

    def ecc(self) -> ECCAnalysis:
        """The Fig. 8 ECC study (cached per seed, like the margin solver)."""
        key = self.seed
        if key not in self._ecc_analyses:
            self._ecc_analyses[key] = ECCAnalysis(self.error_rates())
        return self._ecc_analyses[key]

    def read_disturb(self) -> ReadDisturbAnalysis:
        """The Fig. 9 read-disturb study (cached per seed — its
        per-cell dwell-time pass over the population is heavy)."""
        key = self.seed
        if key not in self._disturb_analyses:
            self._disturb_analyses[key] = ReadDisturbAnalysis(self.error_rates())
        return self._disturb_analyses[key]
