"""Variation-aware design-space exploration.

Sec. III: VAET-STT is "an early stage design exploration tool for
STT-MRAM, which considers process variation, stochastic switching and
reliability requirements in its analysis and memory configuration
optimization"; Sec. IV-B adds "optimization settings (e.g. buffer
design optimization) and various design constraints to facilitate a
variation-aware design space exploration before the fabrication of the
actual memory chip."

The explorer sweeps organisation knobs (subarray shape, ECC strength)
under reliability constraints (target WER/RER, read-disturb budget)
and reports the latency/energy/area frontier.
"""

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence

from repro.nvsim.config import MemoryConfig
from repro.pdk.kit import ProcessDesignKit
from repro.utils.serde import check_known_fields
from repro.utils.table import Table
from repro.vaet.estimator import VAETSTT


@dataclass(frozen=True)
class DesignConstraints:
    """Reliability constraints of the exploration.

    Attributes:
        wer_target: Per-word write error target after ECC.
        rer_target: Per-word read error target.
        disturb_budget: Per-word read-disturb budget per access.  The
            disturb tail is dominated by weak (low-Delta) cells, so the
            practical budget sits orders of magnitude above the WER/RER
            targets; scrubbing plus the write-path ECC absorbs it.
        max_ecc_bits: Largest correction capability considered.
    """

    wer_target: float = 1e-15
    rer_target: float = 1e-15
    disturb_budget: float = 1e-4
    max_ecc_bits: int = 3

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (cache-key safe)."""
        return {
            "wer_target": self.wer_target,
            "rer_target": self.rer_target,
            "disturb_budget": self.disturb_budget,
            "max_ecc_bits": self.max_ecc_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignConstraints":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration.

    Attributes:
        config: The memory organisation.
        ecc_bits: Chosen ECC correction capability.
        write_latency: Margined write latency meeting the WER target [s].
        read_latency: Margined read latency meeting the RER target [s].
        write_energy: Mean variation-aware write energy [J].
        read_energy: Mean variation-aware read energy [J].
        area: Macro area including ECC storage overhead [m^2].
        read_disturb_ok: Whether the margined read period respects the
            disturb budget.
    """

    config: MemoryConfig
    ecc_bits: int
    write_latency: float
    read_latency: float
    write_energy: float
    read_energy: float
    area: float
    read_disturb_ok: bool

    @property
    def edp_proxy(self) -> float:
        """Latency x energy figure of merit (write-dominated)."""
        return self.write_latency * self.write_energy

    def to_dict(self) -> dict:
        """Stable JSON-ready representation (crosses process/cache
        boundaries in ``repro.dse`` campaigns)."""
        return {
            "config": self.config.to_dict(),
            "ecc_bits": self.ecc_bits,
            "write_latency": float(self.write_latency),
            "read_latency": float(self.read_latency),
            "write_energy": float(self.write_energy),
            "read_energy": float(self.read_energy),
            "area": float(self.area),
            "read_disturb_ok": bool(self.read_disturb_ok),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: On unknown keys.
        """
        check_known_fields(cls, data)
        values = dict(data)
        values["config"] = MemoryConfig.from_dict(values["config"])
        return cls(**values)


class DesignSpaceExplorer:
    """Sweep subarray shapes and ECC strengths under constraints.

    Args:
        pdk: Hybrid PDK.
        base_config: Organisation to perturb.
        constraints: Reliability constraints.
        num_words: Monte Carlo word count per evaluation.
        error_population: Margin-solver cell population per evaluation.
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        base_config: MemoryConfig,
        constraints: DesignConstraints = DesignConstraints(),
        num_words: int = 1500,
        error_population: int = 200_000,
    ):
        self.pdk = pdk
        self.base_config = base_config
        self.constraints = constraints
        self.num_words = num_words
        self.error_population = error_population

    def evaluate(
        self, config: MemoryConfig, seed: Optional[int] = None
    ) -> Optional[DesignPoint]:
        """Evaluate one configuration; None if it cannot meet targets.

        Args:
            config: The organisation to evaluate.
            seed: Explicit Monte Carlo seed (defaults to the VAET-STT
                tool seed, preserving historic sweep outputs).
        """
        if seed is None:
            tool = VAETSTT(self.pdk, config, error_population=self.error_population)
        else:
            tool = VAETSTT(
                self.pdk, config, seed=seed, error_population=self.error_population
            )
        estimate = tool.estimate(num_words=self.num_words)
        ecc = tool.ecc()
        constraints = self.constraints
        # The read margin and the disturb budget do not depend on the
        # ECC strength — solve them once, outside the t sweep.
        try:
            read = tool.error_rates().read_margin(constraints.rer_target)
        except ValueError:
            return None
        disturb = tool.read_disturb()
        period_cap = disturb.max_read_period(constraints.disturb_budget)
        disturb_ok = read.sense_time <= period_cap
        best: Optional[DesignPoint] = None
        for t in range(constraints.max_ecc_bits + 1):
            try:
                point = ecc.point(t, constraints.wer_target)
            except ValueError:
                continue
            area = estimate.nominal.area * (1.0 + point.storage_overhead)
            candidate = DesignPoint(
                config=config,
                ecc_bits=t,
                write_latency=point.total_latency,
                read_latency=read.total_latency,
                write_energy=estimate.write_energy.mean,
                read_energy=estimate.read_energy.mean,
                area=area,
                read_disturb_ok=disturb_ok,
            )
            if best is None or candidate.write_latency < best.write_latency:
                best = candidate
        return best

    def sweep_subarrays(
        self,
        subarray_rows_options: Sequence[int] = (128, 256, 512),
        runner=None,
    ) -> List[DesignPoint]:
        """Evaluate the base config at several subarray heights.

        The sweep is a thin wrapper over the :mod:`repro.dse` engine:
        each height becomes a content-hashed job, so a caching/parallel
        :class:`repro.dse.runner.CampaignRunner` can be passed in to
        reuse prior evaluations.  The default serial runner reproduces
        the historic sequential sweep exactly.

        Args:
            subarray_rows_options: Subarray heights to evaluate.
            runner: Optional ``CampaignRunner`` (serial, uncached by
                default).
        """
        from repro.dse.campaign import memory_point_spec, sweep_points
        from repro.dse.jobs import Job
        from repro.dse.runner import MEMORY_TARGET

        jobs = []
        for rows in subarray_rows_options:
            if rows > self.base_config.rows:
                continue
            config = replace(self.base_config, subarray_rows=rows)
            jobs.append(Job(MEMORY_TARGET, memory_point_spec(self, config)))
        return sweep_points(jobs, runner=runner)

    @staticmethod
    def render(points: Iterable[DesignPoint]) -> str:
        """Tabulate a sweep result."""
        table = Table(
            [
                "subarray",
                "ecc_t",
                "write_lat (ns)",
                "read_lat (ns)",
                "write_E (pJ)",
                "area (mm^2)",
                "disturb_ok",
            ],
            title="VAET-STT design space exploration",
        )
        for point in points:
            table.add_row(
                [
                    "%dx%d" % (point.config.subarray_rows, point.config.subarray_cols),
                    point.ecc_bits,
                    point.write_latency * 1e9,
                    point.read_latency * 1e9,
                    point.write_energy * 1e12,
                    point.area * 1e6,
                    point.read_disturb_ok,
                ]
            )
        return table.render()
