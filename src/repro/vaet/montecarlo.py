"""Monte Carlo engine for word-level write/read statistics.

Writes: a word completes when its slowest bit has switched; two-phase
row writes double the pulse stage.  Reads: the word is sensed in
parallel and completes when the weakest-signal bit has developed the
required margin.  Both are sampled fully vectorised.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.nvsim.bank import BankTiming
from repro.nvsim.subarray import SubarrayTiming
from repro.vaet.variation_model import VariationModel, scalar_reference_enabled


@dataclass
class WriteSamples:
    """Word-level write Monte Carlo output.

    Attributes:
        latency: Per-word write completion latency [s] (overhead + two
            self-timed phases).
        energy: Per-word write energy [J] at the margined pulse.
        cell_times: Raw per-cell switching times (flattened) [s].
    """

    latency: np.ndarray
    energy: np.ndarray
    cell_times: np.ndarray


@dataclass
class ReadSamples:
    """Word-level read Monte Carlo output.

    Attributes:
        latency: Per-word read latency [s].
        energy: Per-word read energy [J].
        signal_currents: Raw per-cell sense signals (flattened) [A].
    """

    latency: np.ndarray
    energy: np.ndarray
    signal_currents: np.ndarray


class MonteCarloEngine:
    """Word-level sampler bound to one array configuration.

    Args:
        variation: The per-cell variation model.
        subarray_timing: Nominal leaf timing (supplies the RC overheads
            that ride on every access).
        bank_timing: Nominal bank overhead (decoder, H-tree).
        word_bits: Bits per access word.
    """

    def __init__(
        self,
        variation: VariationModel,
        subarray_timing: SubarrayTiming,
        bank_timing: BankTiming,
        word_bits: int,
    ):
        self.variation = variation
        self.leaf = subarray_timing
        self.bank = bank_timing
        self.word_bits = word_bits
        tech = variation.pdk.tech
        self._vdd = tech.vdd
        self._overhead = (
            self.bank.overhead_delay
            + self.leaf.wordline_delay
            + self.leaf.bitline_delay
        )
        self._periphery_energy = (
            self.bank.decoder.energy + self.bank.htree_energy
        )
        self._active_subarrays = variation.subarray.config.active_subarrays

    def sample_writes(
        self, rng: np.random.Generator, num_words: int, margin_sigmas: float = 2.0
    ) -> WriteSamples:
        """Sample ``num_words`` word writes.

        Latency: overhead + 2 x (max switching time over the word's
        bits) — the self-timed completion of the two write phases.
        Energy: every bit is driven for the *margined* pulse (mean
        completion + ``margin_sigmas`` sigma), since an open-loop array
        cannot cut power per bit the instant it happens to switch.
        """
        cells = self.variation.sample_cells(rng, num_words * self.word_bits)
        times = self.variation.sample_switching_times(cells, rng)
        currents = self.variation.delivered_write_current(cells)
        if scalar_reference_enabled():
            return self._sample_writes_scalar(
                times, currents, num_words, margin_sigmas
            )
        matrix = times.reshape(num_words, self.word_bits)
        finite = np.where(np.isfinite(matrix), matrix, np.nan)
        word_max = np.nanmax(finite, axis=1)
        # Words containing a non-switching cell get the window cap.
        word_max = np.where(np.isnan(word_max), 100e-9, word_max)
        has_stuck = np.any(~np.isfinite(matrix), axis=1)
        word_max = np.where(has_stuck, 100e-9, word_max)
        latency = self._overhead + 2.0 * word_max

        applied_pulse = 2.0 * (
            float(np.mean(word_max)) + margin_sigmas * float(np.std(word_max))
        )
        current_matrix = currents.reshape(num_words, self.word_bits)
        cell_energy = np.sum(current_matrix, axis=1) * self._vdd * applied_pulse / 2.0
        # The /2 reflects that each bit conducts in only one of the two
        # phases (half the bits per phase on average).
        energy = self._periphery_energy + cell_energy
        return WriteSamples(latency=latency, energy=energy, cell_times=times)

    def _sample_writes_scalar(
        self, times, currents, num_words: int, margin_sigmas: float
    ) -> WriteSamples:
        """Word-at-a-time reference reduction (``REPRO_VAET_SCALAR``).

        Same statistics as the vectorised path from the same per-cell
        samples; word maxima are exact, the mean/std/energy sums differ
        from numpy's pairwise summation only in the last ulp.
        """
        word_max = np.empty(num_words)
        word_current = np.empty(num_words)
        for w in range(num_words):
            worst = 0.0
            stuck = False
            total_current = 0.0
            for b in range(self.word_bits):
                t = times[w * self.word_bits + b]
                if not np.isfinite(t):
                    stuck = True
                else:
                    worst = max(worst, t)
                total_current += currents[w * self.word_bits + b]
            word_max[w] = 100e-9 if stuck else worst
            word_current[w] = total_current
        mean = math.fsum(word_max) / num_words
        variance = math.fsum((t - mean) ** 2 for t in word_max) / num_words
        applied_pulse = 2.0 * (mean + margin_sigmas * math.sqrt(variance))
        latency = self._overhead + 2.0 * word_max
        energy = (
            self._periphery_energy
            + word_current * self._vdd * applied_pulse / 2.0
        )
        return WriteSamples(latency=latency, energy=energy, cell_times=times)

    def sample_reads(
        self, rng: np.random.Generator, num_words: int
    ) -> ReadSamples:
        """Sample ``num_words`` word reads.

        The sense develop time of each bit is C_bl * dV / I_signal with
        the per-cell signal current; the word completes on the slowest
        bit, plus the regeneration time.
        """
        from repro.nvsim.subarray import READ_BIAS

        cells = self.variation.sample_cells(rng, num_words * self.word_bits)
        signals = self.variation.read_signal_currents(cells)
        # Recompute develop time per cell from the same capacitance the
        # nominal model used: t_nom = C dV / I_nom => C dV = t_nom * I_nom.
        nominal_signal = float(np.median(signals))
        cdv = self.leaf.sense.develop_time * nominal_signal
        develop = cdv / np.maximum(signals, 1e-9)
        if scalar_reference_enabled():
            return self._sample_reads_scalar(cells, signals, develop, num_words)
        matrix = develop.reshape(num_words, self.word_bits)
        word_develop = np.max(matrix, axis=1)
        regen = self.leaf.sense.delay - self.leaf.sense.develop_time
        latency = self._overhead + word_develop + regen

        # Energy: mirror the nominal decomposition (periphery + wordline
        # + per-bit bitline swing + sense static) and add the per-cell
        # conduction term, which scales with the word's develop time.
        read_currents = READ_BIAS / (
            cells.resistance_p
            + self.variation._fixed_path_r / np.sqrt(cells.drive_strength)
        )
        current_matrix = read_currents.reshape(num_words, self.word_bits)
        bit_energy = (
            np.sum(current_matrix, axis=1) * READ_BIAS * np.maximum(word_develop, 0.0)
        )
        subarray = self.variation.subarray
        wordline = self._active_subarrays * subarray.wordline_energy()
        bitline_swing = (
            self.word_bits
            * subarray.bitline.capacitance
            * READ_BIAS
            * self._vdd
        )
        sense_static = self.word_bits * self.leaf.sense.energy
        energy = (
            self._periphery_energy + wordline + bitline_swing + sense_static + bit_energy
        )
        return ReadSamples(latency=latency, energy=energy, signal_currents=signals)

    def _sample_reads_scalar(
        self, cells, signals, develop, num_words: int
    ) -> ReadSamples:
        """Word-at-a-time reference reduction (``REPRO_VAET_SCALAR``)."""
        from repro.nvsim.subarray import READ_BIAS

        read_currents = READ_BIAS / (
            cells.resistance_p
            + self.variation._fixed_path_r / np.sqrt(cells.drive_strength)
        )
        word_develop = np.empty(num_words)
        word_current = np.empty(num_words)
        for w in range(num_words):
            worst = -np.inf
            total_current = 0.0
            for b in range(self.word_bits):
                worst = max(worst, develop[w * self.word_bits + b])
                total_current += read_currents[w * self.word_bits + b]
            word_develop[w] = worst
            word_current[w] = total_current
        regen = self.leaf.sense.delay - self.leaf.sense.develop_time
        latency = self._overhead + word_develop + regen
        bit_energy = word_current * READ_BIAS * np.maximum(word_develop, 0.0)
        subarray = self.variation.subarray
        wordline = self._active_subarrays * subarray.wordline_energy()
        bitline_swing = (
            self.word_bits
            * subarray.bitline.capacitance
            * READ_BIAS
            * self._vdd
        )
        sense_static = self.word_bits * self.leaf.sense.energy
        energy = (
            self._periphery_energy + wordline + bitline_swing + sense_static + bit_energy
        )
        return ReadSamples(latency=latency, energy=energy, signal_currents=signals)
