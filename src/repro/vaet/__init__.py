"""VAET-STT: variation-aware estimation for STT-MRAM (Table 1, Figs. 7-9)."""

from repro.vaet.variation_model import CellSamples, VariationModel, oblate_demag_factor_vec
from repro.vaet.distributions import (
    DistributionSummary,
    exceedance_quantile,
    summarize,
)
from repro.vaet.montecarlo import MonteCarloEngine, ReadSamples, WriteSamples
from repro.vaet.error_rates import (
    ErrorRateAnalysis,
    ReadMarginResult,
    WriteMarginResult,
)
from repro.vaet.ecc import (
    ECCAnalysis,
    ECCPoint,
    bch_parity_bits,
    block_failure_probability,
    per_bit_budget,
)
from repro.vaet.read_disturb import ReadDisturbAnalysis, ReadDisturbPoint
from repro.vaet.estimator import VAETSTT, VariationAwareEstimate
from repro.vaet.retention_faults import FIT_HOURS, RetentionFaultModel, ScrubPoint
from repro.vaet.explorer import DesignConstraints, DesignPoint, DesignSpaceExplorer

__all__ = [
    "CellSamples",
    "VariationModel",
    "oblate_demag_factor_vec",
    "DistributionSummary",
    "exceedance_quantile",
    "summarize",
    "MonteCarloEngine",
    "ReadSamples",
    "WriteSamples",
    "ErrorRateAnalysis",
    "ReadMarginResult",
    "WriteMarginResult",
    "ECCAnalysis",
    "ECCPoint",
    "bch_parity_bits",
    "block_failure_probability",
    "per_bit_budget",
    "ReadDisturbAnalysis",
    "ReadDisturbPoint",
    "VAETSTT",
    "VariationAwareEstimate",
    "FIT_HOURS",
    "RetentionFaultModel",
    "ScrubPoint",
    "DesignConstraints",
    "DesignPoint",
    "DesignSpaceExplorer",
]
