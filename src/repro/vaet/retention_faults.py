"""Retention-fault accumulation and scrubbing analysis.

The write-path analyses (Figs. 7-8) margin against *write* errors;
over the storage lifetime, thermally-activated retention flips
accumulate instead.  With a t-error-correcting code per word, the array
fails when t+1 flips gather in one word between scrub passes — so the
scrub interval is the design knob trading controller energy against
the uncorrectable-failure (FIT) target.

Process variation matters here even more than for writes: the mean
per-bit flip rate is dominated by the weak-Delta tail of the cell
population, exactly like the read-disturb analysis.
"""

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import optimize, stats

from repro.core.thermal import ATTEMPT_TIME
from repro.vaet.error_rates import ErrorRateAnalysis

#: One FIT = one failure per 1e9 device-hours.
FIT_HOURS = 1e9


@dataclass(frozen=True)
class ScrubPoint:
    """One scrub-interval evaluation.

    Attributes:
        scrub_interval: Time between scrub passes [s].
        per_bit_flip_probability: Population-mean P(flip) per interval.
        word_failure_probability: P(> t flips in one word) per interval.
        array_fit: Uncorrectable-failure rate of the whole array [FIT].
    """

    scrub_interval: float
    per_bit_flip_probability: float
    word_failure_probability: float
    array_fit: float


class RetentionFaultModel:
    """Retention-flip statistics over a sampled cell population.

    Args:
        analysis: The shared cell population (reuses the Fig. 7
            sampler so the weak-cell tail is consistent across
            analyses).
        ecc_correct_bits: Correction capability t of the word ECC.
        temperature_factor: Multiplier on 1/Delta for hot operation
            (1.0 = the population's native temperature).
        screen_quantile: Fraction of the weakest-Delta cells mapped out
            by factory retention test and repaired with redundancy —
            standard STT-MRAM practice, since the retention tail is
            *static* (the same weak cells always fail) and therefore
            repairable, unlike the stochastic write tail.
    """

    def __init__(
        self,
        analysis: ErrorRateAnalysis,
        ecc_correct_bits: int = 1,
        temperature_factor: float = 1.0,
        screen_quantile: float = 0.001,
    ):
        if ecc_correct_bits < 0:
            raise ValueError("ECC capability must be non-negative")
        if temperature_factor <= 0.0:
            raise ValueError("temperature factor must be positive")
        if not 0.0 <= screen_quantile < 0.5:
            raise ValueError("screen quantile must be in [0, 0.5)")
        self.analysis = analysis
        self.engine = analysis.engine
        self.ecc_correct_bits = ecc_correct_bits
        self.screen_quantile = screen_quantile
        delta = analysis.cells.delta / temperature_factor
        if screen_quantile > 0.0:
            threshold = np.quantile(delta, screen_quantile)
            delta = delta[delta >= threshold]
            self.screen_delta_threshold = float(threshold)
        else:
            self.screen_delta_threshold = 0.0
        exponent = np.minimum(delta, 700.0)
        self._tau = ATTEMPT_TIME * np.exp(exponent)

    @property
    def words_in_array(self) -> int:
        """Word count of the configured array."""
        config = self.engine.variation.subarray.config
        return config.capacity_bits // self.engine.word_bits

    def per_bit_flip_probability(self, interval: float) -> float:
        """Population-mean per-bit flip probability over ``interval``."""
        if interval < 0.0:
            raise ValueError("interval must be non-negative")
        ratio = np.minimum(interval / self._tau, 700.0)
        return float(np.mean(-np.expm1(-ratio)))

    def word_failure_probability(self, interval: float) -> float:
        """P(more than t flips in one word) within one scrub interval."""
        p = self.per_bit_flip_probability(interval)
        n = self.engine.word_bits
        return float(stats.binom.sf(self.ecc_correct_bits, n, p))

    def point(self, interval: float) -> ScrubPoint:
        """Evaluate one scrub interval."""
        p_bit = self.per_bit_flip_probability(interval)
        p_word = self.word_failure_probability(interval)
        # Failures per interval across the array -> per hour -> FIT.
        failures_per_hour = p_word * self.words_in_array * 3600.0 / interval
        return ScrubPoint(
            scrub_interval=interval,
            per_bit_flip_probability=p_bit,
            word_failure_probability=p_word,
            array_fit=failures_per_hour * FIT_HOURS,
        )

    def sweep(self, intervals: Sequence[float]) -> List[ScrubPoint]:
        """Evaluate a ladder of scrub intervals."""
        return [self.point(interval) for interval in intervals]

    def scrub_interval_for_fit(
        self, fit_target: float, bounds: tuple = (1e-3, 1e8)
    ) -> float:
        """Longest scrub interval meeting a FIT target [s].

        Raises:
            ValueError: If the target is unreachable within bounds
                (even continuous scrubbing cannot fix stuck-weak cells).
        """
        if fit_target <= 0.0:
            raise ValueError("FIT target must be positive")
        low, high = bounds

        def gap(log_interval: float) -> float:
            point = self.point(math.exp(log_interval))
            return math.log(max(point.array_fit, 1e-300)) - math.log(fit_target)

        if gap(math.log(low)) > 0.0:
            raise ValueError(
                "FIT target %.3g unreachable even at %.3g s scrubbing"
                % (fit_target, low)
            )
        if gap(math.log(high)) < 0.0:
            return high
        return math.exp(
            optimize.brentq(gap, math.log(low), math.log(high), xtol=1e-4)
        )

    def scrub_energy_per_day(self, interval: float, access_energy: float) -> float:
        """Controller energy cost of scrubbing [J/day].

        One scrub pass reads (and re-writes a correctable fraction of)
        every word; dominated by the reads.
        """
        passes_per_day = 86400.0 / interval
        return passes_per_day * self.words_in_array * access_energy
