"""Vectorised per-cell variation sampling for VAET-STT.

Sec. III: "the impact of process variation on the magnetic devices
exacerbates the stochastic switching behavior of the MTJ".  Three
variation sources are sampled jointly, all vectorised with numpy so a
10^6-cell Monte Carlo runs in milliseconds:

* **magnetic CD** — pillar diameter spread shifts area, H_k,eff, Delta
  and hence I_c0 per cell;
* **MgO thickness** — lognormal RA factor shifts both resistance states
  (correlated), changing the delivered write current and read signal;
* **CMOS mismatch** — driver/access strength factor from Pelgrom V_th
  spread, changing the delivered current;

plus the *stochastic* (not process) initial-angle draw per write event,
which is what gives even one fixed cell a switching-time distribution.
"""

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.nvsim.subarray import SubarrayModel
from repro.pdk.kit import ProcessDesignKit
from repro.utils.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    HBAR,
    MU_0,
    ROOM_TEMPERATURE,
)


#: Environment flag selecting the cell-at-a-time reference kernels.
#: The reference draws each variation source in the same order as the
#: vectorised path (one ``Generator`` stream element per cell), so the
#: random streams are bit-identical and the fast path can be pinned
#: against it to the last ulp — see tests/vaet/test_vector_equivalence.py.
SCALAR_REFERENCE_ENV = "REPRO_VAET_SCALAR"


def scalar_reference_enabled() -> bool:
    """True when the scalar (loop-based) reference kernels are forced."""
    return os.environ.get(SCALAR_REFERENCE_ENV, "") not in ("", "0")


def oblate_demag_factor_vec(aspect: np.ndarray) -> np.ndarray:
    """Vectorised axial demag factor of an oblate spheroid (m > 1)."""
    m = np.asarray(aspect, dtype=float)
    q = m * m - 1.0
    return (m * m / q) * (1.0 - np.arcsin(np.sqrt(q) / m) / np.sqrt(q))


@dataclass
class CellSamples:
    """Arrays of per-cell physical parameters (all same length).

    Attributes:
        diameter: Pillar diameters [m].
        delta: Thermal stability factors [-].
        critical_current: I_c0 per cell [A].
        resistance_p: Parallel resistance at low bias [ohm].
        resistance_ap_write: AP resistance at the write bias [ohm].
        drive_strength: CMOS path strength factor (1 = nominal).
        rate_prefactor: alpha*gamma0*Hk/(1+alpha^2) per cell [1/s]
            (multiply by (I/Ic0 - 1) for the precessional rate).
    """

    diameter: np.ndarray
    delta: np.ndarray
    critical_current: np.ndarray
    resistance_p: np.ndarray
    resistance_ap_write: np.ndarray
    drive_strength: np.ndarray
    rate_prefactor: np.ndarray

    def __len__(self) -> int:
        return len(self.diameter)


class VariationModel:
    """Joint sampler of process + stochastic variation for one PDK.

    Args:
        pdk: Hybrid PDK (carries the node-scaled sigma values).
        subarray: Array context (path resistances, write bias).
        temperature: Operating temperature [K].
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        subarray: SubarrayModel,
        temperature: float = ROOM_TEMPERATURE,
    ):
        self.pdk = pdk
        self.subarray = subarray
        self.temperature = temperature
        material = pdk.free_layer
        self._material = material
        self._thickness = pdk.memory_pillar.free_layer_thickness
        self._d0 = pdk.memory_pillar.diameter
        # Fixed (CMOS + wire) series resistance of the write path.
        transport = pdk.mtj_transport()
        bias = 0.5 * pdk.tech.vdd
        self._fixed_path_r = (
            subarray._mtj_path_resistance(True, bias)
            - transport.state_resistance(True, bias)
        )
        self._write_bias = bias
        self._tmr_nominal = pdk.barrier.tmr_zero_bias
        self._vh = pdk.barrier.tmr_half_voltage
        self._ra = pdk.barrier.resistance_area_product
        # Combined CMOS current-strength sigma: Pelgrom Vth on the two
        # series devices -> relative drive shift via the alpha-power law.
        cmos = pdk.variation.cmos
        tech = pdk.tech
        vth_sigma = cmos.vth_sigma(4.0 * tech.min_width_um, tech.node_nm * 1e-3)
        overdrive = tech.vdd - tech.vth_n
        alpha = tech.velocity_saturation_alpha
        self._strength_sigma = math.hypot(
            alpha * vth_sigma / overdrive, cmos.k_prime_sigma_rel
        )

    # -- per-cell physics, vectorised ----------------------------------

    def _hk_eff(self, diameter: np.ndarray) -> np.ndarray:
        material = self._material
        t = self._thickness
        interface = 2.0 * material.interfacial_anisotropy / (MU_0 * material.ms * t)
        nz = oblate_demag_factor_vec(diameter / t)
        nx = (1.0 - nz) / 2.0
        return interface - (nz - nx) * material.ms

    def _delta(self, diameter: np.ndarray, hk: np.ndarray) -> np.ndarray:
        material = self._material
        k_eff = 0.5 * MU_0 * material.ms * np.maximum(hk, 1.0)
        wall = math.pi * np.sqrt(material.exchange_stiffness / k_eff)
        d_eff = np.minimum(diameter, wall)
        volume = math.pi * (d_eff / 2.0) ** 2 * self._thickness
        barrier = 0.5 * MU_0 * material.ms * np.maximum(hk, 0.0) * volume
        return barrier / (BOLTZMANN * self.temperature)

    def sample_cells(self, rng: np.random.Generator, size: int) -> CellSamples:
        """Draw ``size`` independent cell instances."""
        if scalar_reference_enabled():
            return self._sample_cells_scalar(rng, size)
        mtj_var = self.pdk.variation.mtj
        material = self._material
        diameter = self._d0 * np.maximum(
            0.3, 1.0 + rng.normal(0.0, mtj_var.diameter_sigma_rel, size)
        )
        hk = self._hk_eff(diameter)
        delta = self._delta(diameter, hk)
        ic0 = (
            4.0
            * ELEMENTARY_CHARGE
            * material.damping
            * delta
            * BOLTZMANN
            * self.temperature
            / (HBAR * material.polarization)
        )
        area = math.pi * (diameter / 2.0) ** 2
        ra_sigma = mtj_var.ra_thickness_sensitivity * mtj_var.mgo_thickness_sigma_rel
        ra = self._ra * np.exp(rng.normal(0.0, ra_sigma, size))
        r_p = ra / area
        tmr = self._tmr_nominal * np.maximum(
            0.2, 1.0 + rng.normal(0.0, mtj_var.tmr_sigma_rel, size)
        )
        tmr_write = tmr / (1.0 + (self._write_bias / self._vh) ** 2)
        r_ap_write = r_p * (1.0 + tmr_write)
        strength = np.maximum(
            0.3, 1.0 + rng.normal(0.0, self._strength_sigma, size)
        )
        rate_prefactor = (
            material.damping
            * GILBERT_GYROMAGNETIC
            * np.maximum(hk, 0.0)
            / (1.0 + material.damping ** 2)
        )
        return CellSamples(
            diameter=diameter,
            delta=delta,
            critical_current=ic0,
            resistance_p=r_p,
            resistance_ap_write=r_ap_write,
            drive_strength=strength,
            rate_prefactor=rate_prefactor,
        )

    def _sample_cells_scalar(self, rng: np.random.Generator, size: int) -> CellSamples:
        """Cell-at-a-time reference sampler (``REPRO_VAET_SCALAR``).

        Draw order matches :meth:`sample_cells` — every variation
        source is consumed as ``size`` sequential scalar draws, which a
        ``Generator`` produces from exactly the same stream elements as
        one vectorised draw of ``size`` — and the per-cell physics uses
        the same ufuncs one element at a time.  The populations agree
        to the last ulp (numpy's array ufunc loops may round a rare
        element differently than their scalar counterparts; the
        underlying random draws are bit-identical).
        """
        mtj_var = self.pdk.variation.mtj
        material = self._material
        ra_sigma = mtj_var.ra_thickness_sensitivity * mtj_var.mgo_thickness_sigma_rel
        d_draws = [rng.normal(0.0, mtj_var.diameter_sigma_rel) for _ in range(size)]
        ra_draws = [rng.normal(0.0, ra_sigma) for _ in range(size)]
        tmr_draws = [rng.normal(0.0, mtj_var.tmr_sigma_rel) for _ in range(size)]
        strength_draws = [
            rng.normal(0.0, self._strength_sigma) for _ in range(size)
        ]
        columns = {
            name: np.empty(size)
            for name in (
                "diameter", "delta", "critical_current", "resistance_p",
                "resistance_ap_write", "drive_strength", "rate_prefactor",
            )
        }
        for i in range(size):
            diameter = self._d0 * np.maximum(0.3, 1.0 + d_draws[i])
            hk = self._hk_eff(diameter)
            delta = self._delta(diameter, hk)
            area = math.pi * (diameter / 2.0) ** 2
            r_p = self._ra * np.exp(ra_draws[i]) / area
            tmr = self._tmr_nominal * np.maximum(0.2, 1.0 + tmr_draws[i])
            tmr_write = tmr / (1.0 + (self._write_bias / self._vh) ** 2)
            columns["diameter"][i] = diameter
            columns["delta"][i] = delta
            columns["critical_current"][i] = (
                4.0
                * ELEMENTARY_CHARGE
                * material.damping
                * delta
                * BOLTZMANN
                * self.temperature
                / (HBAR * material.polarization)
            )
            columns["resistance_p"][i] = r_p
            columns["resistance_ap_write"][i] = r_p * (1.0 + tmr_write)
            columns["drive_strength"][i] = np.maximum(
                0.3, 1.0 + strength_draws[i]
            )
            columns["rate_prefactor"][i] = (
                material.damping
                * GILBERT_GYROMAGNETIC
                * np.maximum(hk, 0.0)
                / (1.0 + material.damping ** 2)
            )
        return CellSamples(**columns)

    # -- write events ---------------------------------------------------

    def delivered_write_current(self, cells: CellSamples) -> np.ndarray:
        """Write current delivered to each cell [A]."""
        path = cells.resistance_ap_write + self._fixed_path_r / cells.drive_strength
        return self.pdk.tech.vdd / path

    def switching_rates(self, cells: CellSamples) -> np.ndarray:
        """Precessional amplification rate per cell [1/s].

        Cells whose delivered current falls below I_c0 get rate 0 (they
        will not switch in any bounded window — the deep WER tail).
        """
        current = self.delivered_write_current(cells)
        overdrive = current / cells.critical_current
        return cells.rate_prefactor * np.maximum(overdrive - 1.0, 0.0)

    def sample_switching_times(
        self, cells: CellSamples, rng: np.random.Generator
    ) -> np.ndarray:
        """One stochastic switching time per cell [s].

        t = ln(pi / (2 theta_0)) / rate with theta_0^2 ~ Exp(1/Delta)
        (the thermal initial-angle distribution).  Non-switching cells
        (rate 0) return +inf.
        """
        rates = self.switching_rates(cells)
        if scalar_reference_enabled():
            theta0_sq = np.array([
                rng.exponential(1.0 / np.maximum(cells.delta[i], 1.0))
                for i in range(len(cells))
            ])
        else:
            theta0_sq = rng.exponential(1.0 / np.maximum(cells.delta, 1.0))
        theta0 = np.sqrt(np.maximum(theta0_sq, 1e-12))
        log_term = np.log(np.maximum(math.pi / 2.0 / theta0, 1.0 + 1e-9))
        with np.errstate(divide="ignore"):
            times = np.where(rates > 0.0, log_term / np.maximum(rates, 1e-30), np.inf)
        return times

    # -- read events ------------------------------------------------------

    def read_signal_currents(self, cells: CellSamples) -> np.ndarray:
        """Differential sense current (cell vs midpoint reference) [A].

        The read path sees roughly half the log-mismatch of the write
        path: the write drivers are two minimum-ish devices in series,
        while the read column shares a larger biased access path whose
        mismatch partially averages out.
        """
        from repro.nvsim.subarray import READ_BIAS

        tmr_read = self._tmr_nominal / (1.0 + (READ_BIAS / self._vh) ** 2)
        r_ap = cells.resistance_p * (1.0 + tmr_read)
        read_strength = np.sqrt(cells.drive_strength)
        fixed = self._fixed_path_r / read_strength
        i_p = READ_BIAS / (cells.resistance_p + fixed)
        i_ap = READ_BIAS / (r_ap + fixed)
        return 0.5 * (i_p - i_ap)
