"""Magnetic material descriptions for the MSS stack.

The Multifunctional Standardized Stack (MSS) of the GREAT project is a
perpendicular CoFeB/MgO/CoFeB magnetic tunnel junction.  The free layer
material parameters here are the knobs the compact models consume:
saturation magnetisation, interfacial perpendicular anisotropy, damping,
spin polarisation and the MgO barrier transport properties.

Default values are calibrated to the ranges published for the GREAT
technology (Singulus-deposited, TowerJazz-integrated p-MTJ stacks):
TMR ~ 120 %, RA ~ 6 ohm*um^2, alpha ~ 0.01, Ms ~ 1.1 MA/m.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FreeLayerMaterial:
    """Material parameters of the MSS free layer (CoFeB).

    Attributes:
        name: Human-readable label.
        ms: Saturation magnetisation [A/m].
        interfacial_anisotropy: Interfacial PMA energy density Ki [J/m^2].
            Perpendicular anisotropy in thin CoFeB/MgO comes from the
            interface, so the effective bulk anisotropy scales as Ki/t.
        damping: Gilbert damping constant alpha [-].
        polarization: Spin polarisation P of the tunnelling current [-].
        exchange_stiffness: Exchange constant A_ex [J/m]; sets the domain
            wall width that caps the thermally-relevant volume of large
            pillars (nucleation-limited reversal).
    """

    name: str = "CoFeB"
    ms: float = 1.1e6
    interfacial_anisotropy: float = 1.03e-3
    damping: float = 0.01
    polarization: float = 0.6
    exchange_stiffness: float = 2.0e-11

    def __post_init__(self) -> None:
        if self.ms <= 0.0:
            raise ValueError("saturation magnetisation must be positive")
        if not 0.0 < self.damping < 1.0:
            raise ValueError("Gilbert damping must be in (0, 1)")
        if not 0.0 < self.polarization <= 1.0:
            raise ValueError("spin polarisation must be in (0, 1]")
        if self.interfacial_anisotropy < 0.0:
            raise ValueError("interfacial anisotropy must be non-negative")
        if self.exchange_stiffness <= 0.0:
            raise ValueError("exchange stiffness must be positive")

    def with_updates(self, **changes: float) -> "FreeLayerMaterial":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class BarrierMaterial:
    """MgO tunnel barrier transport parameters.

    Attributes:
        name: Human-readable label.
        resistance_area_product: RA product [ohm*m^2].  The paper-era MSS
            stacks target RA around 5-10 ohm*um^2 (5e-12 .. 1e-11 ohm*m^2).
        tmr_zero_bias: Zero-bias TMR ratio (R_AP - R_P) / R_P [-].
        tmr_half_voltage: Bias voltage at which TMR halves, V_h [V].
            Implements the usual TMR(V) = TMR0 / (1 + (V / V_h)^2) roll-off.
        breakdown_voltage: Dielectric breakdown voltage of the barrier [V].
            Write pulses must stay below this for reliability.
    """

    name: str = "MgO"
    resistance_area_product: float = 6.0e-12
    tmr_zero_bias: float = 1.2
    tmr_half_voltage: float = 0.5
    breakdown_voltage: float = 1.5

    def __post_init__(self) -> None:
        if self.resistance_area_product <= 0.0:
            raise ValueError("RA product must be positive")
        if self.tmr_zero_bias <= 0.0:
            raise ValueError("TMR must be positive")
        if self.tmr_half_voltage <= 0.0:
            raise ValueError("TMR half-voltage must be positive")
        if self.breakdown_voltage <= 0.0:
            raise ValueError("breakdown voltage must be positive")

    def tmr_at_bias(self, voltage: float) -> float:
        """TMR ratio at the given bias voltage (symmetric roll-off model)."""
        return self.tmr_zero_bias / (1.0 + (voltage / self.tmr_half_voltage) ** 2)

    def with_updates(self, **changes: float) -> "BarrierMaterial":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Baseline MSS free layer used throughout the library.
MSS_FREE_LAYER = FreeLayerMaterial()

#: Baseline MSS MgO barrier used throughout the library.
MSS_BARRIER = BarrierMaterial()
