"""Compact resistance/transport model of the MSS tunnel junction.

The MTJ "behaves as a bistable element ... [or] as a variable
resistance for analog applications" (Sec. I).  Both behaviours come
from one transport equation: the junction conductance depends on the
angle between free and reference layer magnetisation, and the TMR
rolls off with bias voltage.

The angular model is the standard Slonczewski/Julliere form used by
Verilog-A MTJ compact models (paper ref. [1], Jabeur et al. 2014):

    R(theta, V) = R_P * (1 + TMR(V)) / (1 + TMR(V) * (1 + cos theta) / 2)

which interpolates between R_P (parallel, theta = 0) and
R_AP = R_P * (1 + TMR) (anti-parallel, theta = pi).
"""

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.material import BarrierMaterial

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class MTJTransport:
    """Angle- and bias-dependent MTJ resistance.

    Attributes:
        geometry: Pillar geometry (sets R_P through the RA product).
        barrier: MgO barrier transport parameters.
    """

    geometry: PillarGeometry
    barrier: BarrierMaterial

    @property
    def parallel_resistance(self) -> float:
        """Zero-bias parallel-state resistance R_P [ohm]."""
        return self.barrier.resistance_area_product / self.geometry.area

    @property
    def antiparallel_resistance(self) -> float:
        """Zero-bias anti-parallel resistance R_AP [ohm]."""
        return self.parallel_resistance * (1.0 + self.barrier.tmr_zero_bias)

    def tmr(self, voltage: float = 0.0) -> float:
        """TMR ratio at the given bias voltage."""
        return self.barrier.tmr_at_bias(voltage)

    def resistance(self, cos_angle: ArrayLike, voltage: float = 0.0) -> ArrayLike:
        """Resistance for a relative magnetisation angle [ohm].

        Args:
            cos_angle: cos(theta) between free and reference magnetisation
                (+1 = parallel, -1 = anti-parallel).  Scalar or array.
            voltage: Bias voltage across the junction [V].
        """
        cos_angle = np.clip(cos_angle, -1.0, 1.0)
        tmr = self.tmr(voltage)
        r_p = self.parallel_resistance
        value = r_p * (1.0 + tmr) / (1.0 + tmr * (1.0 + cos_angle) / 2.0)
        if np.isscalar(cos_angle) or (isinstance(value, np.ndarray) and value.ndim == 0):
            return float(value)
        return value

    def conductance(self, cos_angle: ArrayLike, voltage: float = 0.0) -> ArrayLike:
        """Conductance for a relative magnetisation angle [S]."""
        resistance = self.resistance(cos_angle, voltage)
        return 1.0 / resistance

    def state_resistance(self, antiparallel: bool, voltage: float = 0.0) -> float:
        """Resistance of a definite memory state at the given bias [V]."""
        cos_angle = -1.0 if antiparallel else 1.0
        return float(self.resistance(cos_angle, voltage))

    def read_signal(self, voltage: float) -> float:
        """Absolute resistance difference R_AP(V) - R_P(V) [ohm].

        This is the quantity the sense amplifier must resolve; TMR
        roll-off with read voltage shrinks it, which is why read voltage
        cannot simply be raised to speed up sensing.
        """
        return self.state_resistance(True, voltage) - self.state_resistance(False, voltage)

    def bias_for_current(self, current: float, antiparallel: bool, tol: float = 1e-12) -> float:
        """Solve V = I * R(V) for the self-consistent junction bias [V].

        Because TMR (and hence R_AP) depends on V, driving a current
        through the junction requires a fixed-point solve.  Converges in
        a few iterations since the roll-off is mild.
        """
        voltage = abs(current) * self.state_resistance(antiparallel, 0.0)
        for _ in range(100):
            updated = abs(current) * self.state_resistance(antiparallel, voltage)
            if abs(updated - voltage) < tol:
                voltage = updated
                break
            voltage = updated
        return math.copysign(voltage, current)

    def power_dissipation(self, voltage: float, antiparallel: bool) -> float:
        """Instantaneous Joule power V^2 / R(V) in a definite state [W]."""
        return voltage * voltage / self.state_resistance(antiparallel, voltage)
