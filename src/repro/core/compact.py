"""Verilog-A-style compact models of the MSS memory cell.

Paper ref. [1] (Jabeur et al., "Comparison of Verilog-A compact
modelling strategies for spintronic devices") contrasts two strategies
for putting an MTJ into a circuit simulator:

* a **behavioural** model — the magnetisation is a two-state variable;
  switching is an *event* whose delay comes from the analytic
  (Sun/Neel-Brown) expressions.  Fast, adequate for digital design.
* a **physical** model — the magnetisation is a continuous state
  integrated with the LLGS equation at every timestep.  Slow, but
  captures precession, back-hopping and analog behaviour.

Both are implemented here behind one protocol so the SPICE substrate
(:mod:`repro.spice.mtj_element`) can swap them, reproducing the
comparison of ref. [1] in :mod:`benchmarks.bench_compact_models`.
"""

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.llg import LLGConfig, MacrospinLLG, thermal_equilibrium_angle
from repro.core.material import BarrierMaterial, FreeLayerMaterial
from repro.core.mtj import MTJTransport
from repro.core.switching import SwitchingModel
from repro.utils.constants import ROOM_TEMPERATURE


@dataclass
class CompactModelState:
    """Shared observable state of a compact MTJ model.

    Attributes:
        antiparallel: Current logical state (True = AP = logic '1').
        cos_angle: Continuous cos(theta) exposed by physical models;
            behavioural models pin it to +/-1.
    """

    antiparallel: bool
    cos_angle: float


class BehavioralMTJModel:
    """Event-based two-state MTJ compact model.

    The junction is always in P or AP; a write current above I_c0
    accumulates "switching progress" at rate 1/tau(I) and the state
    flips when the progress reaches 1.  Progress relaxes when the
    current is removed (no partial-switching memory beyond the pulse).
    """

    def __init__(
        self,
        material: FreeLayerMaterial,
        geometry: PillarGeometry,
        barrier: BarrierMaterial,
        temperature: float = ROOM_TEMPERATURE,
        initial_antiparallel: bool = False,
    ):
        self.transport = MTJTransport(geometry, barrier)
        self.switching = SwitchingModel(material, geometry, temperature)
        self.state = CompactModelState(
            antiparallel=initial_antiparallel,
            cos_angle=-1.0 if initial_antiparallel else 1.0,
        )
        self._progress = 0.0

    @property
    def critical_current(self) -> float:
        """Critical current of the underlying switching model [A]."""
        return self.switching.critical_current

    def resistance(self, voltage: float = 0.0) -> float:
        """Junction resistance in the present logical state [ohm]."""
        return self.transport.state_resistance(self.state.antiparallel, voltage)

    def _switching_direction_matches(self, current: float) -> bool:
        # Positive current = electrons from the reference layer = favours P.
        if current > 0.0:
            return self.state.antiparallel
        if current < 0.0:
            return not self.state.antiparallel
        return False

    def advance(self, current: float, dt: float) -> bool:
        """Advance the model by ``dt`` seconds at a constant current.

        Returns:
            True if the junction switched during this step.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        if not self._switching_direction_matches(current):
            self._progress = max(0.0, self._progress - dt / 1e-9)
            return False
        magnitude = abs(current)
        if magnitude <= 0.0:
            return False
        tau = self.switching.mean_switching_time(magnitude)
        if math.isinf(tau) or tau <= 0.0:
            return False
        self._progress += dt / tau
        if self._progress >= 1.0:
            self.state.antiparallel = not self.state.antiparallel
            self.state.cos_angle = -1.0 if self.state.antiparallel else 1.0
            self._progress = 0.0
            return True
        return False


class PhysicalMTJModel:
    """LLGS-integrating MTJ compact model.

    Each :meth:`advance` call integrates the macrospin equation, so the
    exposed cos(theta) (and hence resistance) is continuous — precession
    shows up in the resistance waveform exactly as in the Verilog-A
    "physical" strategy of ref. [1].
    """

    def __init__(
        self,
        material: FreeLayerMaterial,
        geometry: PillarGeometry,
        barrier: BarrierMaterial,
        temperature: float = ROOM_TEMPERATURE,
        initial_antiparallel: bool = False,
        timestep: float = 2e-12,
        seed: Optional[int] = None,
    ):
        self.material = material
        self.geometry = geometry
        self.transport = MTJTransport(geometry, barrier)
        self.temperature = temperature
        self.timestep = timestep
        self._seed = seed
        rng = np.random.default_rng(seed)
        # The initial cone angle is always seeded from a finite
        # temperature (room, if the run itself is athermal): a perfectly
        # aligned macrospin sits on the stagnation point and would never
        # switch, which no physical device does.
        seed_temperature = temperature if temperature > 0.0 else ROOM_TEMPERATURE
        stability = SwitchingModel(material, geometry, seed_temperature).stability
        theta0 = thermal_equilibrium_angle(max(stability.delta, 1.0), rng)
        mz_sign = -1.0 if initial_antiparallel else 1.0
        self._m = np.array(
            [math.sin(theta0), 0.0, mz_sign * math.cos(theta0)], dtype=float
        )
        self.state = CompactModelState(
            antiparallel=initial_antiparallel, cos_angle=float(self._m[2])
        )

    def resistance(self, voltage: float = 0.0) -> float:
        """Instantaneous resistance from the continuous angle [ohm]."""
        return float(self.transport.resistance(self.state.cos_angle, voltage))

    def advance(self, current: float, dt: float) -> bool:
        """Integrate the LLGS for ``dt`` seconds at a constant current.

        Returns:
            True if the logical state (sign of m_z) flipped.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        if dt == 0.0:
            return False
        config = LLGConfig(
            material=self.material,
            geometry=self.geometry,
            current=current,
            temperature=self.temperature,
            timestep=self.timestep,
            seed=self._seed,
        )
        solver = MacrospinLLG(config)
        result = solver.run(self._m, dt, record_every=max(1, int(dt / self.timestep)))
        self._m = result.final
        was_ap = self.state.antiparallel
        self.state.cos_angle = float(self._m[2])
        self.state.antiparallel = self._m[2] < 0.0
        return self.state.antiparallel != was_ap
