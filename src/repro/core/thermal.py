"""Thermal stability and data retention of the MSS in memory mode.

"MTJs can have adjustable retention by playing with the diameter of
the stack thus allowing to minimize the switching current according to
the specified retention" (Sec. I).  This module implements exactly that
trade-off: the Neel-Brown retention model, the thermal stability factor
Delta, and the solver that finds the diameter delivering a retention
target.
"""

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize

from repro.core.geometry import PillarGeometry
from repro.core.material import FreeLayerMaterial
from repro.utils.constants import BOLTZMANN, MU_0, ROOM_TEMPERATURE

#: Attempt period of the Neel-Brown model [s]; 1 ns is the standard value.
ATTEMPT_TIME = 1e-9

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class ThermalStability:
    """Thermal stability of one MSS pillar at a given temperature.

    Attributes:
        material: Free layer material.
        geometry: Pillar geometry.
        temperature: Operating temperature [K].
    """

    material: FreeLayerMaterial
    geometry: PillarGeometry
    temperature: float = ROOM_TEMPERATURE

    def __post_init__(self) -> None:
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive")

    @property
    def energy_barrier(self) -> float:
        """Zero-field energy barrier E_b = mu0 Ms H_k,eff V_th / 2 [J].

        Uses the thermally-relevant (nucleation-capped) volume so that
        very wide pillars do not report unphysically large barriers.
        """
        hk = self.geometry.effective_anisotropy_field(self.material)
        if hk <= 0.0:
            return 0.0
        volume = self.geometry.thermally_relevant_volume(self.material)
        return 0.5 * MU_0 * self.material.ms * hk * volume

    @property
    def delta(self) -> float:
        """Thermal stability factor Delta = E_b / k_B T [-]."""
        return self.energy_barrier / (BOLTZMANN * self.temperature)

    def relaxation_time(self, current_ratio: float = 0.0) -> float:
        """Neel-Brown mean time to thermally reverse [s].

        Args:
            current_ratio: I / I_c0 through the junction; spin torque
                linearly lowers the barrier (Koch-Sun model), so
                tau = tau0 * exp(Delta * (1 - I/Ic0)).

        Returns:
            Mean dwell time in the current state; ``inf`` if the
            effective barrier is enormous.
        """
        effective_delta = self.delta * (1.0 - current_ratio)
        if effective_delta <= 0.0:
            return ATTEMPT_TIME
        exponent = min(effective_delta, 700.0)
        return ATTEMPT_TIME * math.exp(exponent)

    def retention_failure_probability(self, dwell_time: float, current_ratio: float = 0.0) -> float:
        """Probability the bit thermally flips within ``dwell_time`` [s]."""
        if dwell_time < 0.0:
            raise ValueError("dwell time must be non-negative")
        tau = self.relaxation_time(current_ratio)
        if math.isinf(tau):
            return 0.0
        ratio = dwell_time / tau
        if ratio > 700.0:
            return 1.0
        return 1.0 - math.exp(-ratio)

    def retention_years(self) -> float:
        """Mean retention expressed in years."""
        return self.relaxation_time() / SECONDS_PER_YEAR


def delta_for_retention(
    retention_seconds: float,
    failure_probability: float = 0.5,
) -> float:
    """Thermal stability factor needed for a retention target.

    Args:
        retention_seconds: Required dwell time [s].
        failure_probability: Acceptable flip probability over that time
            (0.5 reproduces the "mean retention" convention).

    Returns:
        The minimum Delta; ~40 for 10-year retention of a single bit,
        higher once the failure budget is shared across a whole array.
    """
    if retention_seconds <= 0.0:
        raise ValueError("retention must be positive")
    if not 0.0 < failure_probability < 1.0:
        raise ValueError("failure probability must be in (0, 1)")
    # 1 - exp(-t / (tau0 e^Delta)) = p  =>  Delta = ln(t / (tau0 * -ln(1-p)))
    denominator = -math.log1p(-failure_probability)
    return math.log(retention_seconds / (ATTEMPT_TIME * denominator))


def diameter_for_retention(
    material: FreeLayerMaterial,
    retention_seconds: float,
    failure_probability: float = 0.5,
    temperature: float = ROOM_TEMPERATURE,
    thickness: float = 1.3e-9,
    bounds: Optional[tuple] = None,
) -> float:
    """Find the pillar diameter that meets a retention target [m].

    This is the paper's retention-by-diameter design rule.  The solve is
    monotone within the macrospin range because the barrier grows with
    area faster than H_k,eff shrinks.

    Raises:
        ValueError: If no diameter in ``bounds`` achieves the target.
    """
    target_delta = delta_for_retention(retention_seconds, failure_probability)
    low, high = bounds if bounds is not None else (10e-9, 120e-9)

    def gap(diameter: float) -> float:
        geometry = PillarGeometry(diameter=diameter, free_layer_thickness=thickness)
        stability = ThermalStability(material, geometry, temperature)
        return stability.delta - target_delta

    gap_low, gap_high = gap(low), gap(high)
    if gap_low > 0.0:
        return low
    if gap_high < 0.0:
        raise ValueError(
            "retention target Delta=%.1f unreachable below %.0f nm pillar"
            % (target_delta, high * 1e9)
        )
    return float(optimize.brentq(gap, low, high))
