"""Co-integration cross-talk: bias-magnet stray fields on memory cells.

The MSS pitch is that sensor/oscillator bias magnets co-integrate with
memory pillars at the cost of "only one additional lithography step"
(Sec. I).  The price of co-integration is magnetic cross-talk: a
patterned magnet biasing a sensor leaks stray field onto neighbouring
*memory* pillars, and an in-plane field on a perpendicular cell lowers
its energy barrier — degrading retention and write-error margins.

This module computes:

* the on-axis stray field of a bias pair at a victim beyond the
  magnets (same surface-charge model as :mod:`repro.core.bias`);
* the Stoner-Wohlfarth barrier degradation E_b(h) = E_b0 (1 - h)^2 for
  a hard-axis disturb field h = H / H_k,eff;
* the astroid switching boundary (for completeness and testing);
* the **keep-out distance** design rule: the minimum spacing between a
  bias pair and a memory pillar that preserves a retention target.
"""

import math

from scipy import optimize

from repro.core.bias import BiasMagnetPair, rectangular_pole_face_field
from repro.core.geometry import PillarGeometry
from repro.core.material import FreeLayerMaterial
from repro.core.thermal import ThermalStability
from repro.utils.constants import ROOM_TEMPERATURE


def stray_field_on_axis(pair: BiasMagnetPair, distance_from_center: float) -> float:
    """Stray field magnitude at a victim on the bias axis [A/m].

    Args:
        pair: The aggressor bias-magnet pair.
        distance_from_center: Victim position along the magnetisation
            axis, measured from the pair centre [m].  Must be beyond the
            outer magnet face.

    Raises:
        ValueError: If the point lies inside the magnet structure.
    """
    m = pair.material.magnetization
    inner = pair.gap / 2.0
    outer = inner + pair.length
    d = distance_from_center
    if d <= outer:
        raise ValueError(
            "victim at %.3g m is inside/abreast the magnets (outer face %.3g m)"
            % (d, outer)
        )

    def face(dist: float) -> float:
        return rectangular_pole_face_field(m, pair.width, pair.height, dist)

    # Near block: +charge outer face (closer), -charge inner face.
    # Far block: +charge inner face, -charge outer face.
    return (
        face(d - outer) - face(d - inner) + face(d + inner) - face(d + outer)
    )


def barrier_degradation_factor(normalized_field: float) -> float:
    """Stoner-Wohlfarth barrier factor for a hard-axis field.

    E_b(h) = E_b0 (1 - h)^2 for h = H_disturb / H_k,eff in [0, 1];
    zero beyond (the cell loses bistability).
    """
    if normalized_field < 0.0:
        raise ValueError("disturb field magnitude must be non-negative")
    if normalized_field >= 1.0:
        return 0.0
    return (1.0 - normalized_field) ** 2


def astroid_switching_field(angle: float) -> float:
    """Stoner-Wohlfarth astroid: normalised switching field vs angle.

    h_sw(psi) = 1 / (cos(psi)^(2/3) + sin(psi)^(2/3))^(3/2)

    with psi the angle between the applied field and the easy axis;
    1.0 along the axes, minimum 0.5 at 45 degrees.
    """
    psi = abs(angle) % math.pi
    if psi > math.pi / 2.0:
        psi = math.pi - psi
    c = abs(math.cos(psi)) ** (2.0 / 3.0)
    s = abs(math.sin(psi)) ** (2.0 / 3.0)
    return 1.0 / (c + s) ** 1.5


class CrosstalkAnalysis:
    """Keep-out analysis between a bias pair and a memory pillar.

    Args:
        pair: Aggressor bias-magnet pair (sensor or oscillator mode).
        material: Victim free-layer material.
        victim: Victim memory pillar geometry.
        temperature: Operating temperature [K].
    """

    def __init__(
        self,
        pair: BiasMagnetPair,
        material: FreeLayerMaterial,
        victim: PillarGeometry,
        temperature: float = ROOM_TEMPERATURE,
    ):
        self.pair = pair
        self.material = material
        self.victim = victim
        self.temperature = temperature
        self._stability = ThermalStability(material, victim, temperature)
        self._hk = victim.effective_anisotropy_field(material)
        if self._hk <= 0.0:
            raise ValueError("victim pillar has no perpendicular anisotropy")

    @property
    def undisturbed_delta(self) -> float:
        """Victim Delta with no stray field."""
        return self._stability.delta

    def disturbed_delta(self, distance: float) -> float:
        """Victim Delta at a given centre-to-centre spacing [m]."""
        h = stray_field_on_axis(self.pair, distance) / self._hk
        return self.undisturbed_delta * barrier_degradation_factor(h)

    def retention_at_distance(self, distance: float) -> float:
        """Victim mean retention [s] at a given spacing."""
        from repro.core.thermal import ATTEMPT_TIME

        delta = self.disturbed_delta(distance)
        if delta <= 0.0:
            return ATTEMPT_TIME
        return ATTEMPT_TIME * math.exp(min(delta, 700.0))

    def keep_out_distance(self, delta_budget_fraction: float = 0.95) -> float:
        """Minimum spacing preserving a fraction of the victim Delta [m].

        Args:
            delta_budget_fraction: Retained Delta fraction (0.95 = the
                stray field may cost at most 5 % of the barrier).

        Raises:
            ValueError: If the budget is not in (0, 1).
        """
        if not 0.0 < delta_budget_fraction < 1.0:
            raise ValueError("budget fraction must be in (0, 1)")
        target = self.undisturbed_delta * delta_budget_fraction
        outer = self.pair.gap / 2.0 + self.pair.length

        def gap_fn(distance: float) -> float:
            return self.disturbed_delta(distance) - target

        low = outer * 1.01
        high = 1e-4  # 100 um is beyond any stray field of interest
        if gap_fn(low) >= 0.0:
            return low
        return float(optimize.brentq(gap_fn, low, high))
