"""STT switching statics and statistics of the MSS in memory mode.

Everything the memory-path experiments (Table 1, Figs. 7-9) need from
the device lives here:

* the Slonczewski critical current I_c0,
* the mean switching time vs overdrive (precessional regime) and
  vs sub-critical current (thermally-activated regime),
* the write-error-rate WER(t, I) — probability the free layer has NOT
  reversed after a pulse of width t,
* the read-disturb probability — probability the (small) read current
  accidentally reverses the cell during the read period (Fig. 9).

Model choices follow the Koch/Sun macrospin treatment that underpins
essentially all STT-MRAM compact models (and the paper's own VAET-STT
reference [6]).
"""

import math
from dataclasses import dataclass

from repro.core.geometry import PillarGeometry
from repro.core.material import FreeLayerMaterial
from repro.core.thermal import ThermalStability
from repro.utils.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    HBAR,
    ROOM_TEMPERATURE,
)


@dataclass(frozen=True)
class SwitchingModel:
    """Analytic STT switching model for one MSS pillar.

    Attributes:
        material: Free layer material.
        geometry: Pillar geometry.
        temperature: Operating temperature [K].
    """

    material: FreeLayerMaterial
    geometry: PillarGeometry
    temperature: float = ROOM_TEMPERATURE

    @property
    def stability(self) -> ThermalStability:
        """Thermal stability helper bound to the same device."""
        return ThermalStability(self.material, self.geometry, self.temperature)

    @property
    def critical_current(self) -> float:
        """Zero-temperature critical current I_c0 [A].

        I_c0 = (4 e / hbar) * (alpha / eta) * Delta * k_B T

        which is the Slonczewski result rewritten through the thermal
        stability factor — the form that makes the retention/write-current
        trade-off of the paper explicit (larger diameter => larger Delta
        => larger I_c0).
        """
        delta = self.stability.delta
        return (
            4.0
            * ELEMENTARY_CHARGE
            * self.material.damping
            * delta
            * BOLTZMANN
            * self.temperature
            / (HBAR * self.material.polarization)
        )

    @property
    def critical_current_density(self) -> float:
        """Critical current density J_c0 [A/m^2]."""
        return self.critical_current / self.geometry.area

    def relaxation_rate(self, overdrive: float) -> float:
        """Precessional growth rate 1/tau for I > I_c0 [1/s].

        1/tau = (alpha * gamma0 * H_k,eff / (1 + alpha^2)) * (i - 1)

        where i = I / I_c0.  The amplitude of the precession cone grows
        exponentially with this rate until reversal.
        """
        if overdrive <= 1.0:
            raise ValueError("precessional regime requires I > I_c0")
        alpha = self.material.damping
        hk = self.geometry.effective_anisotropy_field(self.material)
        return alpha * GILBERT_GYROMAGNETIC * hk / (1.0 + alpha * alpha) * (overdrive - 1.0)

    def mean_switching_time(self, current: float) -> float:
        """Mean time to reverse under a constant current [s].

        Precessional (Sun) expression above threshold; Neel-Brown with a
        linearly lowered barrier below threshold.
        """
        if current <= 0.0:
            raise ValueError("switching current must be positive")
        overdrive = current / self.critical_current
        delta = self.stability.delta
        if overdrive > 1.0:
            # Time to amplify the thermal cone angle theta0 to pi/2:
            # t = ln(pi / (2 theta0)) / rate, theta0 = 1/sqrt(2 Delta).
            theta0 = 1.0 / math.sqrt(2.0 * delta)
            return math.log(math.pi / (2.0 * theta0)) / self.relaxation_rate(overdrive)
        return self.stability.relaxation_time(overdrive)

    def write_error_rate(self, pulse_width: float, current: float) -> float:
        """WER: probability the bit has NOT switched after the pulse.

        Above threshold the Koch-Sun initial-angle distribution gives

            WER(t, I) = 1 - exp( -(pi^2 Delta / 4) * exp(-2 t / tau) )

        (tau from :meth:`relaxation_rate`), so log(WER) falls linearly
        with pulse width — the straight tail VAET-STT margins against.
        Below threshold the Neel-Brown switching probability applies.
        """
        if pulse_width < 0.0:
            raise ValueError("pulse width must be non-negative")
        if current <= 0.0:
            raise ValueError("write current must be positive")
        overdrive = current / self.critical_current
        delta = self.stability.delta
        if overdrive > 1.0:
            rate = self.relaxation_rate(overdrive)
            envelope = (math.pi * math.pi * delta / 4.0) * math.exp(-2.0 * rate * pulse_width)
            if envelope > 700.0:
                return 1.0
            return -math.expm1(-envelope)
        tau = self.stability.relaxation_time(overdrive)
        if math.isinf(tau):
            return 1.0
        ratio = pulse_width / tau
        # P(switch) = 1 - exp(-t/tau); WER = exp(-t/tau).
        if ratio > 700.0:
            return 0.0
        return math.exp(-ratio)

    def pulse_width_for_wer(self, wer_target: float, current: float) -> float:
        """Invert WER(t, I) for the pulse width hitting a WER target [s].

        Only defined in the precessional regime (the regime used for
        writes); raises otherwise.
        """
        if not 0.0 < wer_target < 1.0:
            raise ValueError("WER target must be in (0, 1)")
        overdrive = current / self.critical_current
        if overdrive <= 1.0:
            raise ValueError("write current below I_c0 cannot reach arbitrary WER")
        delta = self.stability.delta
        rate = self.relaxation_rate(overdrive)
        envelope = -math.log1p(-wer_target)
        # envelope = (pi^2 Delta / 4) exp(-2 rate t)
        argument = (math.pi * math.pi * delta / 4.0) / envelope
        if argument <= 1.0:
            return 0.0
        return math.log(argument) / (2.0 * rate)

    def read_disturb_probability(self, read_period: float, read_current: float) -> float:
        """Probability a read pulse of given width flips the cell (Fig. 9).

        The read current is well below I_c0, so the disturb is a
        thermally-activated event over the current-lowered barrier:

            P = 1 - exp(-t_read / tau(I_read))
        """
        if read_period < 0.0:
            raise ValueError("read period must be non-negative")
        if read_current < 0.0:
            raise ValueError("read current must be non-negative")
        overdrive = read_current / self.critical_current
        if overdrive >= 1.0:
            return 1.0
        tau = self.stability.relaxation_time(overdrive)
        if math.isinf(tau):
            return 0.0
        ratio = read_period / tau
        if ratio > 700.0:
            return 1.0
        return -math.expm1(-ratio)

    def write_energy(self, pulse_width: float, current: float, resistance: float) -> float:
        """Joule energy of one write pulse I^2 R t [J]."""
        if resistance <= 0.0:
            raise ValueError("resistance must be positive")
        return current * current * resistance * pulse_width
