"""The Multifunctional Standardized Stack (MSS) configurator.

This module is the paper's headline contribution in executable form:
*one* STT-MTJ baseline stack, specialised into memory, RF-oscillator or
sensor devices purely through layout-level knobs (pillar diameter and
patterned bias-magnet geometry).  One extra lithography step — the
permanent magnets — is the only process delta between the functions.

:func:`design_memory_mss`, :func:`design_oscillator_mss` and
:func:`design_sensor_mss` apply the Sec.-I design rules and return a
fully characterised :class:`MSSDevice` wired to the matching
physics model (switching statistics, STO model, or sensor model).
"""

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.core.bias import (
    BiasMagnetPair,
    PermanentMagnetMaterial,
    COCR,
    design_bias_magnets,
)
from repro.core.geometry import PillarGeometry
from repro.core.material import (
    BarrierMaterial,
    FreeLayerMaterial,
    MSS_BARRIER,
    MSS_FREE_LAYER,
)
from repro.core.mtj import MTJTransport
from repro.core.oscillator import MSSOscillator, oscillator_bias_field_rule
from repro.core.sensor import MSSFieldSensor, sensor_bias_field_rule
from repro.core.switching import SwitchingModel
from repro.core.thermal import ThermalStability, diameter_for_retention
from repro.utils.constants import ROOM_TEMPERATURE


class MSSMode(enum.Enum):
    """The three functions one MSS stack can implement."""

    MEMORY = "memory"
    OSCILLATOR = "oscillator"
    SENSOR = "sensor"


@dataclass(frozen=True)
class MSSDevice:
    """One configured MSS device instance.

    Attributes:
        mode: Which function this instance implements.
        material: Free layer material (shared across all modes — that is
            the point of the MSS).
        barrier: Tunnel barrier (shared across all modes).
        geometry: Pillar geometry (the per-mode knob).
        bias_magnets: Patterned permanent magnets, or None in memory mode
            (memory needs no extra lithography step).
        temperature: Design temperature [K].
    """

    mode: MSSMode
    material: FreeLayerMaterial
    barrier: BarrierMaterial
    geometry: PillarGeometry
    bias_magnets: Optional[BiasMagnetPair] = None
    temperature: float = ROOM_TEMPERATURE

    @property
    def transport(self) -> MTJTransport:
        """Angle/bias resistance model of this pillar."""
        return MTJTransport(self.geometry, self.barrier)

    @property
    def anisotropy_field(self) -> float:
        """Effective perpendicular anisotropy field H_k,eff [A/m]."""
        return self.geometry.effective_anisotropy_field(self.material)

    @property
    def bias_field(self) -> float:
        """In-plane bias field produced by the magnets [A/m] (0 if none)."""
        if self.bias_magnets is None:
            return 0.0
        return self.bias_magnets.field_at_center()

    def switching_model(self) -> SwitchingModel:
        """STT switching statistics (meaningful in memory mode)."""
        return SwitchingModel(self.material, self.geometry, self.temperature)

    def thermal_stability(self) -> ThermalStability:
        """Retention physics of this pillar."""
        return ThermalStability(self.material, self.geometry, self.temperature)

    def oscillator_model(self) -> MSSOscillator:
        """STO model; requires oscillator-mode bias (h < 1)."""
        resistance = self.transport.resistance(math.cos(math.radians(60.0)))
        return MSSOscillator(
            self.material,
            self.geometry,
            self.bias_field,
            temperature=self.temperature,
            resistance=float(resistance),
            magnetoresistance_swing=self.barrier.tmr_zero_bias / 4.0,
        )

    def sensor_model(self) -> MSSFieldSensor:
        """Field-sensor model; requires sensor-mode bias (h > 1)."""
        return MSSFieldSensor(
            self.material,
            self.geometry,
            self.barrier,
            self.bias_field,
            temperature=self.temperature,
        )

    def summary(self) -> str:
        """One-paragraph human-readable description of the instance."""
        lines = [
            "MSS device in %s mode" % self.mode.value,
            "  pillar diameter: %.1f nm" % (self.geometry.diameter * 1e9),
            "  H_k,eff: %.3g A/m" % self.anisotropy_field,
        ]
        if self.bias_magnets is not None:
            lines.append(
                "  bias field: %.3g A/m (h = %.2f, %s magnets, gap %.0f nm)"
                % (
                    self.bias_field,
                    self.bias_field / self.anisotropy_field,
                    self.bias_magnets.material.name,
                    self.bias_magnets.gap * 1e9,
                )
            )
        if self.mode is MSSMode.MEMORY:
            stability = self.thermal_stability()
            switching = self.switching_model()
            lines.append("  Delta: %.1f  (retention %.2g years)" % (
                stability.delta, stability.retention_years()))
            lines.append("  I_c0: %.1f uA" % (switching.critical_current * 1e6))
        elif self.mode is MSSMode.OSCILLATOR:
            oscillator = self.oscillator_model()
            lines.append("  tilt: %.1f deg" % math.degrees(oscillator.tilt_angle))
            lines.append("  FMR frequency: %.2f GHz" % (oscillator.fmr_frequency / 1e9))
        elif self.mode is MSSMode.SENSOR:
            sensor = self.sensor_model()
            lines.append("  sensitivity: %.3g ohm/(A/m)" % sensor.sensitivity)
            lines.append("  linear range: +/- %.3g A/m" % sensor.linear_range)
        return "\n".join(lines)


def design_memory_mss(
    retention_seconds: float = 10.0 * 365.25 * 24 * 3600.0,
    material: FreeLayerMaterial = MSS_FREE_LAYER,
    barrier: BarrierMaterial = MSS_BARRIER,
    thickness: float = 1.3e-9,
    temperature: float = ROOM_TEMPERATURE,
) -> MSSDevice:
    """Design a memory-mode MSS for a retention target.

    Implements "adjustable retention by playing with the diameter of the
    stack thus allowing to minimize the switching current according to
    the specified retention": the *smallest* diameter meeting the target
    is selected, which minimises Delta and therefore I_c0.
    """
    diameter = diameter_for_retention(
        material, retention_seconds, temperature=temperature, thickness=thickness
    )
    geometry = PillarGeometry(diameter=diameter, free_layer_thickness=thickness)
    return MSSDevice(MSSMode.MEMORY, material, barrier, geometry, None, temperature)


def design_oscillator_mss(
    material: FreeLayerMaterial = MSS_FREE_LAYER,
    barrier: BarrierMaterial = MSS_BARRIER,
    diameter: float = 40e-9,
    thickness: float = 1.3e-9,
    bias_fraction: float = 0.5,
    magnet_material: PermanentMagnetMaterial = COCR,
    temperature: float = ROOM_TEMPERATURE,
) -> MSSDevice:
    """Design an oscillator-mode MSS (bias ~ H_k/2, ~30 degree tilt)."""
    geometry = PillarGeometry(diameter=diameter, free_layer_thickness=thickness)
    hk = geometry.effective_anisotropy_field(material)
    target = oscillator_bias_field_rule(hk, bias_fraction)
    magnets = design_bias_magnets(target, material=magnet_material)
    return MSSDevice(MSSMode.OSCILLATOR, material, barrier, geometry, magnets, temperature)


def design_sensor_mss(
    material: FreeLayerMaterial = MSS_FREE_LAYER,
    barrier: BarrierMaterial = MSS_BARRIER,
    diameter: float = 150e-9,
    thickness: float = 1.3e-9,
    bias_margin: float = 1.1,
    magnet_material: PermanentMagnetMaterial = COCR,
    temperature: float = ROOM_TEMPERATURE,
) -> MSSDevice:
    """Design a sensor-mode MSS (larger pillar, bias slightly above H_k)."""
    geometry = PillarGeometry(diameter=diameter, free_layer_thickness=thickness)
    hk = geometry.effective_anisotropy_field(material)
    if hk <= 0.0:
        raise ValueError(
            "diameter %.0f nm leaves no perpendicular anisotropy; reduce it"
            % (diameter * 1e9)
        )
    target = sensor_bias_field_rule(hk, bias_margin)
    magnets = design_bias_magnets(target, material=magnet_material)
    return MSSDevice(MSSMode.SENSOR, material, barrier, geometry, magnets, temperature)
