"""MSS sensor mode: linear out-of-plane magnetic field sensor.

Per Sec. I of the paper: "the size and shape of the permanent magnet
biasing layer will be adjusted to produce a horizontal field slightly
larger than the effective perpendicular anisotropy field (~1 kOe) so
that the free layer magnetization will be pulled in-plane ... When
submitted to an out-of-plane field to be sensed, the free layer
magnetization will rotate upwards or downwards producing a resistance
change proportional to the out-of-plane field amplitude."

The statics are Stoner-Wohlfarth: minimise

    e(theta) = 1/2 sin^2(theta) - h_x sin(theta) - h_z cos(theta)

(normalised by mu0 Ms H_k,eff V; theta measured from +z).  For
h_x = H_bias / H_k > 1 and small h_z the solution is

    m_z = h_z / (h_x - 1)

i.e. a linear transfer with sensitivity 1 / (H_bias - H_k) and full
scale |H_z| ~ (H_bias - H_k).
"""

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.geometry import PillarGeometry
from repro.core.material import BarrierMaterial, FreeLayerMaterial
from repro.core.mtj import MTJTransport
from repro.utils.constants import BOLTZMANN, GILBERT_GYROMAGNETIC, MU_0, ROOM_TEMPERATURE


@dataclass(frozen=True)
class SensorOperatingPoint:
    """Static solution of the biased free layer under a sensed field.

    Attributes:
        theta: Polar angle of the magnetisation from +z [rad].
        mz: Out-of-plane magnetisation component cos(theta) [-].
        resistance: Junction resistance at the read bias [ohm].
    """

    theta: float
    mz: float
    resistance: float


class MSSFieldSensor:
    """Out-of-plane field sensor built from a biased MSS pillar.

    Args:
        material: Free layer material.
        geometry: (Large-diameter) pillar geometry.
        barrier: Tunnel barrier transport parameters.
        bias_field: In-plane bias field from the permanent magnets [A/m];
            must exceed H_k,eff for the linear sensing regime.
        read_voltage: Bias voltage used when converting angle to
            resistance [V].
        temperature: Operating temperature [K] (for noise estimates).
    """

    def __init__(
        self,
        material: FreeLayerMaterial,
        geometry: PillarGeometry,
        barrier: BarrierMaterial,
        bias_field: float,
        read_voltage: float = 0.1,
        temperature: float = ROOM_TEMPERATURE,
    ):
        self.material = material
        self.geometry = geometry
        self.barrier = barrier
        self.bias_field = bias_field
        self.read_voltage = read_voltage
        self.temperature = temperature
        self.transport = MTJTransport(geometry, barrier)
        self._hk = geometry.effective_anisotropy_field(material)
        if self._hk <= 0.0:
            raise ValueError("sensor pillar has no perpendicular anisotropy")
        if bias_field <= self._hk:
            raise ValueError(
                "sensor mode requires bias field (%.3g A/m) > H_k,eff (%.3g A/m)"
                % (bias_field, self._hk)
            )

    @property
    def anisotropy_field(self) -> float:
        """Effective perpendicular anisotropy field H_k,eff [A/m]."""
        return self._hk

    @property
    def normalized_bias(self) -> float:
        """h_x = H_bias / H_k,eff (> 1 in sensor mode)."""
        return self.bias_field / self._hk

    def _reduced_energy(self, theta: float, h_z: float) -> float:
        h_x = self.normalized_bias
        return 0.5 * math.sin(theta) ** 2 - h_x * math.sin(theta) - h_z * math.cos(theta)

    def operating_point(self, sensed_field: float) -> SensorOperatingPoint:
        """Solve the static magnetisation angle for an out-of-plane field.

        Args:
            sensed_field: H_z to be measured [A/m].
        """
        h_z = sensed_field / self._hk
        result = optimize.minimize_scalar(
            lambda theta: self._reduced_energy(theta, h_z),
            bounds=(1e-6, math.pi - 1e-6),
            method="bounded",
        )
        theta = float(result.x)
        mz = math.cos(theta)
        resistance = float(self.transport.resistance(mz, self.read_voltage))
        return SensorOperatingPoint(theta=theta, mz=mz, resistance=resistance)

    def transfer_curve(self, fields: np.ndarray) -> np.ndarray:
        """Resistance vs out-of-plane field over an array of H_z [ohm]."""
        return np.asarray([self.operating_point(h).resistance for h in fields])

    @property
    def small_signal_mz_sensitivity(self) -> float:
        """d m_z / d H_z at zero field [1/(A/m)] = 1 / (H_bias - H_k)."""
        return 1.0 / (self.bias_field - self._hk)

    @property
    def sensitivity(self) -> float:
        """Small-signal resistance sensitivity dR/dH_z [ohm/(A/m)].

        Chain rule through the angular transport model at m_z = 0.
        """
        epsilon = 1e-4
        r_plus = float(self.transport.resistance(epsilon, self.read_voltage))
        r_minus = float(self.transport.resistance(-epsilon, self.read_voltage))
        dr_dmz = (r_plus - r_minus) / (2.0 * epsilon)
        return dr_dmz * self.small_signal_mz_sensitivity

    @property
    def linear_range(self) -> float:
        """Full-scale field before saturation |H_z| < H_bias - H_k [A/m]."""
        return self.bias_field - self._hk

    def thermal_field_noise_density(self) -> float:
        """Thermal magnetisation noise referred to the input field.

        Returns the equivalent field noise spectral density
        [A/m per sqrt(Hz)] from the fluctuation-dissipation theorem,
        evaluated in the flat low-frequency limit:

            S_Hz = sqrt(4 alpha k_B T / (gamma0 mu0 Ms V)) / |chi|

        with chi the m_z susceptibility.  Larger pillars are quieter —
        the second reason sensor-mode MSS uses a bigger diameter.
        """
        volume = self.geometry.volume
        raw = math.sqrt(
            4.0
            * self.material.damping
            * BOLTZMANN
            * self.temperature
            / (GILBERT_GYROMAGNETIC * MU_0 * self.material.ms * volume)
        )
        return raw / self.small_signal_mz_sensitivity / self._hk

    def johnson_field_noise_density(self) -> float:
        """Johnson voltage noise referred to the input field [A/m/sqrt(Hz)].

        sqrt(4 k_B T R) divided by the voltage responsivity
        V_read * (dR/dH) / R.
        """
        r0 = self.operating_point(0.0).resistance
        voltage_noise = math.sqrt(4.0 * BOLTZMANN * self.temperature * r0)
        responsivity = self.read_voltage * abs(self.sensitivity) / r0
        return voltage_noise / responsivity

    def detectivity(self) -> float:
        """Total input-referred field noise density [A/m/sqrt(Hz)]."""
        thermal = self.thermal_field_noise_density()
        johnson = self.johnson_field_noise_density()
        return math.sqrt(thermal * thermal + johnson * johnson)

    def digitize(self, resistance: float) -> float:
        """Invert the transfer curve: estimate H_z from a resistance [A/m].

        Uses the linear small-signal model; accurate within the linear
        range, which is where a sensor is operated.
        """
        r0 = self.operating_point(0.0).resistance
        return (resistance - r0) / self.sensitivity


def sensor_bias_field_rule(anisotropy_field: float, margin: float = 1.1) -> float:
    """Paper design rule: bias "slightly larger" than H_k,eff [A/m]."""
    if margin <= 1.0:
        raise ValueError("sensor bias margin must exceed 1")
    return margin * anisotropy_field
