"""MSS oscillator mode: spin-transfer torque oscillator (STO).

Per Sec. I of the paper: "For the spin transfer oscillator, the size
and shape of the permanent magnet biasing layer will be adjusted to
produce a horizontal field in the order of half of the effective
perpendicular anisotropy field (~1 kOe) so that the free layer
magnetization will be tilted at about 30 degrees."

Statics: with the bias h = H_bias / H_k,eff < 1 the Stoner-Wohlfarth
equilibrium satisfies sin(theta) = h, so h = 0.5 gives exactly the 30
degree tilt the paper quotes.

Dynamics: the auto-oscillation is described with the Slavin-Tiberkevich
universal oscillator model — supercriticality zeta = I / I_th sets the
normalised precession power p0 = (zeta - 1) / (zeta + Q), the frequency
shifts with power through the nonlinear coefficient N, and the
linewidth follows from the restoration rate and the thermal-to-
oscillation energy ratio.
"""

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.material import FreeLayerMaterial
from repro.utils.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    HBAR,
    MU_0,
    ROOM_TEMPERATURE,
)


def equilibrium_tilt(normalized_bias: float) -> float:
    """Static tilt angle theta = asin(h) for h = H_bias / H_k,eff < 1.

    Minimising e(theta) = 1/2 sin^2 theta - h sin theta gives
    sin(theta) = h; h = 0.5 reproduces the paper's "about 30 degrees".
    """
    if not 0.0 <= normalized_bias < 1.0:
        raise ValueError("oscillator mode requires 0 <= h < 1")
    return math.asin(normalized_bias)


@dataclass(frozen=True)
class OscillatorOperatingPoint:
    """Steady-state characteristics of the STO at one drive current.

    Attributes:
        current: Drive current [A].
        supercriticality: zeta = I / I_th [-].
        power: Normalised precession power p0 in [0, 1).
        frequency: Oscillation frequency [Hz].
        linewidth: Full generation linewidth [Hz].
        output_power: Electrical output power into a matched load [W].
    """

    current: float
    supercriticality: float
    power: float
    frequency: float
    linewidth: float
    output_power: float


class MSSOscillator:
    """Spin-torque oscillator built from a tilted MSS pillar.

    Args:
        material: Free layer material.
        geometry: Pillar geometry (memory-sized pillar).
        bias_field: In-plane bias field [A/m]; must be below H_k,eff.
        temperature: Temperature [K] (sets linewidth).
        nonlinear_damping: Slavin Q coefficient (1-3 typical).
        nonlinear_shift: dimensionless nonlinear frequency-shift
            coefficient nu = N / Gamma_p; negative = red shift, the
            common case for this geometry.
        resistance: Junction resistance at the operating point [ohm]
            (for the output-power estimate).
        magnetoresistance_swing: Fractional resistance oscillation
            amplitude at full power (~TMR/2 projected on the
            precession cone).
    """

    def __init__(
        self,
        material: FreeLayerMaterial,
        geometry: PillarGeometry,
        bias_field: float,
        temperature: float = ROOM_TEMPERATURE,
        nonlinear_damping: float = 2.0,
        nonlinear_shift: float = -1.5,
        resistance: float = 2000.0,
        magnetoresistance_swing: float = 0.3,
    ):
        self.material = material
        self.geometry = geometry
        self.bias_field = bias_field
        self.temperature = temperature
        self.nonlinear_damping = nonlinear_damping
        self.nonlinear_shift = nonlinear_shift
        self.resistance = resistance
        self.magnetoresistance_swing = magnetoresistance_swing
        self._hk = geometry.effective_anisotropy_field(material)
        if self._hk <= 0.0:
            raise ValueError("oscillator pillar has no perpendicular anisotropy")
        if not 0.0 <= bias_field < self._hk:
            raise ValueError(
                "oscillator mode requires bias field below H_k,eff "
                "(got %.3g of %.3g A/m)" % (bias_field, self._hk)
            )

    @property
    def normalized_bias(self) -> float:
        """h = H_bias / H_k,eff in [0, 1)."""
        return self.bias_field / self._hk

    @property
    def tilt_angle(self) -> float:
        """Static tilt angle of the free layer [rad]."""
        return equilibrium_tilt(self.normalized_bias)

    def _energy_curvatures(self) -> Tuple[float, float]:
        """Reduced-energy curvatures (e_theta_theta, e_phi_phi) at
        equilibrium, normalised by mu0 Ms Hk V.

        e(theta, phi) = 1/2 sin^2(theta) - h sin(theta) cos(phi)
        evaluated at phi = 0, sin(theta0) = h:
            e_tt = cos(2 theta0) + h sin(theta0) = 1 - h^2
            e_pp = h sin(theta0)                = h^2
        For h -> 0 the phi direction degenerates (axial symmetry); we
        floor it to keep the FMR frequency finite and equal to the
        uniaxial value gamma0 * Hk.
        """
        h = self.normalized_bias
        e_tt = 1.0 - h * h
        e_pp = h * h
        return e_tt, max(e_pp, 1e-12)

    @property
    def fmr_frequency(self) -> float:
        """Small-angle precession (FMR) frequency at the tilt point [Hz].

        omega = gamma0 * Hk * sqrt(e_tt * e_pp) / sin(theta0); for the
        tilted state this evaluates to gamma0 * Hk * h * sqrt(1 - h^2) /
        h = gamma0 * Hk * sqrt(1 - h^2).
        """
        h = self.normalized_bias
        if h == 0.0:
            return GILBERT_GYROMAGNETIC * self._hk / (2.0 * math.pi)
        e_tt, e_pp = self._energy_curvatures()
        omega = GILBERT_GYROMAGNETIC * self._hk * math.sqrt(e_tt * e_pp) / h
        return omega / (2.0 * math.pi)

    @property
    def damping_rate(self) -> float:
        """Positive (Gilbert) damping rate Gamma_G [1/s]."""
        return self.material.damping * 2.0 * math.pi * self.fmr_frequency

    @property
    def threshold_current(self) -> float:
        """Current at which spin torque compensates damping [A].

        From a_j(I_th) = alpha * H_stiff with the Slonczewski torque
        amplitude a_j = hbar * eta * I / (2 e mu0 Ms V).
        """
        h_stiff = 2.0 * math.pi * self.fmr_frequency / GILBERT_GYROMAGNETIC
        aj_per_ampere = (
            HBAR
            * self.material.polarization
            / (2.0 * ELEMENTARY_CHARGE * MU_0 * self.material.ms * self.geometry.volume)
        )
        return self.material.damping * h_stiff / aj_per_ampere

    def oscillation_energy(self, power: float) -> float:
        """Energy stored in the precession at normalised power p [J]."""
        return power * MU_0 * self.material.ms * self._hk * self.geometry.volume

    def operating_point(self, current: float) -> OscillatorOperatingPoint:
        """Steady-state oscillator characteristics at a drive current.

        Below threshold the device is a damped resonator: zero power,
        FMR frequency, thermal (FMR) linewidth.
        """
        if current <= 0.0:
            raise ValueError("drive current must be positive")
        zeta = current / self.threshold_current
        q = self.nonlinear_damping
        f0 = self.fmr_frequency
        if zeta <= 1.0:
            linewidth = self.damping_rate / math.pi
            return OscillatorOperatingPoint(
                current=current,
                supercriticality=zeta,
                power=0.0,
                frequency=f0,
                linewidth=linewidth,
                output_power=0.0,
            )
        p0 = (zeta - 1.0) / (zeta + q)
        # Nonlinear frequency shift: f = f0 * (1 + nu_f * p0) with the
        # dimensionless shift folded into nonlinear_shift.
        frequency = f0 * (1.0 + self.nonlinear_shift * self.material.damping * p0 / 0.01)
        frequency = max(frequency, 0.05 * f0)
        # Restoration rate of power fluctuations and generation linewidth
        # (Slavin-Tiberkevich Eq. for Delta f), broadened by the
        # amplitude-phase coupling factor (1 + nu^2).
        restoration = self.damping_rate * p0 * (zeta + q) / (zeta if zeta > 0 else 1.0)
        energy = self.oscillation_energy(p0)
        thermal_ratio = BOLTZMANN * self.temperature / max(energy, 1e-30)
        nu = self.nonlinear_shift
        linewidth = (restoration / (2.0 * math.pi)) * thermal_ratio * (1.0 + nu * nu)
        # Electrical output: resistance oscillation converts the DC drive
        # into an AC voltage; matched-load power = (I * dR)^2 / (8 R).
        dr = self.resistance * self.magnetoresistance_swing * math.sqrt(p0)
        output_power = (current * dr) ** 2 / (8.0 * self.resistance)
        return OscillatorOperatingPoint(
            current=current,
            supercriticality=zeta,
            power=p0,
            frequency=frequency,
            linewidth=linewidth,
            output_power=output_power,
        )

    def tuning_curve(self, currents: np.ndarray) -> np.ndarray:
        """Frequency vs drive current [Hz]."""
        return np.asarray([self.operating_point(i).frequency for i in currents])


def oscillator_bias_field_rule(anisotropy_field: float, fraction: float = 0.5) -> float:
    """Paper design rule: bias field ~ half of H_k,eff [A/m]."""
    if not 0.0 < fraction < 1.0:
        raise ValueError("oscillator bias fraction must be in (0, 1)")
    return fraction * anisotropy_field
