"""Pillar geometry of the MSS magnetic tunnel junction.

The central idea of the MSS (Sec. I of the paper) is that one stack
serves memory, RF and sensing *by geometry alone*: "MTJs can have
adjustable retention by playing with the diameter of the stack" and
"for sensor applications ... the diameter of the pillar will be
increased".  This module computes everything diameter-dependent:
area, volume, demagnetising factors and the effective perpendicular
anisotropy field.
"""

import math
from dataclasses import dataclass, replace

from repro.core.material import FreeLayerMaterial
from repro.utils.constants import MU_0


def oblate_spheroid_demag_factor(aspect_ratio: float) -> float:
    """Axial demagnetising factor N_z of an oblate spheroid.

    Args:
        aspect_ratio: diameter / thickness (m > 1 for a flat disc).

    Returns:
        N_z in [1/3, 1).  The in-plane factors follow as (1 - N_z) / 2.

    The free layer is a flat cylinder; the exact cylinder factors are
    integrals, but the oblate-spheroid closed form is the standard
    compact-model approximation and has the right limits
    (N_z -> 1/3 for a sphere, N_z -> 1 for an infinite film).
    """
    m = aspect_ratio
    if m <= 0.0:
        raise ValueError("aspect ratio must be positive")
    if abs(m - 1.0) < 1e-9:
        return 1.0 / 3.0
    if m < 1.0:
        # Prolate (tall pillar) branch, included for completeness.
        e = math.sqrt(1.0 - m * m)
        nz = (1.0 - e * e) / (e * e) * (math.atanh(e) / e - 1.0)
        return nz
    # Canonical oblate form: N_z = m^2/(m^2-1) * [1 - asin(e)/ (e * m /
    # sqrt(m^2-1))] with eccentricity e = sqrt(m^2-1)/m.
    q = m * m - 1.0
    return (m * m / q) * (1.0 - math.asin(math.sqrt(q) / m) / math.sqrt(q))


@dataclass(frozen=True)
class PillarGeometry:
    """Circular MTJ pillar geometry.

    Attributes:
        diameter: Free layer diameter [m].
        free_layer_thickness: Free layer thickness [m].
    """

    diameter: float = 40e-9
    free_layer_thickness: float = 1.3e-9

    def __post_init__(self) -> None:
        if self.diameter <= 0.0:
            raise ValueError("diameter must be positive")
        if self.free_layer_thickness <= 0.0:
            raise ValueError("free layer thickness must be positive")

    @property
    def area(self) -> float:
        """Pillar cross-section area [m^2]."""
        return math.pi * (self.diameter / 2.0) ** 2

    @property
    def volume(self) -> float:
        """Free layer volume [m^3]."""
        return self.area * self.free_layer_thickness

    @property
    def aspect_ratio(self) -> float:
        """Diameter over thickness (flatness of the free layer)."""
        return self.diameter / self.free_layer_thickness

    @property
    def demag_factor_z(self) -> float:
        """Out-of-plane demagnetising factor N_z."""
        return oblate_spheroid_demag_factor(self.aspect_ratio)

    @property
    def demag_factor_inplane(self) -> float:
        """In-plane demagnetising factor N_x = N_y."""
        return (1.0 - self.demag_factor_z) / 2.0

    def effective_anisotropy_field(self, material: FreeLayerMaterial) -> float:
        """Effective perpendicular anisotropy field H_k,eff [A/m].

        H_k,eff = 2 Ki / (mu0 Ms t) - (N_z - N_x) Ms

        The interfacial PMA term (first) fights the shape demagnetising
        term (second).  Larger diameter raises N_z - N_x and therefore
        *lowers* H_k,eff — this is why the sensor-mode MSS uses a larger
        pillar: it is easier to pull in-plane.
        """
        interface_term = 2.0 * material.interfacial_anisotropy / (
            MU_0 * material.ms * self.free_layer_thickness
        )
        shape_term = (self.demag_factor_z - self.demag_factor_inplane) * material.ms
        return interface_term - shape_term

    def effective_anisotropy_energy_density(self, material: FreeLayerMaterial) -> float:
        """Effective uniaxial anisotropy energy density K_eff [J/m^3]."""
        return 0.5 * MU_0 * material.ms * self.effective_anisotropy_field(material)

    def domain_wall_width(self, material: FreeLayerMaterial) -> float:
        """Bloch wall width pi*sqrt(A_ex/K_eff) [m].

        Pillars much larger than the wall width do not reverse coherently;
        their energy barrier stops growing with volume (nucleation cap).
        """
        k_eff = self.effective_anisotropy_energy_density(material)
        if k_eff <= 0.0:
            return math.inf
        return math.pi * math.sqrt(material.exchange_stiffness / k_eff)

    def thermally_relevant_volume(self, material: FreeLayerMaterial) -> float:
        """Volume entering the thermal-stability barrier [m^3].

        Coherent (macrospin) reversal holds up to roughly the domain-wall
        width; beyond that the barrier is set by nucleating a wall across
        a region of that size, so the effective diameter saturates.
        """
        wall = self.domain_wall_width(material)
        effective_diameter = min(self.diameter, wall)
        return math.pi * (effective_diameter / 2.0) ** 2 * self.free_layer_thickness

    def with_diameter(self, diameter: float) -> "PillarGeometry":
        """Return a copy with a different diameter."""
        return replace(self, diameter=diameter)


#: Default memory-mode pillar (40 nm).
MEMORY_PILLAR = PillarGeometry(diameter=40e-9)

#: Default sensor-mode pillar (150 nm), per the paper's "the diameter of
#: the pillar will be increased compared to the MSS used for memory".
SENSOR_PILLAR = PillarGeometry(diameter=150e-9)
