"""MSS device physics: the paper's primary contribution.

One perpendicular STT-MTJ stack ("Multifunctional Standardized Stack")
configured into memory, RF-oscillator or sensor devices through pillar
diameter and patterned permanent-magnet bias fields.
"""

from repro.core.material import (
    BarrierMaterial,
    FreeLayerMaterial,
    MSS_BARRIER,
    MSS_FREE_LAYER,
)
from repro.core.geometry import (
    MEMORY_PILLAR,
    PillarGeometry,
    SENSOR_PILLAR,
    oblate_spheroid_demag_factor,
)
from repro.core.mtj import MTJTransport
from repro.core.llg import LLGConfig, LLGResult, MacrospinLLG, thermal_equilibrium_angle
from repro.core.thermal import (
    ATTEMPT_TIME,
    ThermalStability,
    delta_for_retention,
    diameter_for_retention,
)
from repro.core.switching import SwitchingModel
from repro.core.bias import (
    BiasMagnetPair,
    COCR,
    NDFEB,
    PermanentMagnetMaterial,
    design_bias_magnets,
    rectangular_pole_face_field,
)
from repro.core.sensor import MSSFieldSensor, SensorOperatingPoint, sensor_bias_field_rule
from repro.core.oscillator import (
    MSSOscillator,
    OscillatorOperatingPoint,
    equilibrium_tilt,
    oscillator_bias_field_rule,
)
from repro.core.modes import (
    MSSDevice,
    MSSMode,
    design_memory_mss,
    design_oscillator_mss,
    design_sensor_mss,
)
from repro.core.compact import BehavioralMTJModel, CompactModelState, PhysicalMTJModel
from repro.core.crosstalk import (
    CrosstalkAnalysis,
    astroid_switching_field,
    barrier_degradation_factor,
    stray_field_on_axis,
)

__all__ = [
    "BarrierMaterial",
    "FreeLayerMaterial",
    "MSS_BARRIER",
    "MSS_FREE_LAYER",
    "MEMORY_PILLAR",
    "PillarGeometry",
    "SENSOR_PILLAR",
    "oblate_spheroid_demag_factor",
    "MTJTransport",
    "LLGConfig",
    "LLGResult",
    "MacrospinLLG",
    "thermal_equilibrium_angle",
    "ATTEMPT_TIME",
    "ThermalStability",
    "delta_for_retention",
    "diameter_for_retention",
    "SwitchingModel",
    "BiasMagnetPair",
    "COCR",
    "NDFEB",
    "PermanentMagnetMaterial",
    "design_bias_magnets",
    "rectangular_pole_face_field",
    "MSSFieldSensor",
    "SensorOperatingPoint",
    "sensor_bias_field_rule",
    "MSSOscillator",
    "OscillatorOperatingPoint",
    "equilibrium_tilt",
    "oscillator_bias_field_rule",
    "MSSDevice",
    "MSSMode",
    "design_memory_mss",
    "design_oscillator_mss",
    "design_sensor_mss",
    "BehavioralMTJModel",
    "CompactModelState",
    "PhysicalMTJModel",
    "CrosstalkAnalysis",
    "astroid_switching_field",
    "barrier_degradation_factor",
    "stray_field_on_axis",
]
