"""Patterned permanent-magnet bias field model.

The MSS turns a memory MTJ into an RF oscillator or a field sensor by
adding "patterned permanent magnets (for instance made of CoCr alloy or
NdFeB) ... on the two sides of the MTJ pillars, as this is done to bias
magnetoresistive heads in hard disk drives" (Sec. I).  Only one extra
lithography step is needed; the magnet *size and shape* set the
horizontal bias field:

* oscillator mode — bias ~ H_k,eff / 2 (free layer tilts ~30 degrees),
* sensor mode — bias slightly above H_k,eff (free layer pulled in-plane).

The stray field of a uniformly magnetised rectangular block is computed
with the magnetic-surface-charge model: each pole face of half-sides
(A, B) at distance z on its axis contributes

    H(z) = (M / pi) * atan( A B / (z sqrt(A^2 + B^2 + z^2)) )

(the solid-angle formula).  Two blocks flank the pillar symmetrically,
so their fields add at the pillar centre.
"""

import math
from dataclasses import dataclass, replace
from typing import Tuple

from scipy import optimize

from repro.utils.constants import MU_0


@dataclass(frozen=True)
class PermanentMagnetMaterial:
    """Hard magnet material for the bias blocks.

    Attributes:
        name: Material label.
        remanence: Remanent flux density B_r [T].
        coercivity: Intrinsic coercivity [A/m] (reported for data sheets;
            not used in the field computation itself).
    """

    name: str
    remanence: float
    coercivity: float

    def __post_init__(self) -> None:
        if self.remanence <= 0.0:
            raise ValueError("remanence must be positive")
        if self.coercivity <= 0.0:
            raise ValueError("coercivity must be positive")

    @property
    def magnetization(self) -> float:
        """Remanent magnetisation M_r = B_r / mu0 [A/m]."""
        return self.remanence / MU_0


#: CoCr alloy, the HDD-head-biasing material quoted by the paper.
COCR = PermanentMagnetMaterial("CoCr", remanence=0.50, coercivity=1.2e5)

#: Sintered-NdFeB-like thin film, the stronger option quoted by the paper.
NDFEB = PermanentMagnetMaterial("NdFeB", remanence=1.20, coercivity=9.0e5)


def rectangular_pole_face_field(
    magnetization: float, width: float, height: float, distance: float
) -> float:
    """Axial H field of one rectangular magnetic pole face [A/m].

    Args:
        magnetization: Surface charge density = block magnetisation [A/m].
        width: Face width [m].
        height: Face height [m].
        distance: Axial distance from the face plane [m] (> 0).
    """
    if distance <= 0.0:
        raise ValueError("distance must be positive")
    a = width / 2.0
    b = height / 2.0
    argument = (a * b) / (distance * math.sqrt(a * a + b * b + distance * distance))
    return (magnetization / math.pi) * math.atan(argument)


@dataclass(frozen=True)
class BiasMagnetPair:
    """Two identical bias blocks flanking the MTJ pillar.

    Both blocks are magnetised along +x (in-plane); the pillar sits at
    the midpoint of the gap.  Like charges face away so the two inner
    faces present opposite charge to the gap and the fields add.

    Attributes:
        material: Hard magnet material.
        width: Face width (y extent) [m].
        height: Face height (z extent) [m].
        length: Block length along the field axis (x extent) [m].
        gap: Edge-to-edge spacing between the inner faces [m].
    """

    material: PermanentMagnetMaterial = COCR
    width: float = 200e-9
    height: float = 60e-9
    length: float = 200e-9
    gap: float = 120e-9

    def __post_init__(self) -> None:
        for name in ("width", "height", "length", "gap"):
            if getattr(self, name) <= 0.0:
                raise ValueError("%s must be positive" % name)

    def field_at_center(self) -> float:
        """In-plane bias field H_x at the pillar position [A/m].

        Each block contributes its near (positive) face at gap/2 and its
        far (negative) face at gap/2 + length; both blocks contribute
        identically by symmetry.
        """
        m = self.material.magnetization
        near = rectangular_pole_face_field(m, self.width, self.height, self.gap / 2.0)
        far = rectangular_pole_face_field(
            m, self.width, self.height, self.gap / 2.0 + self.length
        )
        per_block = near - far
        return 2.0 * per_block

    def field_vector(self) -> Tuple[float, float, float]:
        """Bias field vector in the device frame (x in-plane) [A/m]."""
        return (self.field_at_center(), 0.0, 0.0)

    def with_gap(self, gap: float) -> "BiasMagnetPair":
        """Return a copy with a different gap."""
        return replace(self, gap=gap)


def design_bias_magnets(
    target_field: float,
    material: PermanentMagnetMaterial = COCR,
    width: float = 200e-9,
    height: float = 60e-9,
    length: float = 200e-9,
    gap_bounds: Tuple[float, float] = (30e-9, 2000e-9),
) -> BiasMagnetPair:
    """Size the magnet gap to produce a target in-plane field.

    This implements the paper's "the size and shape of the permanent
    magnet biasing layer will be adjusted to produce a horizontal field"
    design step.  The gap is the natural lithographic knob; the field is
    monotonically decreasing in it.

    Raises:
        ValueError: If the target is outside what the geometry can reach.
    """
    if target_field <= 0.0:
        raise ValueError("target field must be positive")
    low, high = gap_bounds

    def gap_error(gap: float) -> float:
        pair = BiasMagnetPair(material, width, height, length, gap)
        return pair.field_at_center() - target_field

    error_low, error_high = gap_error(low), gap_error(high)
    if error_low < 0.0:
        raise ValueError(
            "target field %.3g A/m exceeds the maximum %.3g A/m at minimum gap"
            % (target_field, target_field + error_low)
        )
    if error_high > 0.0:
        raise ValueError("target field not reachable even at maximum gap")
    gap = float(optimize.brentq(gap_error, low, high))
    return BiasMagnetPair(material, width, height, length, gap)
