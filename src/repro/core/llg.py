"""Macrospin Landau-Lifshitz-Gilbert-Slonczewski (LLGS) solver.

This is the physical heart of the MSS compact model: a single-domain
(macrospin) free layer evolving under the effective field (uniaxial
perpendicular anisotropy + shape demagnetisation + applied/bias field),
Gilbert damping, Slonczewski spin-transfer torque and an optional
stochastic thermal field.

The same solver backs all three MSS modes:

* memory   — deterministic/stochastic switching trajectories,
* oscillator — steady precession under bias field ~ H_k/2,
* sensor   — quasi-static equilibria under bias field > H_k.

Implementation notes
--------------------
The LLGS equation is integrated in the explicit form

    dm/dt = -gamma0/(1+a^2) * [ m x H  +  a * m x (m x H) ]
            -gamma0/(1+a^2) * a_j * [ m x (m x p)  -  a * m x p ]

with fields in A/m, gamma0 = mu0*gamma.  The spin-torque field
amplitude a_j = hbar * J * eta / (2 e mu0 Ms t) follows Slonczewski.
Deterministic runs use RK4; finite-temperature runs use stochastic
Heun (the standard choice for Stratonovich LLG noise).
"""

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.material import FreeLayerMaterial
from repro.utils.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    HBAR,
    MU_0,
)


def normalize(vector: np.ndarray) -> np.ndarray:
    """Return the unit vector along ``vector``."""
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        raise ValueError("cannot normalise the zero vector")
    return vector / norm


def normalize_rows(vectors: np.ndarray) -> np.ndarray:
    """Row-wise :func:`normalize` of an ``(N, 3)`` array."""
    norms = np.sqrt(np.einsum("ij,ij->i", vectors, vectors))
    if np.any(norms == 0.0):
        raise ValueError("cannot normalise the zero vector")
    return vectors / norms[:, None]


@dataclass
class LLGConfig:
    """Configuration of one LLGS integration run.

    Attributes:
        material: Free layer material.
        geometry: Pillar geometry.
        applied_field: External field vector [A/m] (bias magnets + sensed
            field), in the device frame (z = perpendicular easy axis).
        current: Charge current through the pillar [A]; positive current
            favours the anti-parallel -> parallel transition (electrons
            flowing from the reference layer side).
        spin_polarization_axis: Unit vector of the reference layer
            magnetisation (spin-torque polariser), default +z.
        temperature: Temperature [K]; 0 disables the thermal field.
        timestep: Integrator step [s].
        field_like_torque_ratio: Field-like torque as a fraction of the
            damping-like term (MgO junctions: ~0.1-0.3).
        seed: RNG seed for the thermal field.
    """

    material: FreeLayerMaterial
    geometry: PillarGeometry
    applied_field: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    current: float = 0.0
    spin_polarization_axis: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    temperature: float = 0.0
    timestep: float = 1e-12
    field_like_torque_ratio: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timestep <= 0.0:
            raise ValueError("timestep must be positive")
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")


@dataclass
class LLGResult:
    """Trajectory returned by :func:`simulate`.

    Attributes:
        times: Sample instants [s], shape (n,).
        magnetization: Unit magnetisation samples, shape (n, 3).
        switched: True if m_z changed sign relative to the initial state
            and stayed reversed at the end of the run.
    """

    times: np.ndarray
    magnetization: np.ndarray
    switched: bool

    @property
    def final(self) -> np.ndarray:
        """Final magnetisation unit vector."""
        return self.magnetization[-1]

    def mz(self) -> np.ndarray:
        """Out-of-plane component trace m_z(t)."""
        return self.magnetization[:, 2]


@dataclass
class LLGBatchResult:
    """Ensemble trajectory returned by :meth:`MacrospinLLG.run_batch`.

    Attributes:
        times: Sample instants [s], shape (n,).
        magnetization: Unit magnetisation samples, shape (n, N, 3) —
            ``magnetization[:, k]`` is trajectory k.
        switched: Per-trajectory switching verdicts, shape (N,).
    """

    times: np.ndarray
    magnetization: np.ndarray
    switched: np.ndarray

    @property
    def final(self) -> np.ndarray:
        """Final magnetisations, shape (N, 3)."""
        return self.magnetization[-1]

    def mz(self) -> np.ndarray:
        """Out-of-plane traces m_z(t), shape (n, N)."""
        return self.magnetization[:, :, 2]

    def trajectory(self, index: int) -> LLGResult:
        """Extract one trajectory as a scalar :class:`LLGResult`."""
        return LLGResult(
            self.times,
            self.magnetization[:, index],
            bool(self.switched[index]),
        )


class MacrospinLLG:
    """Macrospin LLGS integrator for one MSS free layer."""

    def __init__(self, config: LLGConfig):
        self.config = config
        material = config.material
        geometry = config.geometry
        self._hk_eff = geometry.effective_anisotropy_field(material)
        self._alpha = material.damping
        self._gamma = GILBERT_GYROMAGNETIC
        self._polarizer = normalize(np.asarray(config.spin_polarization_axis, dtype=float))
        self._applied = np.asarray(config.applied_field, dtype=float)
        self._rng = np.random.default_rng(config.seed)
        # Slonczewski spin-torque field amplitude per ampere [A/m / A].
        area = geometry.area
        self._aj_per_ampere = (
            HBAR
            * material.polarization
            / (2.0 * ELEMENTARY_CHARGE * MU_0 * material.ms * geometry.free_layer_thickness * area)
        )
        # Thermal field standard deviation per sqrt(1/dt), from the
        # fluctuation-dissipation theorem for Gilbert damping.
        if config.temperature > 0.0:
            variance = (
                2.0
                * self._alpha
                * BOLTZMANN
                * config.temperature
                / (MU_0 * material.ms * geometry.volume * self._gamma)
            )
            self._thermal_sigma = math.sqrt(variance / config.timestep)
        else:
            self._thermal_sigma = 0.0

    @property
    def anisotropy_field(self) -> float:
        """Effective perpendicular anisotropy field H_k,eff [A/m]."""
        return self._hk_eff

    def spin_torque_field(self, current: Optional[float] = None) -> float:
        """Spin-torque effective field a_j for a given current [A/m]."""
        if current is None:
            current = self.config.current
        return self._aj_per_ampere * current

    def effective_field(self, m: np.ndarray) -> np.ndarray:
        """Deterministic effective field H_eff(m) [A/m].

        Includes uniaxial perpendicular anisotropy (with the shape
        contribution folded into H_k,eff) and the applied field.
        """
        anis = np.array([0.0, 0.0, self._hk_eff * m[2]])
        return anis + self._applied

    def _torque(self, m: np.ndarray, h_total: np.ndarray, a_j: float) -> np.ndarray:
        alpha = self._alpha
        prefactor = -self._gamma / (1.0 + alpha * alpha)
        m_cross_h = np.cross(m, h_total)
        precession_plus_damping = m_cross_h + alpha * np.cross(m, m_cross_h)
        torque = prefactor * precession_plus_damping
        if a_j != 0.0:
            p = self._polarizer
            beta = self.config.field_like_torque_ratio
            m_cross_p = np.cross(m, p)
            stt = a_j * (np.cross(m, m_cross_p) - (alpha - beta) * m_cross_p)
            torque += prefactor * stt
        return torque

    def step_deterministic(self, m: np.ndarray, dt: float) -> np.ndarray:
        """One RK4 step of the zero-temperature LLGS."""
        a_j = self.spin_torque_field()

        def rhs(state: np.ndarray) -> np.ndarray:
            return self._torque(state, self.effective_field(state), a_j)

        k1 = rhs(m)
        k2 = rhs(m + 0.5 * dt * k1)
        k3 = rhs(m + 0.5 * dt * k2)
        k4 = rhs(m + dt * k3)
        new = m + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        return normalize(new)

    def step_stochastic(self, m: np.ndarray, dt: float) -> np.ndarray:
        """One Heun (predictor-corrector) step with a thermal field.

        The thermal field is held fixed over the step (Stratonovich
        interpretation), which is the standard discretisation for LLG.
        """
        a_j = self.spin_torque_field()
        h_thermal = self._rng.normal(0.0, self._thermal_sigma, size=3)

        def rhs(state: np.ndarray) -> np.ndarray:
            return self._torque(state, self.effective_field(state) + h_thermal, a_j)

        predictor = m + dt * rhs(m)
        predictor = normalize(predictor)
        corrected = m + 0.5 * dt * (rhs(m) + rhs(predictor))
        return normalize(corrected)

    # -- batched integration (the DSE Monte-Carlo fast path) -----------

    def _torque_batch(
        self, m: np.ndarray, h_total: np.ndarray, a_j: float
    ) -> np.ndarray:
        """:meth:`_torque` over an ``(N, 3)`` ensemble in one shot."""
        alpha = self._alpha
        prefactor = -self._gamma / (1.0 + alpha * alpha)
        m_cross_h = np.cross(m, h_total)
        torque = prefactor * (m_cross_h + alpha * np.cross(m, m_cross_h))
        if a_j != 0.0:
            p = self._polarizer
            beta = self.config.field_like_torque_ratio
            m_cross_p = np.cross(m, p[None, :])
            stt = a_j * (np.cross(m, m_cross_p) - (alpha - beta) * m_cross_p)
            torque += prefactor * stt
        return torque

    def _effective_field_batch(self, m: np.ndarray) -> np.ndarray:
        """:meth:`effective_field` over an ``(N, 3)`` ensemble."""
        field = np.tile(self._applied, (m.shape[0], 1))
        field[:, 2] += self._hk_eff * m[:, 2]
        return field

    def step_deterministic_batch(self, m: np.ndarray, dt: float) -> np.ndarray:
        """One RK4 step of ``(N, 3)`` zero-temperature trajectories.

        Row k evolves exactly as :meth:`step_deterministic` would evolve
        the single vector ``m[k]`` (the batched cross products and row
        normalisation are the same elementwise operations).
        """
        a_j = self.spin_torque_field()

        def rhs(state: np.ndarray) -> np.ndarray:
            return self._torque_batch(state, self._effective_field_batch(state), a_j)

        k1 = rhs(m)
        k2 = rhs(m + 0.5 * dt * k1)
        k3 = rhs(m + 0.5 * dt * k2)
        k4 = rhs(m + dt * k3)
        return normalize_rows(m + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4))

    def step_stochastic_batch(self, m: np.ndarray, dt: float) -> np.ndarray:
        """One Heun step of ``(N, 3)`` trajectories with thermal noise.

        Each trajectory gets an independent thermal field held over the
        step.  The ensemble consumes the RNG stream in one ``(N, 3)``
        draw per step, so individual trajectories are *statistically*
        (not bitwise) equivalent to sequential :meth:`step_stochastic`
        trajectories.
        """
        a_j = self.spin_torque_field()
        h_thermal = self._rng.normal(0.0, self._thermal_sigma, size=m.shape)

        def rhs(state: np.ndarray) -> np.ndarray:
            return self._torque_batch(
                state, self._effective_field_batch(state) + h_thermal, a_j
            )

        predictor = normalize_rows(m + dt * rhs(m))
        return normalize_rows(m + 0.5 * dt * (rhs(m) + rhs(predictor)))

    def run_batch(
        self,
        initials: np.ndarray,
        duration: float,
        record_every: int = 1,
    ) -> LLGBatchResult:
        """Integrate an ``(N, 3)`` ensemble for ``duration`` seconds.

        The batched twin of :meth:`run`: every trajectory advances in
        lockstep, one ``(N, 3)`` array op per dt, which is what makes
        ensemble switching statistics (N ~ 10^3..10^5) tractable.
        Early-exit predicates are not supported — the ensemble runs the
        full window (per-trajectory verdicts come from the final state,
        same as :meth:`run` without ``stop_when``).
        """
        dt = self.config.timestep
        steps = max(1, int(round(duration / dt)))
        m = normalize_rows(np.asarray(initials, dtype=float).reshape(-1, 3))
        signs = np.where(m[:, 2] != 0.0, np.sign(m[:, 2]), 1.0)
        stochastic = self._thermal_sigma > 0.0
        times = [0.0]
        trace = [m.copy()]
        for i in range(1, steps + 1):
            if stochastic:
                m = self.step_stochastic_batch(m, dt)
            else:
                m = self.step_deterministic_batch(m, dt)
            if i % record_every == 0:
                times.append(i * dt)
                trace.append(m.copy())
        if times[-1] != steps * dt:
            times.append(steps * dt)
            trace.append(m.copy())
        magnetization = np.asarray(trace)
        switched = magnetization[-1, :, 2] * signs < 0.0
        return LLGBatchResult(np.asarray(times), magnetization, switched)

    def run(
        self,
        initial: np.ndarray,
        duration: float,
        record_every: int = 1,
        stop_when: Optional[Callable[[np.ndarray], bool]] = None,
    ) -> LLGResult:
        """Integrate for ``duration`` seconds from ``initial``.

        Args:
            initial: Initial magnetisation (normalised internally).
            duration: Total simulated time [s].
            record_every: Keep every n-th sample to bound memory.
            stop_when: Optional early-exit predicate on m.

        Returns:
            The sampled trajectory and a switching verdict.
        """
        dt = self.config.timestep
        steps = max(1, int(round(duration / dt)))
        m = normalize(np.asarray(initial, dtype=float))
        initial_sign = math.copysign(1.0, m[2]) if m[2] != 0.0 else 1.0
        stochastic = self._thermal_sigma > 0.0
        times = [0.0]
        trace = [m.copy()]
        for i in range(1, steps + 1):
            if stochastic:
                m = self.step_stochastic(m, dt)
            else:
                m = self.step_deterministic(m, dt)
            if i % record_every == 0:
                times.append(i * dt)
                trace.append(m.copy())
            if stop_when is not None and stop_when(m):
                if times[-1] != i * dt:
                    times.append(i * dt)
                    trace.append(m.copy())
                break
        magnetization = np.asarray(trace)
        switched = bool(magnetization[-1, 2] * initial_sign < 0.0)
        return LLGResult(np.asarray(times), magnetization, switched)

    def relax(self, initial: np.ndarray, duration: float = 20e-9) -> np.ndarray:
        """Relax to the nearest zero-temperature equilibrium.

        Used by the sensor and oscillator models to find the static
        operating point under a bias field.
        """
        result = self.run(initial, duration)
        return result.final


def thermal_equilibrium_angle(delta: float, rng: np.random.Generator) -> float:
    """Draw an initial polar angle from the thermal cone distribution.

    For a barrier ``delta`` = E_b / k_B T, the small-angle equilibrium
    distribution is p(theta) ~ theta * exp(-delta * theta^2), i.e.
    theta^2 is exponential with mean 1/delta.  This seeds realistic
    switching-time spreads (the origin of the WER distribution tail).
    """
    if delta <= 0.0:
        raise ValueError("thermal stability factor must be positive")
    theta_squared = rng.exponential(1.0 / delta)
    return math.sqrt(theta_squared)
