"""MOSFET circuit element wrapping the PDK alpha-power-law model.

Newton linearisation: at each iteration the drain current is expanded
around the present (V_GS, V_DS) guess,

    I_D ~ I_D0 + g_m dV_GS + g_ds dV_DS,

stamped as a VCCS (g_m), an output conductance (g_ds) and an equivalent
current source.

The element is **source/drain symmetric**, like a physical MOSFET: for
an NMOS, whichever of the two diffusion terminals sits at the lower
potential acts as the source (the opposite for PMOS).  This matters in
MRAM bit cells, where the access transistor conducts in both write
polarities — the famous source-degeneration asymmetry of STT-MRAM
writes emerges from exactly this swap.
"""

from repro.pdk.transistor import TransistorParams
from repro.spice.mna import MNASystem
from repro.spice.netlist import Element


class MOSFET(Element):
    """Three-terminal MOSFET (drain, gate, source); bulk implicit.

    Args:
        name: Element name.
        drain: Drain node (label only — conduction is symmetric).
        gate: Gate node.
        source: Source node.
        params: PDK transistor parameters.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 params: TransistorParams):
        super().__init__(name, [drain, gate, source])
        self.params = params

    def _oriented_terminals(self, system: MNASystem):
        """Return (high_node, low_node) as (drain, source) for NMOS.

        For NMOS the effective source is the lower-potential diffusion;
        for PMOS the higher-potential one.  Ties keep the declared
        orientation.
        """
        vd = system.voltage(self.nodes[0])
        vs = system.voltage(self.nodes[2])
        if self.params.is_nmos:
            swapped = vd < vs
        else:
            swapped = vd > vs
        if swapped:
            return self.nodes[2], self.nodes[0]
        return self.nodes[0], self.nodes[2]

    def drain_current(self, system: MNASystem) -> float:
        """Conduction current flowing from the declared drain node to
        the declared source node at the present solution [A]."""
        drain, source = self._oriented_terminals(system)
        vd = system.voltage(drain)
        vg = system.voltage(self.nodes[1])
        vs = system.voltage(source)
        if self.params.is_nmos:
            magnitude = self.params.drain_current(vg - vs, vd - vs)
        else:
            magnitude = self.params.drain_current(vs - vg, vs - vd)
        # Current flows high->low diffusion for NMOS (low->high for
        # PMOS); translate back to the declared orientation.
        sign = 1.0 if drain == self.nodes[0] else -1.0
        if not self.params.is_nmos:
            sign = -sign
        return sign * magnitude

    def stamp(self, system: MNASystem) -> None:
        drain, source = self._oriented_terminals(system)
        d = system.circuit.index_of(drain)
        g = system.circuit.index_of(self.nodes[1])
        s = system.circuit.index_of(source)
        vd = system.voltage(drain)
        vg = system.voltage(self.nodes[1])
        vs = system.voltage(source)
        if self.params.is_nmos:
            vgs, vds = vg - vs, vd - vs
            i0 = self.params.drain_current(vgs, vds)
            gm = self.params.transconductance(vgs, vds)
            gds = self.params.output_conductance(vgs, vds)
            # Current flows (effective) drain -> source inside the device.
            system.add_transconductance(d, s, g, s, gm)
            system.add_conductance(d, s, max(gds, 0.0))
            i_eq = i0 - gm * vgs - gds * vds
            system.add_current(d, -i_eq)
            system.add_current(s, i_eq)
        else:
            vsg, vsd = vs - vg, vs - vd
            i0 = self.params.drain_current(vsg, vsd)
            gm = self.params.transconductance(vsg, vsd)
            gds = self.params.output_conductance(vsg, vsd)
            # Current flows (effective) source -> drain inside the device.
            system.add_transconductance(s, d, s, g, gm)
            system.add_conductance(s, d, max(gds, 0.0))
            i_eq = i0 - gm * vsg - gds * vsd
            system.add_current(s, -i_eq)
            system.add_current(d, i_eq)
