"""Linear elements and independent sources.

Stimulus waveforms mirror the SPICE primitives the paper's flow would
use from a Cadence testbench: DC, PULSE and PWL sources.
"""

import bisect
from typing import List, Sequence, Tuple

from repro.spice.mna import MNASystem
from repro.spice.netlist import Element


class Resistor(Element):
    """Ideal two-terminal resistor."""

    def __init__(self, name: str, node_p: str, node_n: str, resistance: float):
        if resistance <= 0.0:
            raise ValueError("resistance must be positive")
        super().__init__(name, [node_p, node_n])
        self.resistance = resistance

    def stamp(self, system: MNASystem) -> None:
        a = system.circuit.index_of(self.nodes[0])
        b = system.circuit.index_of(self.nodes[1])
        system.add_conductance(a, b, 1.0 / self.resistance)

    def current(self, system: MNASystem) -> float:
        """Current from node_p to node_n in the present solution [A]."""
        v = system.voltage(self.nodes[0]) - system.voltage(self.nodes[1])
        return v / self.resistance


class Capacitor(Element):
    """Ideal capacitor (backward-Euler companion in transient)."""

    def __init__(self, name: str, node_p: str, node_n: str, capacitance: float,
                 initial_voltage: float = 0.0):
        if capacitance <= 0.0:
            raise ValueError("capacitance must be positive")
        super().__init__(name, [node_p, node_n])
        self.capacitance = capacitance
        self._previous_voltage = initial_voltage

    def stamp(self, system: MNASystem) -> None:
        if not system.is_transient:
            return  # Open circuit in DC.
        a = system.circuit.index_of(self.nodes[0])
        b = system.circuit.index_of(self.nodes[1])
        g_eq = self.capacitance / system.dt
        system.add_conductance(a, b, g_eq)
        system.add_current(a, g_eq * self._previous_voltage)
        system.add_current(b, -g_eq * self._previous_voltage)

    def finish_step(self, system: MNASystem) -> None:
        self._previous_voltage = (
            system.voltage(self.nodes[0]) - system.voltage(self.nodes[1])
        )

    def set_initial_voltage(self, voltage: float) -> None:
        """Set the pre-transient capacitor voltage (IC= in SPICE)."""
        self._previous_voltage = voltage


class Waveform:
    """Base class of source waveforms: value(t)."""

    def value(self, time: float) -> float:
        """Source value at time ``time`` [V or A]."""
        raise NotImplementedError


class DC(Waveform):
    """Constant source."""

    def __init__(self, level: float):
        self.level = level

    def value(self, time: float) -> float:
        return self.level


class Pulse(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw per) waveform."""

    def __init__(
        self,
        low: float,
        high: float,
        delay: float,
        rise: float,
        fall: float,
        width: float,
        period: float = 0.0,
    ):
        if rise < 0.0 or fall < 0.0 or width < 0.0:
            raise ValueError("pulse edges and width must be non-negative")
        self.low = low
        self.high = high
        self.delay = delay
        self.rise = max(rise, 1e-15)
        self.fall = max(fall, 1e-15)
        self.width = width
        self.period = period

    def value(self, time: float) -> float:
        t = time - self.delay
        if t < 0.0:
            return self.low
        if self.period > 0.0:
            t = t % self.period
        if t < self.rise:
            return self.low + (self.high - self.low) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.high
        t -= self.width
        if t < self.fall:
            return self.high + (self.low - self.high) * t / self.fall
        return self.low


class PWL(Waveform):
    """Piecewise-linear waveform from (time, value) points."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("PWL needs at least two points")
        times = [p[0] for p in points]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.times: List[float] = list(times)
        self.values: List[float] = [p[1] for p in points]

    def value(self, time: float) -> float:
        if time <= self.times[0]:
            return self.values[0]
        if time >= self.times[-1]:
            return self.values[-1]
        hi = bisect.bisect_right(self.times, time)
        lo = hi - 1
        span = self.times[hi] - self.times[lo]
        t = (time - self.times[lo]) / span
        return self.values[lo] + t * (self.values[hi] - self.values[lo])


class VoltageSource(Element):
    """Independent voltage source (adds one MNA branch unknown)."""

    num_branches = 1

    def __init__(self, name: str, node_p: str, node_n: str, waveform: Waveform):
        super().__init__(name, [node_p, node_n])
        self.waveform = waveform
        self._value = waveform.value(0.0)

    def begin_step(self, time: float, dt: float) -> None:
        self._value = self.waveform.value(time)

    def stamp(self, system: MNASystem) -> None:
        branch = system.circuit.branch_index(self)
        p = system.circuit.index_of(self.nodes[0])
        n = system.circuit.index_of(self.nodes[1])
        if not system.is_transient:
            self._value = self.waveform.value(system.time)
        system.add_branch_voltage(branch, p, n, self._value)

    def current(self, system: MNASystem) -> float:
        """Current flowing *out of* the positive terminal [A].

        MNA convention: the branch unknown is the current entering the
        positive terminal from the circuit, so supply current delivered
        by the source is ``-branch``.
        """
        return system.branch_current(self)


class CurrentSource(Element):
    """Independent current source (current from node_p to node_n)."""

    def __init__(self, name: str, node_p: str, node_n: str, waveform: Waveform):
        super().__init__(name, [node_p, node_n])
        self.waveform = waveform
        self._value = waveform.value(0.0)

    def begin_step(self, time: float, dt: float) -> None:
        self._value = self.waveform.value(time)

    def stamp(self, system: MNASystem) -> None:
        p = system.circuit.index_of(self.nodes[0])
        n = system.circuit.index_of(self.nodes[1])
        if not system.is_transient:
            self._value = self.waveform.value(system.time)
        system.add_current(p, -self._value)
        system.add_current(n, self._value)
