"""Circuit netlist container for the SPICE substrate.

A :class:`Circuit` is an ordered collection of elements connected by
named nodes.  Node ``"0"`` (alias ``"gnd"``) is ground.  The circuit
assigns matrix indices: node voltages first, then one extra unknown per
source branch (standard MNA ordering).
"""

from typing import Dict, Iterable, List, Sequence

GROUND_NAMES = ("0", "gnd", "GND", "vss!", "ground")


class Circuit:
    """A flat netlist of circuit elements.

    Elements are appended with :meth:`add`; the node-to-index map is
    rebuilt lazily whenever the element set changes.
    """

    def __init__(self, title: str = "untitled"):
        self.title = title
        self.elements: List["Element"] = []
        self._node_index: Dict[str, int] = {}
        self._branch_offset: Dict[int, int] = {}
        self._dirty = True

    def add(self, element: "Element") -> "Element":
        """Append an element and return it (for chaining/handles)."""
        if any(e.name == element.name for e in self.elements):
            raise ValueError("duplicate element name %r" % element.name)
        self.elements.append(element)
        self._dirty = True
        return element

    def element(self, name: str) -> "Element":
        """Look up an element by name.

        Raises:
            KeyError: If no element has that name.
        """
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise KeyError("no element named %r" % name)

    @staticmethod
    def is_ground(node: str) -> bool:
        """True if the node name denotes the ground reference."""
        return node in GROUND_NAMES

    def _rebuild(self) -> None:
        self._node_index = {}
        for element in self.elements:
            for node in element.nodes:
                if self.is_ground(node):
                    continue
                if node not in self._node_index:
                    self._node_index[node] = len(self._node_index)
        self._branch_offset = {}
        next_branch = len(self._node_index)
        for position, element in enumerate(self.elements):
            if element.num_branches:
                self._branch_offset[position] = next_branch
                next_branch += element.num_branches
        self._size = next_branch
        self._dirty = False

    @property
    def node_index(self) -> Dict[str, int]:
        """Map from node name to matrix row (ground excluded)."""
        if self._dirty:
            self._rebuild()
        return self._node_index

    @property
    def size(self) -> int:
        """Total number of MNA unknowns (nodes + source branches)."""
        if self._dirty:
            self._rebuild()
        return self._size

    def branch_index(self, element: "Element") -> int:
        """Matrix row of an element's first branch unknown.

        Raises:
            ValueError: If the element has no branch unknowns.
        """
        if self._dirty:
            self._rebuild()
        position = self.elements.index(element)
        if position not in self._branch_offset:
            raise ValueError("element %r has no branch current" % element.name)
        return self._branch_offset[position]

    def index_of(self, node: str) -> int:
        """Matrix row of a node; -1 for ground."""
        if self.is_ground(node):
            return -1
        return self.node_index[node]

    def node_names(self) -> Sequence[str]:
        """All non-ground node names in index order."""
        index = self.node_index
        ordered = sorted(index, key=index.get)
        return ordered

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return "Circuit(%r, %d elements, %d nodes)" % (
            self.title,
            len(self.elements),
            len(self.node_index),
        )


class Element:
    """Base class for all circuit elements.

    Subclasses define ``nodes`` (terminal node names), ``num_branches``
    (extra MNA unknowns), and :meth:`stamp`.
    """

    #: Number of extra branch-current unknowns this element adds.
    num_branches = 0

    def __init__(self, name: str, nodes: Iterable[str]):
        self.name = name
        self.nodes = list(nodes)

    def stamp(self, system: "MNASystem") -> None:
        """Stamp the element's linearised companion into the system."""
        raise NotImplementedError

    def begin_step(self, time: float, dt: float) -> None:
        """Hook called once before each transient step's Newton loop."""

    def finish_step(self, system: "MNASystem") -> None:
        """Hook called after a transient step converges (state update)."""

    def __repr__(self) -> str:
        return "%s(%r, %s)" % (type(self).__name__, self.name, self.nodes)
