"""Behavioural controlled sources for mixed-level cell modelling.

Periphery circuits that are not the object of a characterisation run
(e.g. the output comparator behind a sense node) can be modelled with a
smooth behavioural element instead of a full transistor netlist — the
same trade the paper's Verilog-A flow makes.  The element is a voltage
source whose value is an arbitrary differentiable function of node
voltages; the Jacobian entries are supplied analytically or by secant.
"""

from typing import Callable, Dict, List

from repro.spice.mna import MNASystem
from repro.spice.netlist import Element

#: Signature: node-voltage dict -> output voltage.
TransferFunction = Callable[[Dict[str, float]], float]


class BehavioralVoltage(Element):
    """Voltage source v(out) = f(controlling node voltages).

    Args:
        name: Element name.
        node_p: Positive output node.
        node_n: Negative output node (usually ground).
        controls: Names of controlling nodes passed to ``function``.
        function: Transfer function mapping control voltages to the
            source value.  Must be smooth; Newton differentiates it by
            secant with a 1 mV step.
    """

    num_branches = 1

    def __init__(
        self,
        name: str,
        node_p: str,
        node_n: str,
        controls: List[str],
        function: TransferFunction,
    ):
        super().__init__(name, [node_p, node_n])
        self.controls = list(controls)
        self.function = function

    def _control_voltages(self, system: MNASystem) -> Dict[str, float]:
        return {node: system.voltage(node) for node in self.controls}

    def stamp(self, system: MNASystem) -> None:
        branch = system.circuit.branch_index(self)
        p = system.circuit.index_of(self.nodes[0])
        n = system.circuit.index_of(self.nodes[1])
        voltages = self._control_voltages(system)
        value = self.function(voltages)
        # Branch equation: v_p - v_n - sum(df/dvc * vc) = value - sum(df/dvc * vc0)
        # i.e. linearised v_p - v_n = f(vc) around the guess.
        if p >= 0:
            system.matrix[branch, p] += 1.0
            system.matrix[p, branch] += 1.0
        if n >= 0:
            system.matrix[branch, n] -= 1.0
            system.matrix[n, branch] -= 1.0
        rhs_value = value
        step = 1e-3
        for control in self.controls:
            index = system.circuit.index_of(control)
            if index < 0:
                continue
            perturbed = dict(voltages)
            perturbed[control] = voltages[control] + step
            derivative = (self.function(perturbed) - value) / step
            system.matrix[branch, index] -= derivative
            rhs_value -= derivative * voltages[control]
        system.rhs[branch] += rhs_value

    def current(self, system: MNASystem) -> float:
        """Output branch current (into the positive terminal) [A]."""
        return system.branch_current(self)
