"""DC and transient analyses over a :class:`repro.spice.netlist.Circuit`.

The transient uses a fixed timestep with backward-Euler companion
models and a Newton loop per step — the robust, boring choice that
never ringings itself to death on the strongly nonlinear MTJ + MOSFET
netlists of the cell library.
"""

from typing import Iterable, Optional

import numpy as np

from repro.spice.elements import VoltageSource
from repro.spice.mna import ConvergenceError, MNASystem, solve_nonlinear
from repro.spice.netlist import Circuit
from repro.spice.waveform import WaveformSet


def dc_operating_point(circuit: Circuit, damping: float = 1.0) -> MNASystem:
    """Solve the DC operating point.

    Capacitors are open; sources sit at their t=0 values.  Uses a
    gmin-stepping retry ladder if plain Newton fails (floating nodes
    through off transistors are common in the cell netlists).

    Returns:
        The solved :class:`MNASystem` (query voltages/currents from it).
    """
    system = MNASystem(circuit)
    for attempt_damping in (damping, 0.5, 0.2, 0.05):
        try:
            solve_nonlinear(system, max_iterations=200, damping=attempt_damping)
            return system
        except ConvergenceError:
            system.solution[:] = 0.0
    raise ConvergenceError("DC operating point failed for %r" % circuit.title)


class TransientResult:
    """Waveforms plus the final solved system of a transient run."""

    def __init__(self, waveforms: WaveformSet, system: MNASystem):
        self.waveforms = waveforms
        self.system = system


def transient(
    circuit: Circuit,
    stop_time: float,
    timestep: float,
    record_currents_of: Optional[Iterable[str]] = None,
    use_dc_initial: bool = True,
    newton_damping: float = 1.0,
) -> TransientResult:
    """Run a fixed-step transient analysis.

    Args:
        circuit: The netlist to simulate.
        stop_time: End time [s].
        timestep: Fixed integration step [s].
        record_currents_of: Names of voltage-source elements whose branch
            currents should be recorded as ``i(<name>)`` traces.
        use_dc_initial: Solve a DC operating point first (True) or start
            from all-zero node voltages (False).
        newton_damping: Damping for the per-step Newton loops.

    Returns:
        A :class:`TransientResult` with one voltage trace per node plus
        the requested current traces.
    """
    if stop_time <= 0.0 or timestep <= 0.0:
        raise ValueError("stop_time and timestep must be positive")
    steps = int(round(stop_time / timestep))
    current_names = list(record_currents_of or [])
    current_elements = [circuit.element(name) for name in current_names]
    for element in current_elements:
        if not isinstance(element, VoltageSource):
            raise TypeError(
                "can only record branch currents of voltage sources, got %r"
                % element
            )

    if use_dc_initial:
        dc_system = dc_operating_point(circuit)
        initial = dc_system.solution.copy()
        # Let capacitors remember their DC voltage before time starts.
        for element in circuit.elements:
            element.finish_step(dc_system)
    else:
        initial = np.zeros(circuit.size)

    node_names = list(circuit.node_names())
    times = [0.0]
    samples = {name: [initial[circuit.index_of(name)]] for name in node_names}
    branch_samples = {name: [] for name in current_names}
    # Initial branch currents from a zero-time assembly.
    boot = MNASystem(circuit, solution=initial.copy(), time=0.0, dt=timestep)
    for name, element in zip(current_names, current_elements):
        branch_samples[name].append(element.current(boot))

    system = MNASystem(circuit, solution=initial.copy(), time=0.0, dt=timestep)
    for step in range(1, steps + 1):
        time = step * timestep
        system.time = time
        system.dt = timestep
        for element in circuit.elements:
            element.begin_step(time, timestep)
        try:
            solve_nonlinear(system, max_iterations=120, damping=newton_damping)
        except ConvergenceError:
            # One retry with heavy damping; MTJ switching instants can
            # make a single step stiff.
            solve_nonlinear(system, max_iterations=400, damping=0.2)
        for element in circuit.elements:
            element.finish_step(system)
        times.append(time)
        for name in node_names:
            samples[name].append(float(system.solution[circuit.index_of(name)]))
        for name, element in zip(current_names, current_elements):
            branch_samples[name].append(element.current(system))

    waveforms = WaveformSet(times)
    for name in node_names:
        waveforms.add("v(%s)" % name, samples[name])
    for name in current_names:
        waveforms.add("i(%s)" % name, branch_samples[name])
    return TransientResult(waveforms, system)
