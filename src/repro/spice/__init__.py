"""SPICE-class circuit simulation substrate (MNA + Newton + MDL)."""

from repro.spice.netlist import Circuit, Element
from repro.spice.mna import ConvergenceError, GMIN, MNASystem, solve_nonlinear
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    DC,
    Pulse,
    PWL,
    Resistor,
    VoltageSource,
    Waveform,
)
from repro.spice.mosfet import MOSFET
from repro.spice.mtj_element import MTJElement
from repro.spice.analysis import TransientResult, dc_operating_point, transient
from repro.spice.waveform import Trace, WaveformSet
from repro.spice.mdl import (
    CrossEvent,
    Delay,
    Energy,
    Expression,
    Extreme,
    Integral,
    Measurement,
    MeasurementScript,
    When,
)

__all__ = [
    "Circuit",
    "Element",
    "ConvergenceError",
    "GMIN",
    "MNASystem",
    "solve_nonlinear",
    "Capacitor",
    "CurrentSource",
    "DC",
    "Pulse",
    "PWL",
    "Resistor",
    "VoltageSource",
    "Waveform",
    "MOSFET",
    "MTJElement",
    "TransientResult",
    "dc_operating_point",
    "transient",
    "Trace",
    "WaveformSet",
    "CrossEvent",
    "Delay",
    "Energy",
    "Expression",
    "Extreme",
    "Integral",
    "Measurement",
    "MeasurementScript",
    "When",
]
