"""Modified nodal analysis system assembly and Newton solver.

The :class:`MNASystem` is the mutable context elements stamp into: a
dense conductance matrix ``G`` and right-hand side ``rhs`` such that
``G @ x = rhs`` with ``x`` holding node voltages then branch currents.
Nonlinear elements stamp their linearisation around the present guess
(:attr:`MNASystem.solution`); :func:`solve_nonlinear` iterates to
convergence with source-free gmin regularisation for robustness.
"""

from typing import Optional

import numpy as np

from repro.spice.netlist import Circuit

#: Conductance from every node to ground added for matrix conditioning.
GMIN = 1e-12


class MNASystem:
    """One assembly of the MNA equations at a given operating point.

    Attributes:
        circuit: The circuit being solved.
        solution: Current solution guess (Newton linearisation point).
        time: Transient time of this solve [s] (0 for DC).
        dt: Transient timestep [s] (0 for DC — capacitors stamp open).
    """

    def __init__(
        self,
        circuit: Circuit,
        solution: Optional[np.ndarray] = None,
        time: float = 0.0,
        dt: float = 0.0,
    ):
        self.circuit = circuit
        size = circuit.size
        self.matrix = np.zeros((size, size))
        self.rhs = np.zeros(size)
        self.solution = solution if solution is not None else np.zeros(size)
        self.time = time
        self.dt = dt

    @property
    def is_transient(self) -> bool:
        """True when assembling a transient (companion-model) step."""
        return self.dt > 0.0

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` in the present guess [V]."""
        index = self.circuit.index_of(node)
        if index < 0:
            return 0.0
        return float(self.solution[index])

    def branch_current(self, element) -> float:
        """Branch current of a source element in the present guess [A]."""
        return float(self.solution[self.circuit.branch_index(element)])

    def add_conductance(self, node_a: int, node_b: int, conductance: float) -> None:
        """Stamp a two-terminal conductance between matrix rows.

        Rows are matrix indices (use ``circuit.index_of``); -1 = ground.
        """
        if node_a >= 0:
            self.matrix[node_a, node_a] += conductance
        if node_b >= 0:
            self.matrix[node_b, node_b] += conductance
        if node_a >= 0 and node_b >= 0:
            self.matrix[node_a, node_b] -= conductance
            self.matrix[node_b, node_a] -= conductance

    def add_transconductance(
        self, out_p: int, out_n: int, in_p: int, in_n: int, gm: float
    ) -> None:
        """Stamp a VCCS: current gm * (v_inp - v_inn) from out_p to out_n."""
        for out_row, out_sign in ((out_p, 1.0), (out_n, -1.0)):
            if out_row < 0:
                continue
            if in_p >= 0:
                self.matrix[out_row, in_p] += out_sign * gm
            if in_n >= 0:
                self.matrix[out_row, in_n] -= out_sign * gm

    def add_current(self, node: int, current: float) -> None:
        """Stamp a current *into* the node (onto the RHS)."""
        if node >= 0:
            self.rhs[node] += current

    def add_branch_voltage(
        self, branch: int, node_p: int, node_n: int, voltage: float
    ) -> None:
        """Stamp a voltage-source branch equation v_p - v_n = voltage."""
        if node_p >= 0:
            self.matrix[branch, node_p] += 1.0
            self.matrix[node_p, branch] += 1.0
        if node_n >= 0:
            self.matrix[branch, node_n] -= 1.0
            self.matrix[node_n, branch] -= 1.0
        self.rhs[branch] += voltage

    def assemble(self) -> None:
        """Zero and restamp the full system at the current guess."""
        self.matrix[:, :] = 0.0
        self.rhs[:] = 0.0
        node_count = len(self.circuit.node_index)
        for i in range(node_count):
            self.matrix[i, i] += GMIN
        for element in self.circuit.elements:
            element.stamp(self)

    def solve_once(self) -> np.ndarray:
        """Assemble and solve one linear system."""
        self.assemble()
        return np.linalg.solve(self.matrix, self.rhs)


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


def solve_nonlinear(
    system: MNASystem,
    max_iterations: int = 100,
    voltage_tolerance: float = 1e-6,
    damping: float = 1.0,
    max_voltage_step: float = 0.3,
) -> np.ndarray:
    """Newton-iterate the MNA system to convergence.

    Uses SPICE-style voltage step limiting: node-voltage updates are
    clipped to ``max_voltage_step`` per iteration, which converts the
    divergent overshoot of exponential/power-law device models into a
    monotone walk toward the solution.  Branch currents (source rows)
    are not limited.

    Args:
        system: The assembled-on-demand system (its ``solution`` is the
            initial guess and is updated in place).
        max_iterations: Iteration cap before declaring failure.
        voltage_tolerance: Convergence threshold on the max update [V].
        damping: Update damping factor in (0, 1] for stubborn circuits.
        max_voltage_step: Per-iteration clamp on node-voltage updates [V].

    Returns:
        The converged solution vector.

    Raises:
        ConvergenceError: If the iteration does not settle.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")
    node_count = len(system.circuit.node_index)
    worst = float("inf")
    for _ in range(max_iterations):
        new_solution = system.solve_once()
        delta = new_solution - system.solution
        worst = float(np.max(np.abs(delta))) if delta.size else 0.0
        limited = damping * delta
        np.clip(
            limited[:node_count],
            -max_voltage_step,
            max_voltage_step,
            out=limited[:node_count],
        )
        system.solution = system.solution + limited
        if worst < voltage_tolerance:
            return system.solution
    raise ConvergenceError(
        "Newton failed to converge within %d iterations (last delta %.3g V)"
        % (max_iterations, worst)
    )
