"""MTJ circuit element for the SPICE substrate.

Wraps a compact model from :mod:`repro.core.compact` as a two-terminal
nonlinear resistor.  Within one transient step the junction is a
voltage-dependent resistor (TMR roll-off); after the step converges the
magnetisation state is advanced with the step's current, so switching
events appear in the waveform exactly as in a Verilog-A co-simulation.
"""

from typing import List, Tuple, Union

from repro.core.compact import BehavioralMTJModel, PhysicalMTJModel
from repro.spice.mna import MNASystem
from repro.spice.netlist import Element

CompactModel = Union[BehavioralMTJModel, PhysicalMTJModel]


class MTJElement(Element):
    """Two-terminal MTJ (free-layer terminal first, reference second).

    Positive terminal current (node_p -> node_n) is taken as the
    AP -> P switching polarity, consistent with the compact models.

    Attributes:
        model: The wrapped compact model (behavioural or physical).
        switch_log: (time, new_state_is_ap) tuples of observed switches.
    """

    def __init__(self, name: str, node_p: str, node_n: str, model: CompactModel):
        super().__init__(name, [node_p, node_n])
        self.model = model
        self.switch_log: List[Tuple[float, bool]] = []
        self._time = 0.0
        self._dt = 0.0

    def begin_step(self, time: float, dt: float) -> None:
        self._time = time
        self._dt = dt

    def _bias(self, system: MNASystem) -> float:
        return system.voltage(self.nodes[0]) - system.voltage(self.nodes[1])

    def resistance(self, system: MNASystem) -> float:
        """Junction resistance at the present bias guess [ohm]."""
        return self.model.resistance(self._bias(system))

    def current(self, system: MNASystem) -> float:
        """Junction current at the present solution [A]."""
        return self._bias(system) / self.resistance(system)

    def stamp(self, system: MNASystem) -> None:
        voltage = self._bias(system)
        p = system.circuit.index_of(self.nodes[0])
        n = system.circuit.index_of(self.nodes[1])
        # Secant linearisation of I(V) = V / R(V) around the guess.
        delta = 1e-3
        i0 = voltage / self.model.resistance(voltage)
        i1 = (voltage + delta) / self.model.resistance(voltage + delta)
        conductance = max((i1 - i0) / delta, 1e-9)
        i_eq = i0 - conductance * voltage
        system.add_conductance(p, n, conductance)
        system.add_current(p, -i_eq)
        system.add_current(n, i_eq)

    def finish_step(self, system: MNASystem) -> None:
        if self._dt <= 0.0:
            return
        current = self.current(system)
        switched = self.model.advance(current, self._dt)
        if switched:
            self.switch_log.append((self._time, self.model.state.antiparallel))

    @property
    def is_antiparallel(self) -> bool:
        """Present logical state of the junction."""
        return self.model.state.antiparallel
