"""Measurement Descriptive Language (MDL) layer.

Sec. IV-A: "a template file is created for the netlist, stimulus and
Measurement Descriptive Language (MDL) ... the SPICE simulation
generates output measurement file that is then parsed to extract the
required cell level parameters such as switching current, delay and
energy values."

This module is that measurement layer: declarative measurement objects
evaluated against a :class:`repro.spice.waveform.WaveformSet`, plus a
:class:`MeasurementScript` that bundles them and renders/parses the
"output measurement file" format the characterisation flow consumes.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.spice.waveform import WaveformSet


@dataclass(frozen=True)
class CrossEvent:
    """A threshold-crossing event specification.

    Attributes:
        signal: Trace name, e.g. ``"v(out)"``.
        level: Threshold value.
        edge: "rise", "fall" or "either".
        occurrence: 1-based index of the crossing to select; -1 = last.
    """

    signal: str
    level: float
    edge: str = "either"
    occurrence: int = 1

    def locate(self, waveforms: WaveformSet) -> float:
        """Return the event time [s].

        Raises:
            ValueError: If the requested crossing does not occur.
        """
        crossings = waveforms.trace(self.signal).crossings(self.level, self.edge)
        if not crossings:
            raise ValueError(
                "signal %s never crosses %.4g (%s)" % (self.signal, self.level, self.edge)
            )
        index = self.occurrence - 1 if self.occurrence > 0 else self.occurrence
        try:
            return crossings[index]
        except IndexError:
            raise ValueError(
                "signal %s crosses %.4g only %d time(s), wanted occurrence %d"
                % (self.signal, self.level, len(crossings), self.occurrence)
            )


class Measurement:
    """Base class: named measurement evaluated on a waveform set."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, waveforms: WaveformSet) -> float:
        """Compute the measurement value."""
        raise NotImplementedError


class Delay(Measurement):
    """Trigger-to-target delay (SPICE ``.measure trig ... targ ...``)."""

    def __init__(self, name: str, trigger: CrossEvent, target: CrossEvent):
        super().__init__(name)
        self.trigger = trigger
        self.target = target

    def evaluate(self, waveforms: WaveformSet) -> float:
        return self.target.locate(waveforms) - self.trigger.locate(waveforms)


class When(Measurement):
    """Absolute time of one crossing event."""

    def __init__(self, name: str, event: CrossEvent):
        super().__init__(name)
        self.event = event

    def evaluate(self, waveforms: WaveformSet) -> float:
        return self.event.locate(waveforms)


class Extreme(Measurement):
    """Min/max/peak-to-peak/average of a signal in a window."""

    def __init__(self, name: str, signal: str, kind: str,
                 t0: Optional[float] = None, t1: Optional[float] = None):
        if kind not in ("min", "max", "pp", "avg"):
            raise ValueError("kind must be min, max, pp or avg")
        super().__init__(name)
        self.signal = signal
        self.kind = kind
        self.t0 = t0
        self.t1 = t1

    def evaluate(self, waveforms: WaveformSet) -> float:
        trace = waveforms.trace(self.signal)
        if self.kind == "min":
            return trace.minimum(self.t0, self.t1)
        if self.kind == "max":
            return trace.maximum(self.t0, self.t1)
        if self.kind == "pp":
            return trace.maximum(self.t0, self.t1) - trace.minimum(self.t0, self.t1)
        return trace.average(self.t0, self.t1)


class Integral(Measurement):
    """Trapezoidal integral of a signal (e.g. charge from a current)."""

    def __init__(self, name: str, signal: str,
                 t0: Optional[float] = None, t1: Optional[float] = None,
                 scale: float = 1.0):
        super().__init__(name)
        self.signal = signal
        self.t0 = t0
        self.t1 = t1
        self.scale = scale

    def evaluate(self, waveforms: WaveformSet) -> float:
        return self.scale * waveforms.trace(self.signal).integral(self.t0, self.t1)


class Energy(Measurement):
    """Supply energy: integral of -i(source) * v_supply over a window.

    The branch current of a voltage source is defined *into* its
    positive terminal, so delivered energy carries a minus sign.
    """

    def __init__(self, name: str, source_current_signal: str, supply_voltage: float,
                 t0: Optional[float] = None, t1: Optional[float] = None):
        super().__init__(name)
        self.signal = source_current_signal
        self.supply_voltage = supply_voltage
        self.t0 = t0
        self.t1 = t1

    def evaluate(self, waveforms: WaveformSet) -> float:
        charge = waveforms.trace(self.signal).integral(self.t0, self.t1)
        return -charge * self.supply_voltage


class Expression(Measurement):
    """Arbitrary function of the waveform set (escape hatch)."""

    def __init__(self, name: str, function: Callable[[WaveformSet], float]):
        super().__init__(name)
        self.function = function

    def evaluate(self, waveforms: WaveformSet) -> float:
        return self.function(waveforms)


class MeasurementScript:
    """Ordered collection of measurements — one "MDL file"."""

    def __init__(self, measurements: Optional[List[Measurement]] = None):
        self.measurements: List[Measurement] = list(measurements or [])

    def add(self, measurement: Measurement) -> "MeasurementScript":
        """Append a measurement (chainable)."""
        self.measurements.append(measurement)
        return self

    def run(self, waveforms: WaveformSet) -> Dict[str, float]:
        """Evaluate every measurement.

        Measurements whose events never occur evaluate to ``nan`` rather
        than aborting the script (matching SPICE ``.measure`` failure
        semantics).
        """
        results: Dict[str, float] = {}
        for measurement in self.measurements:
            try:
                results[measurement.name] = measurement.evaluate(waveforms)
            except (ValueError, KeyError):
                results[measurement.name] = float("nan")
        return results

    @staticmethod
    def render_output_file(results: Dict[str, float]) -> str:
        """Render the "output measurement file" text format."""
        lines = ["* MDL measurement results"]
        for name in sorted(results):
            lines.append("%s = %.6e" % (name, results[name]))
        return "\n".join(lines)

    @staticmethod
    def parse_output_file(text: str) -> Dict[str, float]:
        """Parse the text format back (the flow's "File Parser" box)."""
        results: Dict[str, float] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("*"):
                continue
            if "=" not in line:
                raise ValueError("malformed measurement line: %r" % line)
            name, _, value = line.partition("=")
            results[name.strip()] = float(value.strip())
        return results
