"""Simulation result waveforms.

A :class:`WaveformSet` holds the sampled node voltages and source
branch currents of one analysis, with interpolating accessors that the
MDL measurement layer builds on.
"""

from typing import Dict, List, Sequence

import numpy as np


class Trace:
    """One named signal sampled on the common time axis."""

    def __init__(self, name: str, times: np.ndarray, values: np.ndarray):
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        self.name = name
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)

    def at(self, time: float) -> float:
        """Linear-interpolated value at ``time``."""
        return float(np.interp(time, self.times, self.values))

    def crossings(self, level: float, edge: str = "either") -> List[float]:
        """Times where the signal crosses ``level``.

        Args:
            level: Threshold value.
            edge: "rise", "fall" or "either".
        """
        if edge not in ("rise", "fall", "either"):
            raise ValueError("edge must be rise, fall or either")
        v = self.values - level
        times: List[float] = []
        for i in range(1, len(v)):
            if v[i - 1] == v[i]:
                continue
            if v[i - 1] < 0.0 <= v[i]:
                direction = "rise"
            elif v[i - 1] >= 0.0 > v[i]:
                direction = "fall"
            else:
                continue
            if edge != "either" and direction != edge:
                continue
            # Linear interpolation of the crossing instant.
            t = self.times[i - 1] + (self.times[i] - self.times[i - 1]) * (
                -v[i - 1] / (v[i] - v[i - 1])
            )
            times.append(float(t))
        return times

    def minimum(self, t0: float = None, t1: float = None) -> float:
        """Minimum value in the (optional) window."""
        return float(np.min(self._window(t0, t1)))

    def maximum(self, t0: float = None, t1: float = None) -> float:
        """Maximum value in the (optional) window."""
        return float(np.max(self._window(t0, t1)))

    def average(self, t0: float = None, t1: float = None) -> float:
        """Time-weighted average over the (optional) window."""
        mask = self._mask(t0, t1)
        times = self.times[mask]
        values = self.values[mask]
        if len(times) < 2:
            return float(values[0]) if len(values) else 0.0
        return float(np.trapezoid(values, times) / (times[-1] - times[0]))

    def integral(self, t0: float = None, t1: float = None) -> float:
        """Trapezoidal integral over the (optional) window."""
        mask = self._mask(t0, t1)
        if mask.sum() < 2:
            return 0.0
        return float(np.trapezoid(self.values[mask], self.times[mask]))

    def _mask(self, t0, t1) -> np.ndarray:
        lo = self.times[0] if t0 is None else t0
        hi = self.times[-1] if t1 is None else t1
        return (self.times >= lo) & (self.times <= hi)

    def _window(self, t0, t1) -> np.ndarray:
        window = self.values[self._mask(t0, t1)]
        if len(window) == 0:
            raise ValueError("empty measurement window")
        return window


class WaveformSet:
    """All traces produced by one analysis."""

    def __init__(self, times: Sequence[float]):
        self.times = np.asarray(times, dtype=float)
        self._traces: Dict[str, np.ndarray] = {}

    def add(self, name: str, values: Sequence[float]) -> None:
        """Register a signal sampled on the common time axis."""
        values = np.asarray(values, dtype=float)
        if len(values) != len(self.times):
            raise ValueError(
                "trace %r has %d samples, axis has %d"
                % (name, len(values), len(self.times))
            )
        self._traces[name] = values

    def trace(self, name: str) -> Trace:
        """Fetch one signal.

        Raises:
            KeyError: Unknown signal name (lists the available ones).
        """
        if name not in self._traces:
            raise KeyError(
                "no trace %r; available: %s" % (name, sorted(self._traces))
            )
        return Trace(name, self.times, self._traces[name])

    def names(self) -> List[str]:
        """All registered signal names."""
        return sorted(self._traces)

    def __contains__(self, name: str) -> bool:
        return name in self._traces
