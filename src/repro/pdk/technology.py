"""CMOS technology descriptions for the hybrid PDK.

The paper evaluates the MSS memory path at the 65 nm and 45 nm nodes
(Table 1).  Each :class:`CMOSTechnology` carries the device- and
wire-level parameters every higher layer consumes: the SPICE transistor
model (via :mod:`repro.pdk.transistor`), the NVSim-class array model
(wire RC, gate capacitances) and the McPAT-class system estimator
(per-access energies, leakage densities).

Values are representative planar-bulk numbers assembled from the public
ITRS tables and the NVSim/McPAT default technology files — adequate for
reproducing *relative* behaviour across nodes, which is all the paper's
evaluation uses them for.
"""

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CMOSTechnology:
    """One CMOS technology node.

    Attributes:
        node_nm: Feature size label [nm].
        vdd: Nominal supply voltage [V].
        vth_n: NMOS threshold voltage [V].
        vth_p: PMOS threshold voltage magnitude [V].
        k_prime_n: NMOS transconductance parameter u_n Cox [A/V^2].
        k_prime_p: PMOS transconductance parameter [A/V^2].
        velocity_saturation_alpha: Alpha-power-law exponent (2 = ideal
            square law; ~1.3 at deep submicron).
        gate_cap_per_um: Gate capacitance per micron of width [F/um].
        drain_cap_per_um: Drain junction capacitance per micron [F/um].
        wire_res_per_um: Intermediate-layer wire resistance [ohm/um].
        wire_cap_per_um: Intermediate-layer wire capacitance [F/um].
        min_width_um: Minimum transistor width [um].
        contacted_gate_pitch_um: Contacted gate pitch [um] (area model).
        cell_height_tracks: Standard-cell height in metal tracks.
        leakage_per_um: Subthreshold leakage per micron of width at
            nominal Vdd and 300 K [A/um].
        sram_cell_area_f2: 6T SRAM cell area in F^2.
        mram_cell_area_f2: 1T-1MTJ STT-MRAM cell area in F^2 (denser —
            the origin of the iso-area capacity advantage in Sec. IV).
    """

    node_nm: int
    vdd: float
    vth_n: float
    vth_p: float
    k_prime_n: float
    k_prime_p: float
    velocity_saturation_alpha: float
    gate_cap_per_um: float
    drain_cap_per_um: float
    wire_res_per_um: float
    wire_cap_per_um: float
    min_width_um: float
    contacted_gate_pitch_um: float
    cell_height_tracks: int
    leakage_per_um: float
    sram_cell_area_f2: float
    mram_cell_area_f2: float

    @property
    def feature_size_m(self) -> float:
        """Feature size in metres."""
        return self.node_nm * 1e-9

    @property
    def gate_delay_fo4(self) -> float:
        """Fanout-of-4 inverter delay estimate [s].

        The classic 0.5 ps/nm rule of thumb, used to sanity-check the
        logical-effort decoder timing in the array model.
        """
        return 0.5e-12 * self.node_nm

    def sram_cell_area(self) -> float:
        """6T SRAM bit-cell area [m^2]."""
        f = self.feature_size_m
        return self.sram_cell_area_f2 * f * f

    def mram_cell_area(self) -> float:
        """1T-1MTJ bit-cell area [m^2]."""
        f = self.feature_size_m
        return self.mram_cell_area_f2 * f * f

    def on_current(self, width_um: float) -> float:
        """Saturation drive current of an NMOS of the given width [A]."""
        overdrive = self.vdd - self.vth_n
        return (
            0.5
            * self.k_prime_n
            * (width_um / (self.node_nm * 1e-3))
            * overdrive ** self.velocity_saturation_alpha
        )


#: 65 nm planar bulk node.
TECH_65NM = CMOSTechnology(
    node_nm=65,
    vdd=1.2,
    vth_n=0.35,
    vth_p=0.35,
    k_prime_n=3.2e-4,
    k_prime_p=1.5e-4,
    velocity_saturation_alpha=1.4,
    gate_cap_per_um=1.1e-15,
    drain_cap_per_um=0.9e-15,
    wire_res_per_um=1.2,
    wire_cap_per_um=0.20e-15,
    min_width_um=0.09,
    contacted_gate_pitch_um=0.22,
    cell_height_tracks=9,
    leakage_per_um=2.0e-7,
    sram_cell_area_f2=146.0,
    mram_cell_area_f2=40.0,
)

#: 45 nm planar bulk node.
TECH_45NM = CMOSTechnology(
    node_nm=45,
    vdd=1.1,
    vth_n=0.32,
    vth_p=0.32,
    k_prime_n=4.0e-4,
    k_prime_p=1.9e-4,
    velocity_saturation_alpha=1.35,
    gate_cap_per_um=1.0e-15,
    drain_cap_per_um=0.8e-15,
    wire_res_per_um=2.2,
    wire_cap_per_um=0.19e-15,
    min_width_um=0.065,
    contacted_gate_pitch_um=0.16,
    cell_height_tracks=9,
    leakage_per_um=4.0e-7,
    sram_cell_area_f2=146.0,
    mram_cell_area_f2=40.0,
)

#: All nodes the PDK ships, keyed by the nanometre label.
TECHNOLOGY_NODES: Dict[int, CMOSTechnology] = {65: TECH_65NM, 45: TECH_45NM}


def technology_for_node(node_nm: int) -> CMOSTechnology:
    """Look up a shipped technology node.

    Raises:
        KeyError: If the node is not one of the PDK's nodes (65, 45).
    """
    if node_nm not in TECHNOLOGY_NODES:
        raise KeyError(
            "unknown technology node %d nm; available: %s"
            % (node_nm, sorted(TECHNOLOGY_NODES))
        )
    return TECHNOLOGY_NODES[node_nm]
