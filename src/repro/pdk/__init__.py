"""Process design kit: CMOS nodes, transistor model, corners, variation."""

from repro.pdk.technology import (
    CMOSTechnology,
    TECH_45NM,
    TECH_65NM,
    TECHNOLOGY_NODES,
    technology_for_node,
)
from repro.pdk.transistor import THERMAL_VOLTAGE, TransistorParams
from repro.pdk.corners import (
    CMOS_CORNERS,
    CMOSCorner,
    CornerName,
    MAGNETIC_CORNERS,
    MagneticCorner,
    MagneticCornerName,
)
from repro.pdk.variation import (
    CMOSVariation,
    MTJVariation,
    ProcessVariation,
    variation_for_node,
)
from repro.pdk.kit import ProcessDesignKit

__all__ = [
    "CMOSTechnology",
    "TECH_45NM",
    "TECH_65NM",
    "TECHNOLOGY_NODES",
    "technology_for_node",
    "THERMAL_VOLTAGE",
    "TransistorParams",
    "CMOS_CORNERS",
    "CMOSCorner",
    "CornerName",
    "MAGNETIC_CORNERS",
    "MagneticCorner",
    "MagneticCornerName",
    "CMOSVariation",
    "MTJVariation",
    "ProcessVariation",
    "variation_for_node",
    "ProcessDesignKit",
]
