"""Statistical (within-die) variation models for CMOS and MTJ devices.

Sec. III: "Like any nano-scale device, STT-MRAM is also affected by
manufacturing variations as the technology scales down in the magnetic
fabrication process as well as the CMOS process."  This module defines
the distributions VAET-STT samples:

* CMOS — Pelgrom-law threshold mismatch, sigma_VT = A_VT / sqrt(W L),
  plus a global transconductance spread;
* MTJ — pillar-diameter (CD) spread from patterning and MgO-thickness
  spread from deposition.  RA is *exponential* in t_MgO, so a small
  thickness sigma creates the long resistance tail characteristic of
  measured STT-MRAM arrays.

Smaller nodes vary more: the Pelgrom area shrinks and the relative CD
control worsens, which is exactly why Table 1 shows larger latency
sigma at 45 nm than at 65 nm.
"""

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.material import BarrierMaterial
from repro.pdk.technology import CMOSTechnology


@dataclass(frozen=True)
class CMOSVariation:
    """Statistical CMOS device variation.

    Attributes:
        pelgrom_avt: Pelgrom threshold-mismatch coefficient [V*um].
        k_prime_sigma_rel: Relative sigma of the transconductance.
    """

    pelgrom_avt: float = 3.5e-3
    k_prime_sigma_rel: float = 0.04

    def vth_sigma(self, width_um: float, length_um: float) -> float:
        """Threshold mismatch sigma for a device of the given area [V]."""
        if width_um <= 0.0 or length_um <= 0.0:
            raise ValueError("device dimensions must be positive")
        return self.pelgrom_avt / math.sqrt(width_um * length_um)

    def sample_vth_shift(
        self, width_um: float, length_um: float, rng: np.random.Generator, size: Optional[int] = None
    ):
        """Sample additive threshold shifts [V]."""
        return rng.normal(0.0, self.vth_sigma(width_um, length_um), size=size)

    def sample_k_prime_scale(self, rng: np.random.Generator, size: Optional[int] = None):
        """Sample multiplicative transconductance factors."""
        return rng.normal(1.0, self.k_prime_sigma_rel, size=size)


@dataclass(frozen=True)
class MTJVariation:
    """Statistical MTJ device variation.

    Attributes:
        diameter_sigma_rel: Relative sigma of the pillar diameter (CD
            control of the magnetic patterning step).
        mgo_thickness_sigma_rel: Relative sigma of the MgO thickness.
        ra_thickness_sensitivity: d(ln RA) / d(t/t0) — RA is exponential
            in barrier thickness; ~12 means a 1 % thickness shift moves
            RA by ~12 %.
        tmr_sigma_rel: Relative sigma of the TMR ratio.
        anisotropy_sigma_rel: Relative sigma of the interfacial PMA.
    """

    diameter_sigma_rel: float = 0.05
    mgo_thickness_sigma_rel: float = 0.01
    ra_thickness_sensitivity: float = 12.0
    tmr_sigma_rel: float = 0.03
    anisotropy_sigma_rel: float = 0.02

    def sample_geometry(
        self, nominal: PillarGeometry, rng: np.random.Generator
    ) -> PillarGeometry:
        """Sample one pillar geometry instance."""
        diameter = nominal.diameter * max(
            0.3, 1.0 + rng.normal(0.0, self.diameter_sigma_rel)
        )
        return PillarGeometry(
            diameter=diameter, free_layer_thickness=nominal.free_layer_thickness
        )

    def sample_resistance_scale(self, rng: np.random.Generator, size: Optional[int] = None):
        """Sample the lognormal RA factor from MgO-thickness spread."""
        sigma_ln = self.ra_thickness_sensitivity * self.mgo_thickness_sigma_rel
        return np.exp(rng.normal(0.0, sigma_ln, size=size))

    def sample_barrier(
        self, nominal: BarrierMaterial, rng: np.random.Generator
    ) -> BarrierMaterial:
        """Sample one barrier instance (RA lognormal, TMR normal)."""
        ra_scale = float(self.sample_resistance_scale(rng))
        tmr_scale = max(0.2, 1.0 + rng.normal(0.0, self.tmr_sigma_rel))
        return nominal.with_updates(
            resistance_area_product=nominal.resistance_area_product * ra_scale,
            tmr_zero_bias=nominal.tmr_zero_bias * tmr_scale,
        )


def variation_for_node(tech: CMOSTechnology) -> "ProcessVariation":
    """Node-scaled statistical variation.

    The 45 nm magnetic patterning has worse relative CD control than
    65 nm (same absolute edge roughness on a smaller pillar), and the
    Pelgrom coefficient improves only mildly — so the smaller node is
    noisier overall, reproducing the sigma ordering of Table 1.
    """
    scale = 65.0 / tech.node_nm
    cmos = CMOSVariation(
        pelgrom_avt=3.5e-3 * (0.9 + 0.1 * scale),
        k_prime_sigma_rel=0.12 * math.sqrt(scale),
    )
    mtj = MTJVariation(
        diameter_sigma_rel=0.02 * scale ** 0.75,
        mgo_thickness_sigma_rel=0.012 * math.sqrt(scale),
    )
    return ProcessVariation(cmos=cmos, mtj=mtj)


@dataclass(frozen=True)
class ProcessVariation:
    """Bundle of the CMOS and MTJ statistical models.

    Attributes:
        cmos: CMOS mismatch model.
        mtj: MTJ variation model.
    """

    cmos: CMOSVariation = CMOSVariation()
    mtj: MTJVariation = MTJVariation()
