"""The hybrid Process Design Kit (PDK).

Sec. II / Fig. 10: "First, a Process Design Kit (PDK) is developed with
the device-level parameters ... This PDK is then used as an input for
circuit-level simulation through SPICE."

A :class:`ProcessDesignKit` bundles everything a circuit or memory
designer instantiates devices from:

* a CMOS technology node (+ corner),
* the MSS magnetic stack (free layer, barrier, default pillar),
* statistical variation models for both processes.

Factory helpers build SPICE-ready transistor parameter sets and MSS
device instances so downstream code never touches raw constants.
"""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.geometry import PillarGeometry
from repro.core.material import (
    BarrierMaterial,
    FreeLayerMaterial,
    MSS_BARRIER,
    MSS_FREE_LAYER,
)
from repro.core.mtj import MTJTransport
from repro.core.switching import SwitchingModel
from repro.pdk.corners import (
    CMOS_CORNERS,
    CornerName,
    MAGNETIC_CORNERS,
    MagneticCornerName,
)
from repro.pdk.technology import CMOSTechnology, technology_for_node
from repro.pdk.transistor import TransistorParams
from repro.pdk.variation import ProcessVariation, variation_for_node


@dataclass(frozen=True)
class ProcessDesignKit:
    """Hybrid CMOS + MSS process design kit.

    Attributes:
        tech: CMOS technology (already shifted to ``cmos_corner``).
        free_layer: MSS free layer material.
        barrier: MSS tunnel barrier.
        memory_pillar: Default memory-mode pillar geometry.
        variation: Statistical variation bundle.
        cmos_corner: Name of the applied CMOS corner.
        magnetic_corner: Name of the applied magnetic corner.
    """

    tech: CMOSTechnology
    free_layer: FreeLayerMaterial = MSS_FREE_LAYER
    barrier: BarrierMaterial = MSS_BARRIER
    memory_pillar: PillarGeometry = field(default_factory=PillarGeometry)
    variation: ProcessVariation = field(default_factory=ProcessVariation)
    cmos_corner: CornerName = CornerName.TT
    magnetic_corner: MagneticCornerName = MagneticCornerName.NOMINAL

    @classmethod
    def for_node(
        cls,
        node_nm: int,
        cmos_corner: CornerName = CornerName.TT,
        magnetic_corner: MagneticCornerName = MagneticCornerName.NOMINAL,
        pillar_diameter: float = 40e-9,
    ) -> "ProcessDesignKit":
        """Build the PDK for a shipped node, optionally at a corner."""
        tech = technology_for_node(node_nm)
        tech = CMOS_CORNERS[cmos_corner].apply(tech)
        magnetic = MAGNETIC_CORNERS[magnetic_corner]
        free_layer = magnetic.apply_free_layer(MSS_FREE_LAYER)
        barrier = magnetic.apply_barrier(MSS_BARRIER)
        return cls(
            tech=tech,
            free_layer=free_layer,
            barrier=barrier,
            memory_pillar=PillarGeometry(diameter=pillar_diameter),
            variation=variation_for_node(tech),
            cmos_corner=cmos_corner,
            magnetic_corner=magnetic_corner,
        )

    def nmos(self, width_um: float, length_um: Optional[float] = None) -> TransistorParams:
        """Instantiate an NMOS of the given width."""
        return TransistorParams.nmos(self.tech, width_um, length_um)

    def pmos(self, width_um: float, length_um: Optional[float] = None) -> TransistorParams:
        """Instantiate a PMOS of the given width."""
        return TransistorParams.pmos(self.tech, width_um, length_um)

    def mtj_transport(self, geometry: Optional[PillarGeometry] = None) -> MTJTransport:
        """Transport model of the memory-mode MTJ."""
        return MTJTransport(geometry or self.memory_pillar, self.barrier)

    def switching_model(self, geometry: Optional[PillarGeometry] = None) -> SwitchingModel:
        """Switching statistics of the memory-mode MTJ."""
        return SwitchingModel(self.free_layer, geometry or self.memory_pillar)

    def sample_mtj_instance(self, rng: np.random.Generator) -> MTJTransport:
        """Sample one varied MTJ transport instance (for Monte Carlo)."""
        geometry = self.variation.mtj.sample_geometry(self.memory_pillar, rng)
        barrier = self.variation.mtj.sample_barrier(self.barrier, rng)
        return MTJTransport(geometry, barrier)
