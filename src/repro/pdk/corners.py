"""Process corners for the hybrid CMOS + magnetic PDK.

Corner analysis is the deterministic half of Sec. III's variability
story: the CMOS process shifts threshold voltages and transconductance
(TT/FF/SS/FS/SF), while the magnetic process shifts the MTJ's RA
product, TMR and anisotropy.  Statistical (within-die) variation lives
in :mod:`repro.pdk.variation`.
"""

import enum
from dataclasses import dataclass, replace
from typing import Dict

from repro.core.material import BarrierMaterial, FreeLayerMaterial
from repro.pdk.technology import CMOSTechnology


class CornerName(enum.Enum):
    """The five classic CMOS corners."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"
    SF = "sf"


@dataclass(frozen=True)
class CMOSCorner:
    """Multiplicative shifts applied to a nominal technology.

    Attributes:
        name: Corner label.
        vth_n_shift: Additive NMOS threshold shift [V].
        vth_p_shift: Additive PMOS threshold shift [V].
        k_prime_scale: Multiplicative mobility/transconductance factor.
    """

    name: CornerName
    vth_n_shift: float
    vth_p_shift: float
    k_prime_scale: float

    def apply(self, tech: CMOSTechnology) -> CMOSTechnology:
        """Return the technology shifted to this corner."""
        return replace(
            tech,
            vth_n=tech.vth_n + self.vth_n_shift,
            vth_p=tech.vth_p + self.vth_p_shift,
            k_prime_n=tech.k_prime_n * self.k_prime_scale,
            k_prime_p=tech.k_prime_p * self.k_prime_scale,
        )


#: Standard corner set; +/-40 mV threshold, +/-12 % transconductance.
CMOS_CORNERS: Dict[CornerName, CMOSCorner] = {
    CornerName.TT: CMOSCorner(CornerName.TT, 0.0, 0.0, 1.0),
    CornerName.FF: CMOSCorner(CornerName.FF, -0.04, -0.04, 1.12),
    CornerName.SS: CMOSCorner(CornerName.SS, +0.04, +0.04, 0.88),
    CornerName.FS: CMOSCorner(CornerName.FS, -0.04, +0.04, 1.0),
    CornerName.SF: CMOSCorner(CornerName.SF, +0.04, -0.04, 1.0),
}


class MagneticCornerName(enum.Enum):
    """Magnetic-process corners of the MSS module."""

    NOMINAL = "nominal"
    HIGH_RA = "high_ra"
    LOW_RA = "low_ra"
    WEAK_PMA = "weak_pma"
    STRONG_PMA = "strong_pma"


@dataclass(frozen=True)
class MagneticCorner:
    """Multiplicative shifts of the magnetic stack parameters.

    Attributes:
        name: Corner label.
        ra_scale: RA-product factor (MgO thickness variation; RA is
            exponential in t_MgO so +/-20 % is a mild corner).
        tmr_scale: TMR factor.
        anisotropy_scale: Interfacial-PMA factor (annealing spread).
    """

    name: MagneticCornerName
    ra_scale: float
    tmr_scale: float
    anisotropy_scale: float

    def apply_barrier(self, barrier: BarrierMaterial) -> BarrierMaterial:
        """Return the barrier shifted to this corner."""
        return barrier.with_updates(
            resistance_area_product=barrier.resistance_area_product * self.ra_scale,
            tmr_zero_bias=barrier.tmr_zero_bias * self.tmr_scale,
        )

    def apply_free_layer(self, material: FreeLayerMaterial) -> FreeLayerMaterial:
        """Return the free layer shifted to this corner."""
        return material.with_updates(
            interfacial_anisotropy=material.interfacial_anisotropy
            * self.anisotropy_scale
        )


#: Magnetic corner set used by the PDK.
MAGNETIC_CORNERS: Dict[MagneticCornerName, MagneticCorner] = {
    MagneticCornerName.NOMINAL: MagneticCorner(MagneticCornerName.NOMINAL, 1.0, 1.0, 1.0),
    MagneticCornerName.HIGH_RA: MagneticCorner(MagneticCornerName.HIGH_RA, 1.2, 1.05, 1.0),
    MagneticCornerName.LOW_RA: MagneticCorner(MagneticCornerName.LOW_RA, 0.8, 0.92, 1.0),
    MagneticCornerName.WEAK_PMA: MagneticCorner(MagneticCornerName.WEAK_PMA, 1.0, 1.0, 0.95),
    MagneticCornerName.STRONG_PMA: MagneticCorner(MagneticCornerName.STRONG_PMA, 1.0, 1.0, 1.05),
}
