"""Alpha-power-law MOSFET compact model.

The SPICE substrate needs a transistor I-V model that is smooth enough
for Newton iteration yet captures velocity saturation at the 65/45 nm
nodes.  The Sakurai-Newton alpha-power law is the standard compact
choice at this abstraction level:

    I_D,sat = (K'/2) (W/L) (V_GS - V_T)^alpha
    I_D,lin = I_D,sat * (2 - V_DS/V_Dsat) * (V_DS/V_Dsat)

with V_Dsat = K_v (V_GS - V_T)^(alpha/2).  Channel-length modulation is
a linear lambda term; subthreshold conduction is exponential with an
ideality factor, blended smoothly at V_T to keep dI/dV continuous.
"""

import math
from dataclasses import dataclass

from repro.pdk.technology import CMOSTechnology

#: Thermal voltage at 300 K [V].
THERMAL_VOLTAGE = 0.02585


@dataclass(frozen=True)
class TransistorParams:
    """Electrical parameters of one MOSFET instance.

    Attributes:
        is_nmos: Polarity flag.
        width_um: Gate width [um].
        length_um: Gate length [um].
        vth: Threshold voltage [V] (positive number for both polarities).
        k_prime: Transconductance parameter [A/V^2].
        alpha: Velocity-saturation exponent.
        lambda_clm: Channel-length modulation [1/V].
        subthreshold_swing_mv: Subthreshold swing [mV/decade].
    """

    is_nmos: bool
    width_um: float
    length_um: float
    vth: float
    k_prime: float
    alpha: float
    lambda_clm: float = 0.08
    subthreshold_swing_mv: float = 90.0

    def __post_init__(self) -> None:
        if self.width_um <= 0.0 or self.length_um <= 0.0:
            raise ValueError("transistor dimensions must be positive")
        if self.vth <= 0.0:
            raise ValueError("threshold voltage must be positive")

    @classmethod
    def nmos(cls, tech: CMOSTechnology, width_um: float, length_um: float = None) -> "TransistorParams":
        """NMOS instance in the given technology."""
        length = length_um if length_um is not None else tech.node_nm * 1e-3
        return cls(
            is_nmos=True,
            width_um=width_um,
            length_um=length,
            vth=tech.vth_n,
            k_prime=tech.k_prime_n,
            alpha=tech.velocity_saturation_alpha,
        )

    @classmethod
    def pmos(cls, tech: CMOSTechnology, width_um: float, length_um: float = None) -> "TransistorParams":
        """PMOS instance in the given technology."""
        length = length_um if length_um is not None else tech.node_nm * 1e-3
        return cls(
            is_nmos=False,
            width_um=width_um,
            length_um=length,
            vth=tech.vth_p,
            k_prime=tech.k_prime_p,
            alpha=tech.velocity_saturation_alpha,
        )

    @property
    def beta(self) -> float:
        """K' * W / L [A/V^alpha]."""
        return self.k_prime * self.width_um / self.length_um

    def saturation_voltage(self, overdrive: float) -> float:
        """V_Dsat for a given gate overdrive [V]."""
        if overdrive <= 0.0:
            return 0.0
        return 0.9 * overdrive ** (self.alpha / 2.0)

    def _effective_overdrive(self, vgs: float) -> float:
        """Smooth overdrive unifying sub- and super-threshold regions.

        v_eff = n ln(1 + exp((V_GS - V_T)/n)) tends to V_GS - V_T far
        above threshold and to n exp((V_GS - V_T)/n) below it, giving a
        single C-infinity I-V whose subthreshold swing is
        ln(10) n / alpha volts per decade.
        """
        n = self.alpha * self.subthreshold_swing_mv * 1e-3 / math.log(10.0) / 1.0
        x = (vgs - self.vth) / n
        if x > 40.0:
            return vgs - self.vth
        return n * math.log1p(math.exp(x))

    def drain_current(self, vgs: float, vds: float) -> float:
        """Drain current I_D(V_GS, V_DS) for NMOS sign conventions [A].

        For PMOS, callers pass source-referred magnitudes (the SPICE
        element handles the sign flips).  V_DS < 0 is mirrored so the
        model is odd in V_DS, which keeps Newton stable if a transient
        briefly reverses a junction.  The smooth effective overdrive
        makes I_D monotone and continuous through threshold — a
        discontinuity there oscillates the Newton loop.
        """
        if vds < 0.0:
            return -self.drain_current(vgs, -vds)
        overdrive = self._effective_overdrive(vgs)
        if overdrive <= 0.0:
            return 0.0
        vdsat = self.saturation_voltage(overdrive)
        i_sat = 0.5 * self.beta * overdrive ** self.alpha
        if vds >= vdsat:
            current = i_sat * (1.0 + self.lambda_clm * (vds - vdsat))
        else:
            ratio = vds / vdsat
            current = i_sat * ratio * (2.0 - ratio)
        # Deep-triode at tiny vds still saturates exponentially in vds
        # below threshold (diffusion current); the parabolic triode law
        # already vanishes linearly, which is adequate at this level.
        return current

    def transconductance(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Numerical g_m = dI/dV_GS [S]."""
        return (
            self.drain_current(vgs + delta, vds) - self.drain_current(vgs - delta, vds)
        ) / (2.0 * delta)

    def output_conductance(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Numerical g_ds = dI/dV_DS [S]."""
        return (
            self.drain_current(vgs, vds + delta) - self.drain_current(vgs, vds - delta)
        ) / (2.0 * delta)

    def gate_capacitance(self, tech: CMOSTechnology) -> float:
        """Total gate capacitance of this instance [F]."""
        return tech.gate_cap_per_um * self.width_um

    def drain_capacitance(self, tech: CMOSTechnology) -> float:
        """Drain junction capacitance of this instance [F]."""
        return tech.drain_cap_per_um * self.width_um
