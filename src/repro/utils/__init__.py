"""Shared utilities: physical constants, unit helpers, math, and tables.

These helpers are deliberately dependency-light so that every other
subpackage (device physics, SPICE substrate, memory estimators, system
simulator) can use them without import cycles.
"""

from repro.utils.constants import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    GYROMAGNETIC_RATIO,
    HBAR,
    MU_0,
    MU_B,
    ROOM_TEMPERATURE,
)
from repro.utils.units import (
    from_oersted,
    to_oersted,
    celsius_to_kelvin,
    kelvin_to_celsius,
    db,
    undb,
)
from repro.utils.mathx import (
    clamp,
    lerp,
    log_interp,
    q_function,
    q_function_inverse,
    smooth_step,
)
from repro.utils.table import Table

__all__ = [
    "BOLTZMANN",
    "ELEMENTARY_CHARGE",
    "GILBERT_GYROMAGNETIC",
    "GYROMAGNETIC_RATIO",
    "HBAR",
    "MU_0",
    "MU_B",
    "ROOM_TEMPERATURE",
    "from_oersted",
    "to_oersted",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "db",
    "undb",
    "clamp",
    "lerp",
    "log_interp",
    "q_function",
    "q_function_inverse",
    "smooth_step",
    "Table",
]
