"""Shared helpers for the stable to_dict()/from_dict() serialisations."""

from dataclasses import fields
from typing import Mapping, Type


def check_known_fields(cls: Type, data: Mapping) -> None:
    """Reject dict keys that are not fields of the target dataclass.

    A typo'd key silently dropped by ``cls(**data)`` defaults would
    poison content-hash cache keys, so every ``from_dict`` validates
    eagerly with a helpful message.

    Raises:
        ValueError: Naming the unknown keys.
    """
    unknown = set(data) - {f.name for f in fields(cls)}
    if unknown:
        raise ValueError(
            "unknown %s keys: %s" % (cls.__name__, sorted(unknown))
        )
