"""Minimal text-table renderer for benchmark and report output.

The paper's evaluation artefacts are tables (Table 1) and series plots
(Figs. 7-9, 11-12).  Benchmarks print the same rows/series in text form;
this class keeps the formatting consistent everywhere.
"""

from typing import Iterable, List, Optional, Sequence


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["node", "latency"])
    >>> t.add_row(["45nm", 4.9])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    node | latency
    -----+--------
    45nm | 4.9
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified with compact float formatting."""
        row = [self._fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                "row has %d cells, table has %d columns" % (len(row), len(self.headers))
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0.0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1e4 or magnitude < 1e-3:
                return "%.3g" % cell
            return "%.4g" % cell
        return str(cell)

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
