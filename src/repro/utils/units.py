"""Unit conversion helpers.

The spintronics literature mixes CGS (Oe, emu) and SI units; the paper
quotes bias fields in kOe ("in the order of half of the effective
perpendicular anisotropy field (~1 kOe)").  All internal computation is
SI (A/m for fields); these helpers convert at the boundary.
"""

import math

#: One oersted expressed in A/m.
OERSTED_IN_A_PER_M = 1e3 / (4.0 * math.pi)


def from_oersted(field_oe: float) -> float:
    """Convert a magnetic field from oersted to A/m."""
    return field_oe * OERSTED_IN_A_PER_M


def to_oersted(field_a_per_m: float) -> float:
    """Convert a magnetic field from A/m to oersted."""
    return field_a_per_m / OERSTED_IN_A_PER_M


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return temp_c + 273.15


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return temp_k - 273.15


def db(ratio: float) -> float:
    """Express a power ratio in decibel."""
    if ratio <= 0.0:
        raise ValueError("power ratio must be positive, got %r" % ratio)
    return 10.0 * math.log10(ratio)


def undb(value_db: float) -> float:
    """Convert a decibel value back to a power ratio."""
    return 10.0 ** (value_db / 10.0)
