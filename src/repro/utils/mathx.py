"""Small math helpers shared across the library."""

import math

from scipy import special


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval [low, high]."""
    if low > high:
        raise ValueError("clamp bounds inverted: low=%r high=%r" % (low, high))
    return max(low, min(high, value))


def lerp(a: float, b: float, t: float) -> float:
    """Linear interpolation between ``a`` and ``b`` with weight ``t``."""
    return a + (b - a) * t


def log_interp(x: float, x0: float, x1: float, y0: float, y1: float) -> float:
    """Interpolate ``y(x)`` assuming y is exponential in x (log-linear).

    Useful for interpolating error rates, which span many decades.
    """
    if y0 <= 0.0 or y1 <= 0.0:
        raise ValueError("log_interp requires positive ordinates")
    if x1 == x0:
        return y0
    t = (x - x0) / (x1 - x0)
    return math.exp(math.log(y0) + t * (math.log(y1) - math.log(y0)))


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P[N(0,1) > x]."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def q_function_inverse(p: float) -> float:
    """Inverse of :func:`q_function`: the sigma multiplier for tail ``p``.

    ``q_function_inverse(1e-15)`` answers "how many sigmas of margin are
    required for a one-in-1e15 failure probability" — the core question
    behind the RER/WER timing-margin analysis of the paper (Fig. 7).
    """
    if not 0.0 < p < 1.0:
        raise ValueError("tail probability must be in (0, 1), got %r" % p)
    return math.sqrt(2.0) * special.erfcinv(2.0 * p)


def smooth_step(edge0: float, edge1: float, x: float) -> float:
    """Hermite smooth step between ``edge0`` and ``edge1``.

    Used by behavioural circuit elements to avoid discontinuous
    conductance jumps that would stall the Newton solver.
    """
    if edge0 == edge1:
        return 0.0 if x < edge0 else 1.0
    t = clamp((x - edge0) / (edge1 - edge0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)
