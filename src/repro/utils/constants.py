"""Physical constants in SI units.

Values follow CODATA 2018.  Only constants actually used by the device
and circuit models are defined; everything is a plain float so the
constants can be used inside numpy expressions without casting.
"""

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Reduced Planck constant [J*s].
HBAR = 1.054571817e-34

#: Vacuum permeability [H/m] (exact value pre-2019 redefinition is fine
#: at compact-model accuracy).
MU_0 = 1.25663706212e-6

#: Bohr magneton [J/T].
MU_B = 9.2740100783e-24

#: Electron gyromagnetic ratio magnitude [rad/(s*T)].
GYROMAGNETIC_RATIO = 1.760859630e11

#: Gyromagnetic ratio conventionally used in LLG with fields in A/m:
#: gamma0 = mu0 * gamma [m/(A*s)].
GILBERT_GYROMAGNETIC = MU_0 * GYROMAGNETIC_RATIO

#: Default ambient temperature for all thermal models [K].
ROOM_TEMPERATURE = 300.0
