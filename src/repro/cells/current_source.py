"""MSS-based programmable current source.

Sec. II: "... feedback using an MSS-based programmable current source,
has also been proposed and will be integrated in the SoC."

Architecture: a bank of N parallel MSS junctions forms a digitally
programmable resistor — each junction contributes conductance G_P or
G_AP depending on its stored state — and a reference voltage across the
bank sets the output current, which a current mirror replicates.  With
binary-weighted junction areas the bank gives 2^N distinct levels.
"""

import math
from dataclasses import dataclass
from typing import List

from repro.core.geometry import PillarGeometry
from repro.core.mtj import MTJTransport
from repro.pdk.kit import ProcessDesignKit


@dataclass
class CurrentSourceLevel:
    """One programmable level of the source.

    Attributes:
        code: Programming code (bit i set = junction i in AP).
        conductance: Bank conductance at the reference bias [S].
        current: Output current [A].
    """

    code: int
    conductance: float
    current: float


class ProgrammableCurrentSource:
    """Programmable current source built from an MSS junction bank.

    Args:
        pdk: The hybrid PDK.
        num_junctions: Bank size N (2^N levels).
        reference_voltage: Voltage regulated across the bank [V].
        binary_weighted: Scale junction areas x1, x2, x4 ... for a
            near-uniform level ladder (True) or use identical junctions
            for a thermometer ladder (False).
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        num_junctions: int = 4,
        reference_voltage: float = 0.2,
        binary_weighted: bool = True,
    ):
        if num_junctions < 1:
            raise ValueError("need at least one junction")
        if not 0.0 < reference_voltage < 0.5:
            raise ValueError("reference voltage should stay in the low-bias regime")
        self.pdk = pdk
        self.reference_voltage = reference_voltage
        self.transports: List[MTJTransport] = []
        base = pdk.memory_pillar
        for i in range(num_junctions):
            scale = math.sqrt(2.0 ** i) if binary_weighted else 1.0
            geometry = PillarGeometry(
                diameter=base.diameter * scale,
                free_layer_thickness=base.free_layer_thickness,
            )
            self.transports.append(MTJTransport(geometry, pdk.barrier))
        self.states = [False] * num_junctions

    @property
    def num_junctions(self) -> int:
        """Bank size."""
        return len(self.transports)

    def program(self, code: int) -> None:
        """Program the bank to a code (bit i set = junction i AP).

        Raises:
            ValueError: If the code does not fit in the bank.
        """
        if not 0 <= code < 2 ** self.num_junctions:
            raise ValueError(
                "code %d out of range for %d junctions" % (code, self.num_junctions)
            )
        self.states = [bool(code & (1 << i)) for i in range(self.num_junctions)]

    def bank_conductance(self) -> float:
        """Present bank conductance at the reference bias [S]."""
        total = 0.0
        for transport, antiparallel in zip(self.transports, self.states):
            total += 1.0 / transport.state_resistance(
                antiparallel, self.reference_voltage
            )
        return total

    def output_current(self) -> float:
        """Present output current = V_ref * G_bank [A]."""
        return self.reference_voltage * self.bank_conductance()

    def levels(self) -> List[CurrentSourceLevel]:
        """Enumerate all programmable levels (restores current state)."""
        saved = list(self.states)
        results = []
        for code in range(2 ** self.num_junctions):
            self.program(code)
            conductance = self.bank_conductance()
            results.append(
                CurrentSourceLevel(
                    code=code,
                    conductance=conductance,
                    current=self.reference_voltage * conductance,
                )
            )
        self.states = saved
        return sorted(results, key=lambda level: level.current)

    def resolution(self) -> float:
        """Smallest step between adjacent sorted levels [A]."""
        levels = self.levels()
        steps = [
            b.current - a.current for a, b in zip(levels, levels[1:])
        ]
        return min(steps) if steps else 0.0

    def dynamic_range(self) -> float:
        """Max/min output current ratio."""
        levels = self.levels()
        low = levels[0].current
        high = levels[-1].current
        return high / low
