"""Sense amplifier for the MRAM read path.

A current-mode sense scheme: the cell branch and a reference branch
(reference resistance = geometric mean of R_P and R_AP, the standard
midpoint reference) are biased identically; their sense-node voltages
diverge according to the stored state and a behavioural comparator
regenerates the difference to full swing.

The comparator is behavioural (smooth tanh) because the paper's flow
also mixes abstraction levels — the characterisation target is the
bit-cell, not the latch internals.
"""

import math
from dataclasses import dataclass

from repro.core.compact import BehavioralMTJModel
from repro.pdk.kit import ProcessDesignKit
from repro.spice.behavioral import BehavioralVoltage
from repro.spice.elements import Capacitor, Pulse, Resistor, VoltageSource
from repro.spice.mosfet import MOSFET
from repro.spice.mtj_element import MTJElement
from repro.spice.netlist import Circuit


@dataclass
class SenseAmpHandles:
    """Handles into a built read-path circuit.

    Attributes:
        circuit: The netlist.
        mtj: The sensed MTJ element.
        output_node: Name of the full-swing comparator output node.
        sense_node: Name of the cell-branch sense node.
        reference_node: Name of the reference-branch sense node.
    """

    circuit: Circuit
    mtj: MTJElement
    output_node: str
    sense_node: str
    reference_node: str


def reference_resistance(pdk: ProcessDesignKit) -> float:
    """Midpoint read reference: sqrt(R_P * R_AP) at the read bias."""
    transport = pdk.mtj_transport()
    read_bias = 0.1
    r_p = transport.state_resistance(False, read_bias)
    r_ap = transport.state_resistance(True, read_bias)
    return math.sqrt(r_p * r_ap)


def build_sense_path(
    pdk: ProcessDesignKit,
    stored_antiparallel: bool,
    read_voltage: float = 0.15,
    sense_enable_delay: float = 0.2e-9,
    read_width: float = 4e-9,
    comparator_gain: float = 60.0,
    sense_node_capacitance: float = 8e-15,
) -> SenseAmpHandles:
    """Build the full differential read path around one bit cell.

    Args:
        pdk: The hybrid PDK.
        stored_antiparallel: State preloaded into the sensed MTJ.
        read_voltage: Bit-line read bias [V].
        sense_enable_delay: Time the read pulse starts [s].
        read_width: Read pulse width [s].
        comparator_gain: Behavioural comparator gain [-].
        sense_node_capacitance: Parasitic on each sense node [F].
    """
    tech = pdk.tech
    vdd = tech.vdd
    width = 4.0 * tech.min_width_um
    circuit = Circuit("sense-path")
    edge = 30e-12
    read_pulse = Pulse(0.0, read_voltage, sense_enable_delay, edge, edge, read_width)
    wl_pulse = Pulse(0.0, vdd, sense_enable_delay, edge, edge, read_width)

    circuit.add(VoltageSource("vread", "vread", "0", read_pulse))
    circuit.add(VoltageSource("vwl", "wl", "0", wl_pulse))

    # Cell branch: bias resistor -> sense node -> MTJ -> access -> gnd.
    bias_r = reference_resistance(pdk)
    circuit.add(Resistor("rbias_cell", "vread", "sense", bias_r))
    model = BehavioralMTJModel(
        pdk.free_layer, pdk.memory_pillar, pdk.barrier,
        initial_antiparallel=stored_antiparallel,
    )
    mtj = circuit.add(MTJElement("mtj", "sense", "mid", model))
    circuit.add(MOSFET("macc", "mid", "wl", "0", pdk.nmos(width)))
    circuit.add(Capacitor("cs", "sense", "0", sense_node_capacitance))

    # Reference branch: matched bias resistor into the midpoint reference.
    circuit.add(Resistor("rbias_ref", "vread", "ref", bias_r))
    circuit.add(Resistor("rref", "ref", "midr", reference_resistance(pdk)))
    circuit.add(MOSFET("maccr", "midr", "wl", "0", pdk.nmos(width)))
    circuit.add(Capacitor("cr", "ref", "0", sense_node_capacitance))

    # Behavioural regenerative comparator: AP (higher R) starves the
    # sense node of current -> v(sense) > v(ref) -> output high = '1'.
    def comparator(voltages):
        difference = voltages["sense"] - voltages["ref"]
        return 0.5 * vdd * (1.0 + math.tanh(comparator_gain * difference / vdd * 20.0))

    circuit.add(
        BehavioralVoltage("xcomp", "dout", "0", ["sense", "ref"], comparator)
    )
    # Regeneration time constant of the latch stage: the behavioural
    # comparator is instantaneous, so a ~150 ps RC models the
    # cross-coupled pair's exponential regeneration to full swing.
    circuit.add(Resistor("rregen", "dout", "out", 15e3))
    circuit.add(Capacitor("cregen", "out", "0", 10e-15))
    return SenseAmpHandles(circuit, mtj, "out", "sense", "ref")
