"""Non-volatile flip-flop (NVFF) standard cell.

One of the MSS-based IPs embedded in the project's first test chip
(Sec. II / Fig. 6).  Architecture: a conventional master-slave latch
augmented with a complementary MTJ pair.  ``store`` writes the latch
state into the pair (one junction P, the other AP); power can then be
removed entirely; ``restore`` precharges the internal nodes and lets
the resistive imbalance of the pair regenerate the stored bit.

The latch logic is modelled at event level (it is plain CMOS and not
the characterisation target); the store path — the part whose energy
and delay depend on the MSS — reuses the analytic switching model, and
the restore decision reuses the transport model, so every number
reported by this cell traces back to device physics.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.compact import BehavioralMTJModel
from repro.pdk.kit import ProcessDesignKit


@dataclass
class NVFFTimings:
    """Characterised timing/energy of one NVFF instance.

    Attributes:
        store_delay: Time to program both MTJs [s].
        store_energy: Energy of the store operation [J].
        restore_delay: Time for the restore regeneration [s].
        restore_energy: Energy of the restore operation [J].
        clock_to_q: Normal-operation CLK->Q delay [s].
        dynamic_energy: Normal-operation energy per clock [J].
        leakage_power: Static power while powered [W].
    """

    store_delay: float
    store_energy: float
    restore_delay: float
    restore_energy: float
    clock_to_q: float
    dynamic_energy: float
    leakage_power: float


class NonVolatileFlipFlop:
    """Behavioural NVFF with physics-backed store/restore.

    Args:
        pdk: The hybrid PDK (sets both CMOS timing and MTJ physics).
        write_current: Current the store drivers push through each
            junction [A]; defaults to 4x the device I_c0 (fast,
            deterministic store).
        target_store_wer: Store is sized for this per-junction WER.
    """

    def __init__(
        self,
        pdk: ProcessDesignKit,
        write_current: Optional[float] = None,
        target_store_wer: float = 1e-9,
    ):
        self.pdk = pdk
        self.switching = pdk.switching_model()
        self.transport = pdk.mtj_transport()
        self.write_current = write_current or 4.0 * self.switching.critical_current
        if self.write_current <= self.switching.critical_current:
            raise ValueError("store current must exceed I_c0")
        self.target_store_wer = target_store_wer
        # Volatile state.
        self.data = False
        self.mtj_true = BehavioralMTJModel(
            pdk.free_layer, pdk.memory_pillar, pdk.barrier, initial_antiparallel=False
        )
        self.mtj_comp = BehavioralMTJModel(
            pdk.free_layer, pdk.memory_pillar, pdk.barrier, initial_antiparallel=True
        )
        self.powered = True

    def clock(self, d: bool) -> bool:
        """Normal synchronous operation: capture D, return Q.

        Raises:
            RuntimeError: If the cell is powered down.
        """
        if not self.powered:
            raise RuntimeError("flip-flop is powered down; restore first")
        self.data = bool(d)
        return self.data

    def store(self) -> float:
        """Program the MTJ pair with the latch state; returns delay [s]."""
        if not self.powered:
            raise RuntimeError("cannot store while powered down")
        pulse = self.switching.pulse_width_for_wer(
            self.target_store_wer, self.write_current
        )
        # True junction: AP encodes '1'; complement junction opposite.
        want_ap = self.data
        for model, target_ap in ((self.mtj_true, want_ap), (self.mtj_comp, not want_ap)):
            if model.state.antiparallel != target_ap:
                direction = -1.0 if target_ap else 1.0
                model.advance(direction * self.write_current, 2.0 * pulse)
        return pulse

    def power_down(self) -> None:
        """Remove power; the volatile latch content is lost."""
        self.powered = False
        self.data = False

    def restore(self) -> bool:
        """Re-power and regenerate the bit from the MTJ pair."""
        self.powered = True
        r_true = self.mtj_true.resistance(0.05)
        r_comp = self.mtj_comp.resistance(0.05)
        self.data = r_true > r_comp  # AP (high R) on the true side = '1'.
        return self.data

    def characterize(self) -> NVFFTimings:
        """Produce the standard-cell datasheet numbers."""
        tech = self.pdk.tech
        pulse = self.switching.pulse_width_for_wer(
            self.target_store_wer, self.write_current
        )
        resistance = self.transport.state_resistance(False, 0.0)
        store_energy_per_mtj = self.switching.write_energy(
            pulse, self.write_current, resistance
        )
        fo4 = tech.gate_delay_fo4
        # Restore: precharge + regenerative sense, a few gate delays.
        restore_delay = 6.0 * fo4
        read_current = 0.2 * self.switching.critical_current
        restore_energy = (
            2.0 * read_current * tech.vdd * restore_delay
        )
        # ~24-transistor cell: rough gate-count-based CMOS numbers.
        gate_cap = tech.gate_cap_per_um * tech.min_width_um * 24.0
        dynamic_energy = gate_cap * tech.vdd * tech.vdd
        leakage = 24.0 * tech.min_width_um * tech.leakage_per_um * tech.vdd
        return NVFFTimings(
            store_delay=pulse,
            store_energy=2.0 * store_energy_per_mtj,
            restore_delay=restore_delay,
            restore_energy=restore_energy,
            clock_to_q=3.0 * fo4,
            dynamic_energy=dynamic_energy,
            leakage_power=leakage,
        )
