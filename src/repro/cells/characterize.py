"""Cell characterisation flow: SPICE + MDL -> cell configuration file.

Fig. 10 (circuit level): "a template file is created for the netlist,
stimulus and Measurement Descriptive Language (MDL) ... the SPICE
simulation generates output measurement file that is then parsed to
extract the required cell level parameters such as switching current,
delay and energy values.  These values are updated into the cell
configuration file of the VAET-STT tool."

:func:`characterize_cell` is that loop: it builds the write and read
testbenches, runs transients, evaluates the MDL script, renders/parses
the measurement file (exactly as the flow diagram shows — the parse
step is real, not vestigial) and assembles a
:class:`repro.cells.cellconfig.CellConfig`.
"""

import math
from dataclasses import dataclass
from typing import Dict

from repro.cells.bitcell import build_write_cell
from repro.cells.cellconfig import CellConfig
from repro.cells.sense_amp import build_sense_path
from repro.pdk.kit import ProcessDesignKit
from repro.spice.analysis import transient
from repro.spice.mdl import CrossEvent, Delay, Expression, MeasurementScript


@dataclass
class CharacterizationSettings:
    """Knobs of the characterisation run.

    Attributes:
        write_pulse_width: Stimulus write pulse width [s].
        write_pulse_delay: Write pulse start [s].
        read_voltage: Read bias [V].
        timestep: Transient step [s].
        sim_margin: Extra simulated time after the pulse [s].
    """

    write_pulse_width: float = 6e-9
    write_pulse_delay: float = 0.5e-9
    read_voltage: float = 0.15
    timestep: float = 20e-12
    sim_margin: float = 2e-9


def _run_write_testbench(
    pdk: ProcessDesignKit, to_antiparallel: bool, settings: CharacterizationSettings
) -> Dict[str, float]:
    handles = build_write_cell(
        pdk,
        write_to_antiparallel=to_antiparallel,
        pulse_delay=settings.write_pulse_delay,
        pulse_width=settings.write_pulse_width,
    )
    driven = "vsl" if to_antiparallel else "vbl"
    stop = settings.write_pulse_delay + settings.write_pulse_width + settings.sim_margin
    result = transient(
        handles.circuit,
        stop_time=stop,
        timestep=settings.timestep,
        record_currents_of=[driven],
    )
    mtj = handles.mtj
    vdd = pdk.tech.vdd

    def switch_time(_):
        if not mtj.switch_log:
            return float("nan")
        return mtj.switch_log[0][0] - settings.write_pulse_delay

    def write_current(waveforms):
        # Average driven-source current while the pulse is solidly high.
        t0 = settings.write_pulse_delay + 0.5e-9
        t1 = settings.write_pulse_delay + min(settings.write_pulse_width, 3e-9)
        return abs(waveforms.trace("i(%s)" % driven).average(t0, t1))

    def write_energy(waveforms):
        t0 = settings.write_pulse_delay
        t1 = settings.write_pulse_delay + settings.write_pulse_width
        charge = waveforms.trace("i(%s)" % driven).integral(t0, t1)
        return abs(charge) * vdd

    script = MeasurementScript(
        [
            Expression("t_switch", switch_time),
            Expression("i_write", write_current),
            Expression("e_write", write_energy),
        ]
    )
    raw = script.run(result.waveforms)
    # Round-trip through the "output measurement file" text format, as
    # in the paper's flow (SPICE output file -> file parser).
    return MeasurementScript.parse_output_file(
        MeasurementScript.render_output_file(raw)
    )


def _run_read_testbench(
    pdk: ProcessDesignKit, settings: CharacterizationSettings
) -> Dict[str, float]:
    vdd = pdk.tech.vdd
    measurements: Dict[str, float] = {}
    for stored_ap in (False, True):
        handles = build_sense_path(
            pdk, stored_antiparallel=stored_ap, read_voltage=settings.read_voltage
        )
        stop = 0.2e-9 + 4e-9
        result = transient(
            handles.circuit,
            stop_time=stop,
            timestep=settings.timestep,
            record_currents_of=["vread"],
        )
        suffix = "ap" if stored_ap else "p"
        # The comparator idles at vdd/2 (sense = ref before the pulse)
        # and regenerates toward vdd for AP ('1') / 0 for P ('0');
        # measure to the 75 %/25 % decision levels.
        target_level = 0.75 * vdd if stored_ap else 0.25 * vdd
        edge = "rise" if stored_ap else "fall"
        script = MeasurementScript(
            [
                Delay(
                    "t_read_%s" % suffix,
                    CrossEvent("v(wl)", 0.5 * vdd, "rise", 1),
                    CrossEvent("v(%s)" % handles.output_node, target_level, edge, 1),
                ),
                Expression(
                    "i_read_%s" % suffix,
                    lambda w: abs(w.trace("i(vread)").average(1e-9, 3e-9)),
                ),
                Expression(
                    "e_read_%s" % suffix,
                    lambda w: abs(w.trace("i(vread)").integral(0.2e-9, 0.2e-9 + 4e-9))
                    * settings.read_voltage,
                ),
            ]
        )
        raw = script.run(result.waveforms)
        measurements.update(
            MeasurementScript.parse_output_file(
                MeasurementScript.render_output_file(raw)
            )
        )
    return measurements


def characterize_cell(
    pdk: ProcessDesignKit, settings: CharacterizationSettings = None
) -> CellConfig:
    """Characterise the 1T-1MTJ bit cell of a PDK.

    Runs both write polarities and both read states; the reported write
    numbers are the worst case of the two polarities (arrays must size
    for the slow direction), read numbers the worst of the two states.
    """
    settings = settings or CharacterizationSettings()
    write_ap = _run_write_testbench(pdk, True, settings)
    write_p = _run_write_testbench(pdk, False, settings)
    reads = _run_read_testbench(pdk, settings)

    transport = pdk.mtj_transport()
    switching = pdk.switching_model()
    tech = pdk.tech

    def worst(key: str) -> float:
        a, b = write_ap[key], write_p[key]
        if math.isnan(a):
            return b
        if math.isnan(b):
            return a
        return max(a, b)

    switching_delay = worst("t_switch")
    write_current = min(write_ap["i_write"], write_p["i_write"])
    write_energy = worst("e_write")
    read_delay = max(reads["t_read_p"], reads["t_read_ap"])
    read_current = max(reads["i_read_p"], reads["i_read_ap"])
    read_energy = max(reads["e_read_p"], reads["e_read_ap"])
    # Bit-cell leakage: one off access transistor.
    leakage = 4.0 * tech.min_width_um * tech.leakage_per_um

    return CellConfig(
        node_nm=tech.node_nm,
        pillar_diameter_nm=pdk.memory_pillar.diameter * 1e9,
        resistance_parallel=transport.state_resistance(False, settings.read_voltage),
        resistance_antiparallel=transport.state_resistance(True, settings.read_voltage),
        switching_current=write_current,
        critical_current=switching.critical_current,
        switching_delay=switching_delay,
        write_pulse_width=settings.write_pulse_width,
        write_energy=write_energy,
        read_current=read_current,
        read_delay=read_delay,
        read_energy=read_energy,
        leakage_current=leakage,
        thermal_stability=switching.stability.delta,
    )
