"""Bidirectional write driver for the MRAM write path.

The driver is two half-bridges (one per line) built from sized CMOS
inverters: DATA selects which line is pulled to Vdd and which to
ground, EN gates the pulse.  Characterising the cell *with* its driver
captures the source-degeneration effect of the pull-up on the delivered
write current — the dominant cell-level consequence of CMOS variation
(Sec. III).
"""

from dataclasses import dataclass

from repro.core.compact import BehavioralMTJModel
from repro.pdk.kit import ProcessDesignKit
from repro.spice.elements import Capacitor, DC, Pulse, VoltageSource
from repro.spice.mosfet import MOSFET
from repro.spice.mtj_element import MTJElement
from repro.spice.netlist import Circuit

#: Driver transistor width relative to minimum (write drivers are big).
DRIVER_WIDTH_FACTOR = 12.0


@dataclass
class WriteDriverHandles:
    """Handles into the driver + cell write circuit.

    Attributes:
        circuit: The netlist.
        mtj: The written MTJ element.
        supply: The Vdd source (for energy measurement).
    """

    circuit: Circuit
    mtj: MTJElement
    supply: VoltageSource


def build_driver_write_path(
    pdk: ProcessDesignKit,
    write_to_antiparallel: bool,
    pulse_delay: float = 0.5e-9,
    pulse_width: float = 6e-9,
    bitline_capacitance: float = 25e-15,
    vth_shift_n: float = 0.0,
    k_prime_scale: float = 1.0,
) -> WriteDriverHandles:
    """Build the full write path: half-bridges, lines, access, MTJ.

    Args:
        pdk: The hybrid PDK.
        write_to_antiparallel: Target MTJ state.
        pulse_delay: Enable pulse start [s].
        pulse_width: Enable pulse width [s].
        bitline_capacitance: Lumped line loads [F].
        vth_shift_n: Additive NMOS threshold shift [V] — the Monte-Carlo
            hook used by VAET-STT's circuit-level sampling.
        k_prime_scale: Multiplicative transconductance factor (ditto).
    """
    from dataclasses import replace

    tech = pdk.tech
    vdd = tech.vdd
    width = DRIVER_WIDTH_FACTOR * tech.min_width_um
    nmos = pdk.nmos(width)
    pmos = pdk.pmos(2.0 * width)
    if vth_shift_n != 0.0 or k_prime_scale != 1.0:
        nmos = replace(
            nmos, vth=nmos.vth + vth_shift_n, k_prime=nmos.k_prime * k_prime_scale
        )
        pmos = replace(pmos, k_prime=pmos.k_prime * k_prime_scale)

    circuit = Circuit("write-driver-%s" % ("ap" if write_to_antiparallel else "p"))
    supply = circuit.add(VoltageSource("vdd", "vdd", "0", DC(vdd)))
    edge = 50e-12
    # Gate drive signals: when writing P, BL side pulls high; writing AP,
    # SL side pulls high.  Implemented as pre-computed gate waveforms
    # (the upstream decode logic is not the characterisation target).
    pulse_high = Pulse(vdd, 0.0, pulse_delay, edge, edge, pulse_width)  # active-low gate
    hold_low = DC(vdd)
    if write_to_antiparallel:
        bl_gate, sl_gate = hold_low, pulse_high
    else:
        bl_gate, sl_gate = pulse_high, hold_low
    circuit.add(VoltageSource("vgbl", "gbl", "0", bl_gate))
    circuit.add(VoltageSource("vgsl", "gsl", "0", sl_gate))

    # Half-bridge on BL: PMOS pulls up when gbl low, NMOS pulls down when
    # gbl low is inactive (gate = inverted enable -> reuse same signal:
    # the NMOS gate is driven by the complementary line's activity).
    circuit.add(MOSFET("mpbl", "bl", "gbl", "vdd", pmos))
    circuit.add(MOSFET("mnbl", "bl", "gsl_inv", "0", nmos))
    circuit.add(MOSFET("mpsl", "sl", "gsl", "vdd", pmos))
    circuit.add(MOSFET("mnsl", "sl", "gbl_inv", "0", nmos))
    # Complement signals (ideal inverters as sources keep the netlist
    # focused on the power path).
    inv = lambda wave: _Inverted(wave, vdd)
    circuit.add(VoltageSource("vgblb", "gbl_inv", "0", inv(bl_gate)))
    circuit.add(VoltageSource("vgslb", "gsl_inv", "0", inv(sl_gate)))

    circuit.add(Capacitor("cbl", "bl", "0", bitline_capacitance))
    circuit.add(Capacitor("csl", "sl", "0", bitline_capacitance))

    model = BehavioralMTJModel(
        pdk.free_layer, pdk.memory_pillar, pdk.barrier,
        initial_antiparallel=not write_to_antiparallel,
    )
    mtj = circuit.add(MTJElement("mtj", "bl", "mid", model))
    access = pdk.nmos(4.0 * tech.min_width_um)
    if vth_shift_n != 0.0 or k_prime_scale != 1.0:
        access = replace(
            access, vth=access.vth + vth_shift_n, k_prime=access.k_prime * k_prime_scale
        )
    circuit.add(
        VoltageSource(
            "vwl", "wl", "0",
            Pulse(0.0, vdd, pulse_delay - 0.2e-9, edge, edge, pulse_width + 0.6e-9),
        )
    )
    circuit.add(MOSFET("macc", "mid", "wl", "sl", access))
    return WriteDriverHandles(circuit, mtj, supply)


class _Inverted:
    """Waveform adapter: vdd - w(t)."""

    def __init__(self, waveform, vdd: float):
        self._waveform = waveform
        self._vdd = vdd

    def value(self, time: float) -> float:
        return self._vdd - self._waveform.value(time)
