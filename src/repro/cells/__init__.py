"""MSS standard/periphery cells and the characterisation flow."""

from repro.cells.bitcell import (
    ACCESS_WIDTH_FACTOR,
    BitCellHandles,
    build_read_cell,
    build_write_cell,
)
from repro.cells.sense_amp import SenseAmpHandles, build_sense_path, reference_resistance
from repro.cells.write_driver import (
    DRIVER_WIDTH_FACTOR,
    WriteDriverHandles,
    build_driver_write_path,
)
from repro.cells.nvff import NonVolatileFlipFlop, NVFFTimings
from repro.cells.current_source import CurrentSourceLevel, ProgrammableCurrentSource
from repro.cells.cellconfig import CellConfig
from repro.cells.characterize import CharacterizationSettings, characterize_cell

__all__ = [
    "ACCESS_WIDTH_FACTOR",
    "BitCellHandles",
    "build_read_cell",
    "build_write_cell",
    "SenseAmpHandles",
    "build_sense_path",
    "reference_resistance",
    "DRIVER_WIDTH_FACTOR",
    "WriteDriverHandles",
    "build_driver_write_path",
    "NonVolatileFlipFlop",
    "NVFFTimings",
    "CurrentSourceLevel",
    "ProgrammableCurrentSource",
    "CellConfig",
    "CharacterizationSettings",
    "characterize_cell",
]
