"""The cell configuration file exchanged between flow stages.

Fig. 10: "These values are updated into the cell configuration file of
the VAET-STT tool."  :class:`CellConfig` is that file: the electrical
summary of one characterised 1T-1MTJ bit cell, serialisable to the flat
``key = value`` text format the MAGPIE file parsers consume.
"""

from dataclasses import asdict, dataclass, fields


@dataclass
class CellConfig:
    """Characterised bit-cell parameters consumed by VAET-STT.

    Attributes:
        node_nm: CMOS technology node [nm].
        pillar_diameter_nm: MTJ pillar diameter [nm].
        resistance_parallel: R_P at read bias [ohm].
        resistance_antiparallel: R_AP at read bias [ohm].
        switching_current: Write current delivered to the MTJ [A].
        critical_current: Device I_c0 [A].
        switching_delay: Mean cell switching time at the write current [s].
        write_pulse_width: Programmed write pulse width [s].
        write_energy: Energy of one cell write event [J].
        read_current: Cell read current [A].
        read_delay: Cell-level read (bitline + sense) delay [s].
        read_energy: Energy of one cell read event [J].
        leakage_current: Bit-cell leakage at nominal Vdd [A].
        thermal_stability: Device Delta at 300 K [-].
    """

    node_nm: int
    pillar_diameter_nm: float
    resistance_parallel: float
    resistance_antiparallel: float
    switching_current: float
    critical_current: float
    switching_delay: float
    write_pulse_width: float
    write_energy: float
    read_current: float
    read_delay: float
    read_energy: float
    leakage_current: float
    thermal_stability: float

    def render(self) -> str:
        """Render the flat text cell-config format."""
        lines = ["* VAET-STT cell configuration"]
        for field_info in fields(self):
            value = getattr(self, field_info.name)
            lines.append("%s = %r" % (field_info.name, value))
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "CellConfig":
        """Parse the text format back into a config.

        Raises:
            ValueError: On malformed lines or missing keys.
        """
        values = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("*"):
                continue
            if "=" not in line:
                raise ValueError("malformed cell-config line: %r" % line)
            key, _, raw = line.partition("=")
            values[key.strip()] = raw.strip()
        kwargs = {}
        for field_info in fields(cls):
            if field_info.name not in values:
                raise ValueError("cell config missing key %r" % field_info.name)
            raw = values[field_info.name]
            kwargs[field_info.name] = (
                int(raw) if field_info.type == "int" else float(raw)
            )
        return cls(**kwargs)

    def tmr(self) -> float:
        """Effective TMR at the read point."""
        return (self.resistance_antiparallel - self.resistance_parallel) / (
            self.resistance_parallel
        )

    def as_dict(self) -> dict:
        """Plain-dict view (for report tables)."""
        return asdict(self)
