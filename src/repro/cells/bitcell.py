"""1T-1MTJ bit cell netlists.

The standard STT-MRAM bit cell: one NMOS access transistor in series
with the MSS pillar between bit line (BL) and source line (SL), gated
by the word line (WL).  Write '1' (AP) drives SL high / BL low; write
'0' (P) drives BL high / SL low.  Read applies a small BL bias and
senses the cell current.

Builders return the circuit plus handles to the interesting elements so
the characterisation flow (:mod:`repro.cells.characterize`) can attach
measurements.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.compact import BehavioralMTJModel
from repro.pdk.kit import ProcessDesignKit
from repro.spice.elements import Capacitor, DC, Pulse, VoltageSource
from repro.spice.mosfet import MOSFET
from repro.spice.mtj_element import MTJElement
from repro.spice.netlist import Circuit

#: Access transistor width relative to minimum width.
ACCESS_WIDTH_FACTOR = 4.0


@dataclass
class BitCellHandles:
    """Handles into a built bit-cell circuit.

    Attributes:
        circuit: The netlist.
        mtj: The MTJ element.
        access: The access transistor.
        bl_source: Bit-line driver source.
        sl_source: Source-line driver source.
        wl_source: Word-line driver source.
    """

    circuit: Circuit
    mtj: MTJElement
    access: MOSFET
    bl_source: VoltageSource
    sl_source: VoltageSource
    wl_source: VoltageSource


def _make_mtj(pdk: ProcessDesignKit, initial_antiparallel: bool) -> MTJElement:
    model = BehavioralMTJModel(
        pdk.free_layer,
        pdk.memory_pillar,
        pdk.barrier,
        initial_antiparallel=initial_antiparallel,
    )
    return MTJElement("mtj", "bl", "mid", model)


def build_write_cell(
    pdk: ProcessDesignKit,
    write_to_antiparallel: bool,
    pulse_delay: float = 0.5e-9,
    pulse_width: float = 6e-9,
    access_width_um: Optional[float] = None,
    bitline_capacitance: float = 25e-15,
) -> BitCellHandles:
    """Build a bit cell wired for a write transient.

    Args:
        pdk: The hybrid PDK.
        write_to_antiparallel: Target state; AP needs current from the
            free-layer side (SL high), P the opposite.
        pulse_delay: Write pulse start time [s].
        pulse_width: Write pulse width [s].
        access_width_um: Access transistor width; defaults to
            ``ACCESS_WIDTH_FACTOR`` x minimum width.
        bitline_capacitance: Lumped BL/SL wire load [F].
    """
    tech = pdk.tech
    vdd = tech.vdd
    width = access_width_um or ACCESS_WIDTH_FACTOR * tech.min_width_um
    circuit = Circuit("bitcell-write-%s" % ("ap" if write_to_antiparallel else "p"))
    edge = 50e-12
    high_pulse = Pulse(0.0, vdd, pulse_delay, edge, edge, pulse_width)
    # Writing AP (P -> AP) needs electron flow from free layer, i.e.
    # conventional current from SL through the cell into BL.
    if write_to_antiparallel:
        bl_wave, sl_wave = DC(0.0), high_pulse
    else:
        bl_wave, sl_wave = high_pulse, DC(0.0)
    bl = circuit.add(VoltageSource("vbl", "bl", "0", bl_wave))
    sl = circuit.add(VoltageSource("vsl", "sl", "0", sl_wave))
    wl = circuit.add(
        VoltageSource("vwl", "wl", "0", Pulse(0.0, vdd, pulse_delay - 0.2e-9, edge, edge, pulse_width + 0.6e-9))
    )
    # The MTJ free-layer terminal faces the bit line; current BL -> SL
    # (positive MTJ current) favours AP -> P.
    mtj = circuit.add(
        _make_mtj(pdk, initial_antiparallel=not write_to_antiparallel)
    )
    access = circuit.add(MOSFET("macc", "mid", "wl", "sl", pdk.nmos(width)))
    circuit.add(Capacitor("cbl", "bl", "0", bitline_capacitance))
    circuit.add(Capacitor("csl", "sl", "0", bitline_capacitance))
    return BitCellHandles(circuit, mtj, access, bl, sl, wl)


def build_read_cell(
    pdk: ProcessDesignKit,
    stored_antiparallel: bool,
    read_voltage: float = 0.08,
    pulse_delay: float = 0.2e-9,
    read_width: float = 4e-9,
    access_width_um: Optional[float] = None,
    bitline_capacitance: float = 25e-15,
) -> BitCellHandles:
    """Build a bit cell wired for a read transient.

    A small read bias is applied to BL (small enough to keep read
    disturb acceptable — Fig. 9's trade-off); SL is grounded; the cell
    current discharges/charges the bitline capacitance and the sense
    stage (added by the characterisation flow) resolves the state.
    """
    tech = pdk.tech
    vdd = tech.vdd
    width = access_width_um or ACCESS_WIDTH_FACTOR * tech.min_width_um
    circuit = Circuit("bitcell-read-%s" % ("ap" if stored_antiparallel else "p"))
    edge = 30e-12
    bl = circuit.add(
        VoltageSource(
            "vbl", "bl", "0", Pulse(0.0, read_voltage, pulse_delay, edge, edge, read_width)
        )
    )
    sl = circuit.add(VoltageSource("vsl", "sl", "0", DC(0.0)))
    wl = circuit.add(
        VoltageSource("vwl", "wl", "0", Pulse(0.0, vdd, pulse_delay, edge, edge, read_width))
    )
    mtj = circuit.add(_make_mtj(pdk, initial_antiparallel=stored_antiparallel))
    access = circuit.add(MOSFET("macc", "mid", "wl", "sl", pdk.nmos(width)))
    circuit.add(Capacitor("cbl", "bl", "0", bitline_capacitance))
    return BitCellHandles(circuit, mtj, access, bl, sl, wl)
