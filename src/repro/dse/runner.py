"""Campaign execution: worker pool, chunking, seeding, failure isolation.

The runner turns a list of :class:`~repro.dse.jobs.Job` into
:class:`~repro.dse.jobs.JobResult` records:

* **cache first** — keys already in the :class:`ResultCache` are served
  without touching a worker;
* **deduplication** — identical jobs submitted twice in one campaign
  evaluate once;
* **parallelism** — misses fan out through a pluggable
  :class:`~repro.dse.executors.Executor` (default: a ``multiprocessing``
  pool in chunks; workers=1 degenerates to an in-process serial loop,
  which the legacy sweep wrappers use to reproduce historic outputs
  exactly; ``executor="worker-pull"`` hands the points to independent
  worker processes that may live on other hosts);
* **streaming** — :meth:`CampaignRunner.run_iter` yields results as
  they complete (``imap_unordered`` under the hood), so checkpoints and
  progress displays see every point the moment it lands instead of
  after the whole batch;
* **determinism** — every job carries a seed derived from its content
  hash, so worker assignment and execution order cannot change results;
* **failure isolation** — an evaluator exception becomes an error
  record on that one point; the campaign completes;
* **budgeted retries** — with a :class:`~repro.dse.retry.RetryPolicy`,
  failed points re-run with reseeded RNG streams (in backoff-batched
  rounds) before their failure is final.

Evaluator functions are registered by name (the job's ``target``) so the
payload shipped to workers is plain picklable data.
"""

import importlib
import json
import os
import select
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.dse import chaos
from repro.dse.cache import ResultCache
from repro.dse.jobs import Job, JobResult
from repro.dse.retry import RetryPolicy

#: Called once per scheduled retry: (job, failed_attempt, error, backoff).
RetryCallback = Callable[[Job, int, Optional[str], float], None]

#: Environment variable bounding the default pool size (CI runners and
#: laptops want deterministic small pools without touching call sites).
WORKERS_ENV = "REPRO_DSE_WORKERS"

#: Built-in target names (evaluators live in ``repro.dse.campaign``).
MEMORY_TARGET = "vaet-memory"
SYSTEM_TARGET = "magpie-system"

#: name -> fn(spec, seed) -> result dict.
_TARGETS: Dict[str, Callable[[Mapping, int], Dict]] = {}

#: name -> fn(specs, seeds) -> [Outcome, ...] (one per point, in order).
_BATCH_TARGETS: Dict[str, Callable] = {}

#: name -> default per-evaluation deadline [s] (0 = unbounded); the
#: lowest-precedence source of a job's effective deadline (job field,
#: then runner setting, then this registry).
_TARGET_DEADLINES: Dict[str, float] = {}

#: Error-string prefix identifying a reaped (timed-out) evaluation.
TIMEOUT_ERROR = "EvaluationTimeout"


def timeout_error(deadline: float) -> str:
    """The canonical error string for a reaped evaluation."""
    return "%s: evaluation exceeded its %.6gs deadline" % (
        TIMEOUT_ERROR, deadline
    )


def is_timeout_error(error: Optional[str]) -> bool:
    """True if a failure record's error marks a deadline timeout."""
    return bool(error) and error.startswith(TIMEOUT_ERROR)


def register_target(
    name: str,
    fn: Callable[[Mapping, int], Dict],
    deadline: Optional[float] = None,
) -> None:
    """Register an evaluator under a target name (idempotent overwrite).

    Registrations live in the registering process only.  Under the
    ``fork`` start method workers inherit them; on ``spawn`` platforms
    (macOS/Windows defaults) use a module-qualified target name of the
    form ``"pkg.module:function"`` instead — workers import it
    themselves, no registration needed.

    Args:
        deadline: Optional default per-evaluation deadline [s] for this
            target, used when neither the job nor the runner sets one
            (see :func:`get_target_deadline`).
    """
    _TARGETS[name] = fn
    if deadline is not None:
        if deadline < 0:
            raise ValueError("deadline must be >= 0")
        _TARGET_DEADLINES[name] = float(deadline)


def get_target_deadline(name: str) -> float:
    """Default deadline registered for a target (0.0 = unbounded)."""
    return _TARGET_DEADLINES.get(name, 0.0)


def get_target(name: str) -> Callable[[Mapping, int], Dict]:
    """Resolve a target, importing the built-in evaluators on demand.

    ``"pkg.module:function"`` names are imported dynamically (and
    memoised), so they resolve in any worker regardless of the
    multiprocessing start method.

    Raises:
        KeyError: If the name is not registered and not importable.
    """
    if name not in _TARGETS:
        # Built-ins register at campaign/executors import; spawned
        # workers start with an empty registry, so resolve lazily here.
        import repro.dse.campaign  # noqa: F401
        import repro.dse.executors  # noqa: F401

    if name not in _TARGETS and ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            _TARGETS[name] = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise KeyError("cannot import target %r: %s" % (name, exc))
    if name not in _TARGETS:
        raise KeyError(
            "unknown target %r; registered: %s" % (name, sorted(_TARGETS))
        )
    return _TARGETS[name]


def register_batch_target(name: str, fn: Callable) -> None:
    """Register a batched evaluator twin for a target name.

    ``fn(specs, seeds)`` receives aligned lists and must return one
    :data:`Outcome` tuple ``(ok, result, error, elapsed)`` per point,
    in order — isolating per-point failures itself so one bad spec
    never takes its chunk-mates down.  The scalar target stays the
    semantic reference: a batch twin must produce identical results
    for identical (spec, seed) pairs, it only amortises shared setup.
    """
    _BATCH_TARGETS[name] = fn


def get_batch_target(name: str) -> Optional[Callable]:
    """Resolve a batched evaluator, or None if the target has no twin.

    Unlike :func:`get_target` this never raises — batching is an
    optimisation, and a missing twin simply means the chunk falls back
    to one-at-a-time evaluation.
    """
    if name not in _BATCH_TARGETS:
        import repro.dse.campaign  # noqa: F401  (registers built-ins)
        import repro.dse.executors  # noqa: F401
    return _BATCH_TARGETS.get(name)


def isolated_call(
    fn: Callable[[Mapping, int], Dict], spec: Mapping, seed: int
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Run one evaluation under the standard failure isolation.

    The building block batch evaluators use per point, so their
    outcome tuples (error formatting included) are indistinguishable
    from the scalar :func:`_execute` path.
    """
    start = time.perf_counter()
    try:
        return (True, fn(spec, seed), None, time.perf_counter() - start)
    except Exception as exc:
        error = "%s: %s\n%s" % (
            type(exc).__name__, exc, traceback.format_exc()
        )
        return (False, None, error, time.perf_counter() - start)


def _execute_plain(
    payload: Tuple[str, Dict, int]
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Run one evaluation in-process, never raise."""
    target, spec, seed = payload
    start = time.perf_counter()
    try:
        chaos.fire("evaluate", target=target, seed=seed)
        result = get_target(target)(spec, seed)
        return (True, result, None, time.perf_counter() - start)
    except Exception as exc:  # isolation: one bad point != dead campaign
        # The original exception cannot cross the process boundary
        # reliably; keep its type, message and frames as text.
        error = "%s: %s\n%s" % (
            type(exc).__name__, exc, traceback.format_exc()
        )
        return (False, None, error, time.perf_counter() - start)


def _execute_under_deadline(
    payload: Tuple[str, Dict, int], deadline: float
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Run one evaluation under a hard wall-clock deadline.

    The point runs in a forked child (a raw ``os.fork`` — pool workers
    are daemonic and may not start ``multiprocessing`` children) that
    reports its outcome over a pipe; a child still running at the
    deadline is SIGKILLed and the point recorded as a
    :data:`TIMEOUT_ERROR` failure.  Platforms without ``fork`` degrade
    gracefully: the point runs unbounded in-process (the pull/network
    heartbeat cutoff still expires the lease in that case).
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX fallback
        return _execute_plain(payload)
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child: evaluate, report, _exit (no parent cleanup)
        os.close(read_fd)
        code = 0
        try:
            outcome = _execute_plain(payload)
            data = json.dumps(outcome).encode("utf-8")
            while data:
                data = data[os.write(write_fd, data):]
        except BaseException:
            code = 1
        finally:
            os._exit(code)
    os.close(write_fd)
    start = time.perf_counter()
    buf = b""
    timed_out = False
    try:
        while True:
            remaining = deadline - (time.perf_counter() - start)
            if remaining <= 0:
                timed_out = True
                break
            ready, _, _ = select.select([read_fd], [], [], remaining)
            if not ready:
                timed_out = True
                break
            chunk = os.read(read_fd, 65536)
            if not chunk:
                break
            buf += chunk
    finally:
        os.close(read_fd)
        if timed_out:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # already gone
                pass
        try:
            os.waitpid(pid, 0)
        except OSError:  # reaped elsewhere
            pass
    elapsed = time.perf_counter() - start
    if timed_out:
        return (False, None, timeout_error(deadline), elapsed)
    try:
        ok, result, error, child_elapsed = json.loads(buf.decode("utf-8"))
        return (bool(ok), result, error, float(child_elapsed))
    except Exception:
        return (
            False, None,
            "EvaluationCrashed: deadline child exited without an outcome",
            elapsed,
        )


def _execute(
    payload: Tuple
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Worker entry: run one evaluation, never raise.

    ``payload`` is ``(target, spec, seed)`` with an optional fourth
    ``deadline`` element; a positive deadline runs the point under the
    reaper (:func:`_execute_under_deadline`).
    """
    deadline = float(payload[3]) if len(payload) > 3 and payload[3] else 0.0
    core = (payload[0], payload[1], payload[2])
    if deadline > 0:
        return _execute_under_deadline(core, deadline)
    return _execute_plain(core)


def _execute_indexed(
    payload: Tuple
) -> Tuple[int, Tuple[bool, Optional[Dict], Optional[str], float]]:
    """Worker entry for unordered maps: echo the submission index back."""
    return payload[0], _execute(payload[1:])


def execute_task(
    task: Dict,
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Evaluate one published task record (never raises).

    The shared evaluation entry for pull-style workers: both the
    filesystem worker (``run_worker``) and the network worker client
    receive the same task payload (``target``/``spec``/``seed`` and an
    optional ``deadline``, as written by :meth:`WorkQueue.publish`) and
    must produce the same :data:`Outcome` tuple for it.  A task's
    deadline is enforced here too — a pull/network worker
    self-terminates a stuck evaluation instead of hanging forever.
    """
    return _execute((
        task["target"], task["spec"], int(task["seed"]),
        float(task.get("deadline") or 0.0),
    ))


def _execute_batch(
    payloads: Sequence[Tuple]
) -> List[Tuple[bool, Optional[Dict], Optional[str], float]]:
    """Evaluate a chunk of payloads, preferring the batched twin.

    Mixed-target chunks, targets without a batch twin, and *any*
    misbehaviour of the twin itself (raising, wrong result count,
    malformed outcomes) fall back to the scalar :func:`_execute` per
    point — batching may only ever change wall-clock, never outcomes.
    Chunks carrying a deadline always take the scalar path: the reaper
    bounds each point individually, and a chunk-level kill could change
    the outcome of a chunk-mate (batching must never do that).
    """
    payloads = list(payloads)
    if not payloads:
        return []
    target = payloads[0][0]
    has_deadline = any(len(item) > 3 and item[3] for item in payloads)
    batch_fn = (
        get_batch_target(target)
        if not has_deadline and all(item[0] == target for item in payloads)
        else None
    )
    if batch_fn is not None:
        try:
            outcomes = [
                tuple(outcome)
                for outcome in batch_fn(
                    [item[1] for item in payloads],
                    [item[2] for item in payloads],
                )
            ]
            if len(outcomes) == len(payloads) and all(
                len(outcome) == 4 for outcome in outcomes
            ):
                return outcomes
        except Exception:
            pass
    return [_execute(item) for item in payloads]


def _execute_batch_indexed(
    payload: Tuple[Tuple[int, ...], List[Tuple[str, Dict, int]]]
) -> Tuple[
    Tuple[int, ...],
    List[Tuple[bool, Optional[Dict], Optional[str], float]],
]:
    """Worker entry for unordered batched maps: echo the indices back."""
    return payload[0], _execute_batch(payload[1])


def execute_batch_tasks(
    tasks: Sequence[Dict],
) -> List[Tuple[bool, Optional[Dict], Optional[str], float]]:
    """Evaluate a claimed chunk of task records (never raises).

    The batched sibling of :func:`execute_task` for pull-style workers
    that lease several tasks per round trip.
    """
    return _execute_batch([
        (
            task["target"], task["spec"], int(task["seed"]),
            float(task.get("deadline") or 0.0),
        )
        for task in tasks
    ])


def default_workers() -> int:
    """Default pool size: ``REPRO_DSE_WORKERS`` if set, else CPU count.

    Raises:
        ValueError: If the environment override is not a positive int.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return os.cpu_count() or 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            "%s must be a positive integer, got %r" % (WORKERS_ENV, raw)
        )
    if workers < 1:
        raise ValueError(
            "%s must be a positive integer, got %r" % (WORKERS_ENV, raw)
        )
    return workers


#: Throughput window for :attr:`Progress.rate`: the dispatch-start seed
#: sample plus the most recent evaluated completions.  Wide enough to
#: smooth per-point jitter, narrow enough that ETA tracks drift (slow
#: tail points, workers joining or dying) instead of the run-start mean.
ETA_WINDOW = 33


@dataclass
class Progress:
    """Snapshot of a streaming run, passed to the progress callback.

    The callback receives a fresh snapshot after every completed point
    (cache hits included), so a display or checkpoint layer never waits
    on the batch.

    Attributes:
        total: Points submitted to this run.
        done: Points completed so far (cached + evaluated).
        cached: Completions served from the result cache.
        failed: Completions whose evaluator raised.
        elapsed: Wall-clock since the run started [s].
        rate: Evaluated completions per second over the most recent
            :data:`ETA_WINDOW` window (0.0 until measurable).  Measured
            at the runner, so it already reflects parallelism — with 4
            workers it is ~4x a single worker's rate.
    """

    total: int
    done: int = 0
    cached: int = 0
    failed: int = 0
    elapsed: float = 0.0
    rate: float = 0.0

    @property
    def evaluated(self) -> int:
        """Points that actually ran an evaluator."""
        return self.done - self.cached

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def eta(self) -> Optional[float]:
        """Estimated seconds to completion: ``remaining / rate``.

        None until the window has a measurable completion rate.  The
        windowed rate fixes the failure modes of the historic
        ``elapsed / evaluated * remaining`` extrapolation: wall time
        spent before dispatch — scanning the cache and streaming hits
        to the progress consumer — sat in ``elapsed`` and inflated the
        estimate (a mostly-warm resume could report an ETA many times
        the true remaining time), and throughput drift mid-run (pull
        workers joining or dying) was averaged away by the run-start
        mean instead of being tracked.
        """
        if self.remaining == 0:
            return 0.0
        if self.rate > 0:
            return self.remaining / self.rate
        return None


#: Signature of the progress hook: called with a Progress snapshot.
ProgressCallback = Callable[[Progress], None]


class CampaignRunner:
    """Cached, chunked, parallel job executor.

    Args:
        workers: Pool size; ``None`` uses ``REPRO_DSE_WORKERS`` when
            set, else the CPU count; ``1`` runs serially in-process
            (no pool, no pickling).
        cache: Optional :class:`ResultCache`; hits skip evaluation,
            successful results are written back.
        chunksize: Pool chunk size; default balances ~4 chunks per
            worker to amortise dispatch without starving the pool.
        executor: Optional :class:`~repro.dse.executors.Executor`
            instance overriding the built-in choice (serial loop for
            ``workers=1`` or single-job batches, process pool
            otherwise).  The runner's cache/retry/progress semantics
            are identical under every executor.
        batch_size: Evaluate up to this many points per worker
            invocation through the target's registered batch twin
            (see :func:`register_batch_target`).  A scheduling hint
            only — it is excluded from job keys and campaign
            signatures, and targets without a twin silently fall back
            to per-point evaluation.  ``None``/``0``/``1`` disable
            batching (the historic behaviour).
        deadline: Per-evaluation wall-clock budget [s] applied to every
            job that does not set its own ``Job.deadline``; ``None``/
            ``0`` fall through to the per-target registry default
            (:func:`get_target_deadline`).  Enforced on every executor:
            serial/pool points run under a kill-on-expiry reaper,
            pull/network workers self-terminate the evaluation and stop
            heartbeating so the lease lawfully expires.  A reaped point
            fails with an :data:`TIMEOUT_ERROR` error and is retried/
            quarantined by the :class:`~repro.dse.retry.RetryPolicy`
            like any other failure.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        executor=None,
        batch_size: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size is not None and batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0")
        self.workers = workers if workers is not None else default_workers()
        self.cache = cache
        self.chunksize = chunksize
        self.executor = executor
        self.batch_size = int(batch_size or 0)
        self.deadline = float(deadline or 0.0)

    def with_executor(self, executor) -> "CampaignRunner":
        """A runner sharing this one's cache/sizing but another executor."""
        return CampaignRunner(
            workers=self.workers,
            cache=self.cache,
            chunksize=self.chunksize,
            executor=executor,
            batch_size=self.batch_size,
            deadline=self.deadline,
        )

    def effective_deadline(self, job: Job) -> float:
        """The deadline this runner enforces for ``job`` (0 = none).

        Precedence: the job's own ``deadline`` field, then the runner's
        ``deadline`` setting, then the target's registry default.
        """
        if job.deadline:
            return job.deadline
        if self.deadline:
            return self.deadline
        return get_target_deadline(job.target)

    def run(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        retry_offsets: Optional[Mapping[str, int]] = None,
        on_retry: Optional[RetryCallback] = None,
    ) -> List[JobResult]:
        """Execute jobs, returning results aligned with the input order."""
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        for index, outcome in self._iter_indexed(
            jobs, progress, retry, retry_offsets, on_retry
        ):
            results[index] = outcome
        return results  # type: ignore[return-value]

    def run_iter(
        self,
        jobs: Sequence[Job],
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        retry_offsets: Optional[Mapping[str, int]] = None,
        on_retry: Optional[RetryCallback] = None,
    ) -> Iterator[JobResult]:
        """Yield one :class:`JobResult` per job, in completion order.

        Cache hits stream out first; evaluated points follow as workers
        finish them (``imap_unordered``), not when the batch does.
        Successful results are written to the cache *before* they are
        yielded, so a consumer killed mid-iteration loses at most the
        in-flight points — everything already yielded is durable.

        Duplicate jobs yield one result each (evaluated once).

        Args:
            retry: Optional :class:`~repro.dse.retry.RetryPolicy` — a
                failed point re-runs with a reseeded RNG until it
                succeeds or its invocation budget is spent; only the
                final outcome is yielded (with ``attempts`` set).
            retry_offsets: Job key -> invocations already spent (from a
                journal), charged against the budget.
            on_retry: Callback fired once per scheduled retry with
                ``(job, failed_attempt, error, backoff_seconds)`` —
                the checkpoint layer journals these.
        """
        for _, outcome in self._iter_indexed(
            list(jobs), progress, retry, retry_offsets, on_retry
        ):
            yield outcome

    def _iter_indexed(
        self,
        jobs: List[Job],
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        retry_offsets: Optional[Mapping[str, int]] = None,
        on_retry: Optional[RetryCallback] = None,
    ) -> Iterator[Tuple[int, JobResult]]:
        """Yield ``(input index, result)`` pairs in completion order.

        Retries run in rounds: every failure eligible for another
        attempt is held back, the round's longest backoff is slept
        once, and the reseeded jobs go through the pool together —
        so a mostly-healthy campaign never serialises on one flaky
        point's delays.
        """
        start = time.perf_counter()
        state = Progress(total=len(jobs))
        # Throughput samples for Progress.rate: (evaluated, elapsed)
        # pairs.  Only evaluated completions append, and the seed sample
        # lands when dispatch begins — so neither the cache scan nor a
        # slow progress consumer on cached ticks dilutes the rate.
        window = deque(maxlen=ETA_WINDOW)

        def tick(outcome: JobResult) -> None:
            state.done += 1
            state.cached += 1 if outcome.from_cache else 0
            state.failed += 0 if outcome.ok else 1
            state.elapsed = time.perf_counter() - start
            if not outcome.from_cache:
                window.append((state.evaluated, state.elapsed))
            if len(window) >= 2:
                span = window[-1][1] - window[0][1]
                if span > 0:
                    state.rate = (window[-1][0] - window[0][0]) / span
            if progress is not None:
                progress(replace(state))

        # Cache lookups + same-campaign deduplication.  Hits carry the
        # original evaluation's wall-clock (persisted alongside the
        # result), so read-side analytics can tell a genuinely instant
        # point from a replayed one.
        pending: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            record = self.cache.get(job.key) if self.cache is not None else None
            if record is not None:
                outcome = JobResult(
                    job=job, ok=True, result=record["result"],
                    from_cache=True,
                    elapsed=float(record.get("elapsed") or 0.0),
                )
                tick(outcome)
                yield index, outcome
            else:
                pending.setdefault(job.key, []).append(index)

        offsets = dict(retry_offsets or {})
        attempts: Dict[str, int] = {}
        write_back = self.cache is not None and not self._executor_persists()
        to_run = [jobs[indices[0]] for indices in pending.values()]
        if self.batch_size > 1:
            # Stamp the scheduling hint onto the jobs actually
            # submitted; hashing is untouched (batch_size is outside
            # the content key) so cache addresses do not move.
            to_run = [
                replace(job, batch_size=self.batch_size) for job in to_run
            ]
        # Stamp each job's effective deadline the same way (also outside
        # the content key), so every executor sees one resolved value.
        to_run = [
            job
            if job.deadline == self.effective_deadline(job)
            else replace(job, deadline=self.effective_deadline(job))
            for job in to_run
        ]
        if to_run:
            # Rate-window baseline: evaluation starts *now*; everything
            # before this instant was cache traffic.
            window.append((state.evaluated, time.perf_counter() - start))
        while to_run:
            retries: List[Tuple[Job, float]] = []
            for job, (ok, result, error, elapsed) in self._imap(to_run):
                used = attempts.get(job.key, offsets.get(job.key, 0)) + 1
                attempts[job.key] = used
                if not ok and retry is not None and retry.should_retry(used):
                    backoff = retry.backoff_for(used)
                    if on_retry is not None:
                        on_retry(job, used, error, backoff)
                    retries.append((job, backoff))
                    continue
                if ok and write_back:
                    self.cache.put(
                        job.key,
                        {
                            "target": job.target,
                            "spec": dict(job.spec),
                            "result": result,
                            "elapsed": elapsed,
                        },
                    )
                for index in pending[job.key]:
                    outcome = JobResult(
                        job=jobs[index], ok=ok, result=result,
                        error=error, elapsed=elapsed, attempts=used,
                    )
                    tick(outcome)
                    yield index, outcome
            if not retries:
                break
            delay = max(backoff for _, backoff in retries)
            if delay > 0:
                time.sleep(delay)
            to_run = [
                retry.reseed(job, attempts[job.key]) for job, _ in retries
            ]

    def _executor_persists(self) -> bool:
        """True if the executor already writes results into our cache.

        A :class:`~repro.dse.executors.WorkerPullExecutor` advertises
        the cache root its workers store to (``persist_root``); when it
        is this runner's own plain-layout cache, the write-back in
        :meth:`_iter_indexed` would duplicate every record — skip it.
        """
        from repro.dse.cache import ResultCache as PlainCache

        root = getattr(self.executor, "persist_root", None)
        return (
            root is not None
            and type(self.cache) is PlainCache  # workers use the plain layout
            and os.path.abspath(root) == os.path.abspath(self.cache.root)
        )

    def _imap(
        self, unique: List[Job]
    ) -> Iterator[Tuple[Job, Tuple[bool, Optional[Dict], Optional[str], float]]]:
        """Yield ``(job, outcome)`` pairs in completion order.

        Delegates to the configured executor; without one, the historic
        behaviour is chosen per batch — a lazy in-process serial loop
        for ``workers=1`` or single-job batches, else a process pool
        streaming ``imap_unordered``.  Abandoning the generator
        mid-flight (consumer exception) tears the executor's resources
        down via its own cleanup, so no pool workers leak.
        """
        if not unique:
            return
        executor = self.executor
        if executor is None:
            # Imported lazily: executors imports this module.
            from repro.dse.executors import ProcessPoolExecutor, SerialExecutor

            if self.workers == 1 or len(unique) == 1:
                executor = SerialExecutor()
            else:
                executor = ProcessPoolExecutor(self.workers, self.chunksize)
        for job, outcome in executor.imap(unique):
            yield job, outcome
