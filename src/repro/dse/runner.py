"""Campaign execution: worker pool, chunking, seeding, failure isolation.

The runner turns a list of :class:`~repro.dse.jobs.Job` into
:class:`~repro.dse.jobs.JobResult` records:

* **cache first** — keys already in the :class:`ResultCache` are served
  without touching a worker;
* **deduplication** — identical jobs submitted twice in one campaign
  evaluate once;
* **parallelism** — misses fan out over a ``multiprocessing`` pool in
  chunks (workers=1 degenerates to an in-process serial loop, which the
  legacy sweep wrappers use to reproduce historic outputs exactly);
* **determinism** — every job carries a seed derived from its content
  hash, so worker assignment and execution order cannot change results;
* **failure isolation** — an evaluator exception becomes an error
  record on that one point; the campaign completes.

Evaluator functions are registered by name (the job's ``target``) so the
payload shipped to workers is plain picklable data.
"""

import importlib
import os
import time
import traceback
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dse.cache import ResultCache
from repro.dse.jobs import Job, JobResult

#: Built-in target names (evaluators live in ``repro.dse.campaign``).
MEMORY_TARGET = "vaet-memory"
SYSTEM_TARGET = "magpie-system"

#: name -> fn(spec, seed) -> result dict.
_TARGETS: Dict[str, Callable[[Mapping, int], Dict]] = {}


def register_target(name: str, fn: Callable[[Mapping, int], Dict]) -> None:
    """Register an evaluator under a target name (idempotent overwrite).

    Registrations live in the registering process only.  Under the
    ``fork`` start method workers inherit them; on ``spawn`` platforms
    (macOS/Windows defaults) use a module-qualified target name of the
    form ``"pkg.module:function"`` instead — workers import it
    themselves, no registration needed.
    """
    _TARGETS[name] = fn


def get_target(name: str) -> Callable[[Mapping, int], Dict]:
    """Resolve a target, importing the built-in evaluators on demand.

    ``"pkg.module:function"`` names are imported dynamically (and
    memoised), so they resolve in any worker regardless of the
    multiprocessing start method.

    Raises:
        KeyError: If the name is not registered and not importable.
    """
    if name not in _TARGETS:
        # Built-ins register at campaign import; spawned workers start
        # with an empty registry, so resolve lazily here.
        import repro.dse.campaign  # noqa: F401

    if name not in _TARGETS and ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            _TARGETS[name] = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise KeyError("cannot import target %r: %s" % (name, exc))
    if name not in _TARGETS:
        raise KeyError(
            "unknown target %r; registered: %s" % (name, sorted(_TARGETS))
        )
    return _TARGETS[name]


def _execute(
    payload: Tuple[str, Dict, int]
) -> Tuple[bool, Optional[Dict], Optional[str], float]:
    """Worker entry: run one evaluation, never raise."""
    target, spec, seed = payload
    start = time.perf_counter()
    try:
        result = get_target(target)(spec, seed)
        return (True, result, None, time.perf_counter() - start)
    except Exception as exc:  # isolation: one bad point != dead campaign
        # The original exception cannot cross the process boundary
        # reliably; keep its type, message and frames as text.
        error = "%s: %s\n%s" % (
            type(exc).__name__, exc, traceback.format_exc()
        )
        return (False, None, error, time.perf_counter() - start)


class CampaignRunner:
    """Cached, chunked, parallel job executor.

    Args:
        workers: Pool size; ``None`` uses the CPU count, ``1`` runs
            serially in-process (no pool, no pickling).
        cache: Optional :class:`ResultCache`; hits skip evaluation,
            successful results are written back.
        chunksize: Pool chunk size; default balances ~4 chunks per
            worker to amortise dispatch without starving the pool.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.chunksize = chunksize

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute jobs, returning results aligned with the input order."""
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)

        # Cache lookups + same-campaign deduplication.
        pending: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            record = self.cache.get(job.key) if self.cache is not None else None
            if record is not None:
                results[index] = JobResult(
                    job=job, ok=True, result=record["result"], from_cache=True
                )
            else:
                pending.setdefault(job.key, []).append(index)

        unique = [jobs[indices[0]] for indices in pending.values()]
        payloads = [(job.target, dict(job.spec), job.seed) for job in unique]
        outcomes = self._map(payloads)

        for job, (ok, result, error, elapsed) in zip(unique, outcomes):
            if ok and self.cache is not None:
                self.cache.put(
                    job.key,
                    {
                        "target": job.target,
                        "spec": dict(job.spec),
                        "result": result,
                        "elapsed": elapsed,
                    },
                )
            for index in pending[job.key]:
                results[index] = JobResult(
                    job=jobs[index], ok=ok, result=result,
                    error=error, elapsed=elapsed,
                )
        return results  # type: ignore[return-value]

    def _map(self, payloads: List[Tuple[str, Dict, int]]) -> List[Tuple]:
        """Run payloads serially or over the pool."""
        if not payloads:
            return []
        if self.workers == 1 or len(payloads) == 1:
            return [_execute(payload) for payload in payloads]
        import multiprocessing

        chunksize = self.chunksize or max(1, len(payloads) // (self.workers * 4))
        with multiprocessing.Pool(self.workers) as pool:
            return pool.map(_execute, payloads, chunksize=chunksize)
