"""Adaptive sampling: successive-halving zoom over a ParameterSpace.

Grid and LHS campaigns spend the same effort on every region of the
design space; an adaptive campaign spends it where the objective says
the good designs live.  :class:`AdaptiveSampler` implements the
successive-halving/zoom loop:

1. **seed** — draw a coarse batch from the full space (LHS when the
   space is larger than the batch, the whole grid otherwise);
2. **score** — the caller evaluates the batch against the campaign
   objective(s) (:func:`score_records` turns result records into
   scores; multi-objective scoring uses Pareto dominance ranks, so the
   "promising region" is the one feeding the frontier);
3. **zoom** — :meth:`~repro.dse.space.ParameterSpace.refine` windows
   every axis onto the range the best fraction of points span;
4. repeat on the smaller space until the round budget is spent or the
   space collapses to a point.

The sampler is deterministic in its seed, and evaluation goes through
the normal job/cache machinery — re-running (or resuming) an adaptive
campaign replays each round from cache and walks the identical zoom
path.
"""

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.dse.jobs import canonical_json
from repro.dse.pareto import Objective, ObjectiveSpec, dominance_ranks
from repro.dse.space import ParameterSpace, plain_value

#: Evaluate one batch of points, returning one score per point (lower
#: is better; None marks the point unscorable: infeasible or failed).
BatchEvaluator = Callable[[List[Dict]], Sequence[Optional[float]]]


def score_records(
    records: Sequence[Optional[Mapping]],
    objectives: Sequence[ObjectiveSpec],
) -> List[Optional[float]]:
    """Scalar scores (lower = better) for a batch of result records.

    ``None`` records (infeasible / failed points) score ``None``, and
    so does any record whose objective value is non-finite — a NaN or
    inf that reached ``min``/``sorted`` would poison the ordering (NaN
    compares false everywhere), silently crowning a broken point or
    scrambling the zoom's survivor set.  A single objective scores by
    its (sign-normalised) value; multiple objectives score by Pareto
    dominance rank over the finite records, so rank-0 points — the
    batch frontier — are the ones the zoom keeps.

    Raises:
        ValueError: No objectives given.
        KeyError: A record lacks an objective key.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    parsed = [Objective.parse(o) for o in objectives]
    scores: List[Optional[float]] = [None] * len(records)
    live = []
    for i, record in enumerate(records):
        if record is None:
            continue
        values = [float(record[objective.key]) for objective in parsed]
        if all(math.isfinite(value) for value in values):
            live.append((i, record))
    if not live:
        return scores
    if len(parsed) == 1:
        objective = parsed[0]
        for i, record in live:
            value = float(record[objective.key])
            scores[i] = -value if objective.maximize else value
        return scores
    ranks = dominance_ranks([record for _, record in live], objectives)
    for (i, _), rank in zip(live, ranks):
        scores[i] = float(rank)
    return scores


@dataclass
class AdaptiveRound:
    """One zoom iteration of an adaptive campaign.

    Attributes:
        index: Round number, 0-based.
        space_size: Grid cardinality of the space this round sampled.
        points: Points evaluated this round (duplicates of earlier
            rounds excluded).
        scores: Scores aligned with ``points`` (None = unscorable).
        best_point / best_score: Round winner, if any point scored.
    """

    index: int
    space_size: int
    points: List[Dict]
    scores: List[Optional[float]]
    best_point: Optional[Dict] = None
    best_score: Optional[float] = None


@dataclass
class AdaptiveTrace:
    """Full history of an adaptive run.

    Attributes:
        rounds: Per-round records, in order.
        best_point / best_score: Overall winner across rounds.
        evaluations: Total points submitted for evaluation.
    """

    rounds: List[AdaptiveRound] = field(default_factory=list)
    best_point: Optional[Dict] = None
    best_score: Optional[float] = None
    evaluations: int = 0


class AdaptiveSampler:
    """Successive-halving/zoom driver over a :class:`ParameterSpace`.

    Args:
        space: The full design space to explore.
        batch: Points per round (clamped to the round's space size).
        rounds: Maximum zoom iterations.
        keep: Fraction of scored points that survive into the zoom
            window each round (the "halving" knob).
        margin: Window widening passed to ``ParameterSpace.refine``.
        seed: Base LHS seed; round ``r`` samples with ``seed + r`` so
            batches differ between rounds but replay identically.
    """

    def __init__(
        self,
        space: ParameterSpace,
        batch: int = 8,
        rounds: int = 4,
        keep: float = 0.5,
        margin: int = 1,
        seed: int = 0,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < keep <= 1.0:
            raise ValueError("keep must be in (0, 1], got %r" % keep)
        self.space = space
        self.batch = batch
        self.rounds = rounds
        self.keep = keep
        self.margin = margin
        self.seed = seed

    def run(self, evaluate: BatchEvaluator) -> AdaptiveTrace:
        """Drive the zoom loop; ``evaluate`` scores each round's batch."""
        trace = AdaptiveTrace()
        space = self.space
        seen = set()
        for index in range(self.rounds):
            points = self._draw(space, index, seen)
            if not points:  # zoomed space fully explored already
                break
            scores = list(evaluate(points))
            if len(scores) != len(points):
                raise ValueError(
                    "evaluator returned %d scores for %d points"
                    % (len(scores), len(points))
                )
            trace.evaluations += len(points)
            round_record = AdaptiveRound(
                index=index,
                space_size=space.size,
                points=points,
                scores=scores,
            )
            # Non-finite scores are unscorable exactly like None: a NaN
            # surviving into min()/refine() would win every comparison
            # it should lose (NaN compares false) and hijack the zoom.
            scored = [
                (point, score)
                for point, score in zip(points, scores)
                if score is not None and math.isfinite(score)
            ]
            if scored:
                best_point, best_score = min(scored, key=lambda pair: pair[1])
                round_record.best_point = best_point
                round_record.best_score = best_score
                if trace.best_score is None or best_score < trace.best_score:
                    trace.best_point = best_point
                    trace.best_score = best_score
            trace.rounds.append(round_record)
            if not scored:  # nothing to zoom towards; stop early
                break
            if space.size <= 1:
                break
            space = space.refine(scored, keep=self.keep, margin=self.margin)
        return trace

    def _draw(self, space: ParameterSpace, round_index: int, seen) -> List[Dict]:
        """One round's batch: LHS (or the whole grid), minus repeats.

        Points evaluated in earlier rounds would be pure cache hits, but
        they would also carry no new information — skip them so every
        evaluation the budget pays for is a fresh design.
        """
        if space.size <= self.batch:
            candidates = list(space.grid())
        else:
            candidates = space.sample(self.batch, seed=self.seed + round_index)
        fresh = []
        for point in candidates:
            key = point_key(point)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(point)
        return fresh


def point_key(point: Mapping) -> str:
    """Canonical dedup key of a point (enum values by serialised form)."""
    return canonical_json(
        {name: plain_value(value) for name, value in point.items()}
    )


#: Backwards-compatible alias (normalisation now lives in dse.space).
_plain = plain_value
