"""Multi-objective frontier extraction with dominance ranking.

Design-space exploration rarely has a single winner: the paper's own
sweeps trade write latency against ECC storage, area against energy,
system speedup against macro reliability.  This module extracts the
non-dominated set (rank 0) and iteratively peels deeper fronts, over
plain result dicts keyed by objective name.

Dominance is the standard Pareto relation: ``a`` dominates ``b`` when it
is no worse on every objective and strictly better on at least one.
Ties on every objective dominate in neither direction, so duplicated
points share a front.
"""

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

#: An objective: a key (minimised by default) or a (key, sense) pair
#: with sense "min" or "max".
ObjectiveSpec = Union[str, Tuple[str, str]]


@dataclass(frozen=True)
class Objective:
    """One optimisation direction.

    Attributes:
        key: Field name in the record dict.
        maximize: True to prefer larger values.
    """

    key: str
    maximize: bool = False

    @classmethod
    def parse(cls, spec: ObjectiveSpec) -> "Objective":
        """Normalise ``"latency"`` / ``("area", "min")`` / Objective."""
        if isinstance(spec, Objective):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        key, sense = spec
        if sense not in ("min", "max"):
            raise ValueError("objective sense must be 'min' or 'max', got %r" % sense)
        return cls(key, maximize=(sense == "max"))


def _values(record: Mapping, objectives: Sequence[Objective]) -> List[float]:
    """Objective vector of one record, sign-normalised to minimisation.

    Raises:
        KeyError: If the record lacks an objective key.
    """
    out = []
    for objective in objectives:
        value = float(record[objective.key])
        out.append(-value if objective.maximize else value)
    return out


def _vector_dominates(va: Sequence[float], vb: Sequence[float]) -> bool:
    """Dominance on sign-normalised (minimisation) objective vectors."""
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def dominates(
    a: Mapping, b: Mapping, objectives: Sequence[ObjectiveSpec]
) -> bool:
    """True if ``a`` Pareto-dominates ``b``."""
    parsed = [Objective.parse(o) for o in objectives]
    return _vector_dominates(_values(a, parsed), _values(b, parsed))


def dominance_ranks(
    records: Sequence[Mapping], objectives: Sequence[ObjectiveSpec]
) -> List[int]:
    """Front index of every record (0 = Pareto-optimal).

    Iterative non-dominated sorting over a precomputed pairwise
    dominance matrix: one vectorised O(n^2 * m) comparison pass, then
    each front peels with a masked any-reduction instead of re-scanning
    ``remaining`` per candidate (the former pure-python loop was
    O(n^2) *per front*, O(n^3) on deep fronts — adaptive campaigns
    rank every round, so deep single-objective batches paid it often).
    """
    parsed = [Objective.parse(o) for o in objectives]
    n = len(records)
    if n == 0:
        return []
    vectors = np.array([_values(record, parsed) for record in records], float)
    # dominates[j, i]: record j dominates record i.  NaN compares false
    # in numpy exactly as in python, so non-finite vectors neither
    # dominate nor are dominated — identical to the scalar reference.
    less_eq = (vectors[:, None, :] <= vectors[None, :, :]).all(axis=2)
    strictly = (vectors[:, None, :] < vectors[None, :, :]).any(axis=2)
    dominated_by = less_eq & strictly
    ranks = np.full(n, -1, dtype=int)
    remaining = np.ones(n, dtype=bool)
    rank = 0
    while remaining.any():
        blocked = (dominated_by & remaining[:, None]).any(axis=0)
        front = remaining & ~blocked
        if not front.any():  # unreachable for a strict partial order
            front = remaining
        ranks[front] = rank
        remaining &= ~front
        rank += 1
    return ranks.tolist()


def _dominance_ranks_reference(
    records: Sequence[Mapping], objectives: Sequence[ObjectiveSpec]
) -> List[int]:
    """Scalar reference for :func:`dominance_ranks` (tests pin equality).

    The original peel loop: re-scan ``remaining`` for every candidate,
    O(n^2) per front.  Kept as the semantic baseline the vectorised
    implementation must reproduce rank-for-rank.
    """
    parsed = [Objective.parse(o) for o in objectives]
    vectors = [_values(record, parsed) for record in records]
    ranks = [-1] * len(records)
    remaining = list(range(len(records)))
    rank = 0
    while remaining:
        front = []
        for i in remaining:
            dominated = any(
                j != i and _vector_dominates(vectors[j], vectors[i])
                for j in remaining
            )
            if not dominated:
                front.append(i)
        for i in front:
            ranks[i] = rank
        front_set = set(front)
        remaining = [i for i in remaining if i not in front_set]
        rank += 1
    return ranks


def pareto_front(
    records: Sequence[Mapping],
    objectives: Sequence[ObjectiveSpec],
    key: Optional[Callable[[Mapping], Mapping]] = None,
) -> List[Mapping]:
    """The non-dominated subset, in input order.

    Args:
        records: Result dicts (or objects indexable by objective key).
        objectives: Objective specs; see :data:`ObjectiveSpec`.
        key: Optional accessor mapping a record to the dict holding the
            objective fields (e.g. ``lambda r: r["point"]``).
    """
    if not records:
        return []
    accessor = key if key is not None else (lambda record: record)
    ranks = dominance_ranks([accessor(r) for r in records], objectives)
    return [record for record, rank in zip(records, ranks) if rank == 0]
