"""Multi-objective frontier extraction with dominance ranking.

Design-space exploration rarely has a single winner: the paper's own
sweeps trade write latency against ECC storage, area against energy,
system speedup against macro reliability.  This module extracts the
non-dominated set (rank 0) and iteratively peels deeper fronts, over
plain result dicts keyed by objective name.

Dominance is the standard Pareto relation: ``a`` dominates ``b`` when it
is no worse on every objective and strictly better on at least one.
Ties on every objective dominate in neither direction, so duplicated
points share a front.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

#: An objective: a key (minimised by default) or a (key, sense) pair
#: with sense "min" or "max".
ObjectiveSpec = Union[str, Tuple[str, str]]


@dataclass(frozen=True)
class Objective:
    """One optimisation direction.

    Attributes:
        key: Field name in the record dict.
        maximize: True to prefer larger values.
    """

    key: str
    maximize: bool = False

    @classmethod
    def parse(cls, spec: ObjectiveSpec) -> "Objective":
        """Normalise ``"latency"`` / ``("area", "min")`` / Objective."""
        if isinstance(spec, Objective):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        key, sense = spec
        if sense not in ("min", "max"):
            raise ValueError("objective sense must be 'min' or 'max', got %r" % sense)
        return cls(key, maximize=(sense == "max"))


def _values(record: Mapping, objectives: Sequence[Objective]) -> List[float]:
    """Objective vector of one record, sign-normalised to minimisation.

    Raises:
        KeyError: If the record lacks an objective key.
    """
    out = []
    for objective in objectives:
        value = float(record[objective.key])
        out.append(-value if objective.maximize else value)
    return out


def _vector_dominates(va: Sequence[float], vb: Sequence[float]) -> bool:
    """Dominance on sign-normalised (minimisation) objective vectors."""
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def dominates(
    a: Mapping, b: Mapping, objectives: Sequence[ObjectiveSpec]
) -> bool:
    """True if ``a`` Pareto-dominates ``b``."""
    parsed = [Objective.parse(o) for o in objectives]
    return _vector_dominates(_values(a, parsed), _values(b, parsed))


def dominance_ranks(
    records: Sequence[Mapping], objectives: Sequence[ObjectiveSpec]
) -> List[int]:
    """Front index of every record (0 = Pareto-optimal).

    Iterative non-dominated sorting over a precomputed pairwise
    dominance matrix: one vectorised O(n^2 * m) comparison pass, then
    each front peels with a masked any-reduction instead of re-scanning
    ``remaining`` per candidate (the former pure-python loop was
    O(n^2) *per front*, O(n^3) on deep fronts — adaptive campaigns
    rank every round, so deep single-objective batches paid it often).
    """
    parsed = [Objective.parse(o) for o in objectives]
    n = len(records)
    if n == 0:
        return []
    vectors = np.array([_values(record, parsed) for record in records], float)
    # dominates[j, i]: record j dominates record i.  NaN compares false
    # in numpy exactly as in python, so non-finite vectors neither
    # dominate nor are dominated — identical to the scalar reference.
    less_eq = (vectors[:, None, :] <= vectors[None, :, :]).all(axis=2)
    strictly = (vectors[:, None, :] < vectors[None, :, :]).any(axis=2)
    dominated_by = less_eq & strictly
    ranks = np.full(n, -1, dtype=int)
    remaining = np.ones(n, dtype=bool)
    rank = 0
    while remaining.any():
        blocked = (dominated_by & remaining[:, None]).any(axis=0)
        front = remaining & ~blocked
        if not front.any():  # unreachable for a strict partial order
            front = remaining
        ranks[front] = rank
        remaining &= ~front
        rank += 1
    return ranks.tolist()


def _dominance_ranks_reference(
    records: Sequence[Mapping], objectives: Sequence[ObjectiveSpec]
) -> List[int]:
    """Scalar reference for :func:`dominance_ranks` (tests pin equality).

    The original peel loop: re-scan ``remaining`` for every candidate,
    O(n^2) per front.  Kept as the semantic baseline the vectorised
    implementation must reproduce rank-for-rank.
    """
    parsed = [Objective.parse(o) for o in objectives]
    vectors = [_values(record, parsed) for record in records]
    ranks = [-1] * len(records)
    remaining = list(range(len(records)))
    rank = 0
    while remaining:
        front = []
        for i in remaining:
            dominated = any(
                j != i and _vector_dominates(vectors[j], vectors[i])
                for j in remaining
            )
            if not dominated:
                front.append(i)
        for i in front:
            ranks[i] = rank
        front_set = set(front)
        remaining = [i for i in remaining if i not in front_set]
        rank += 1
    return ranks


def update_front(
    front: Sequence[Mapping],
    record: Mapping,
    objectives: Sequence[ObjectiveSpec],
) -> List[Mapping]:
    """Fold one record into a non-dominated archive.

    Returns the new front: ``record`` is dropped if any member
    dominates it, otherwise it joins and evicts the members it
    dominates.  Folding a stream of N records costs O(N * front * m)
    instead of the O(N^2 * m) a per-prefix :func:`pareto_front` would
    pay — the read-side analytics replay samples the front evolution
    of campaigns with 10^4+ completions this way.

    Raises:
        KeyError: If ``record`` lacks an objective key (callers filter
            incomparable records before folding).
    """
    parsed = [Objective.parse(o) for o in objectives]
    vector = _values(record, parsed)
    kept: List[Mapping] = []
    for member in front:
        existing = _values(member, parsed)
        if _vector_dominates(existing, vector):
            return list(front)  # dominated: the archive is unchanged
        if not _vector_dominates(vector, existing):
            kept.append(member)
    kept.append(record)
    return kept


def hypervolume_proxy(
    front: Sequence[Mapping],
    objectives: Sequence[ObjectiveSpec],
    bounds: Mapping[str, Tuple[float, float]],
) -> float:
    """Cheap, deterministic stand-in for dominated hypervolume in [0, 1].

    The largest normalised box any single front member dominates: each
    objective is mapped onto [0, 1] via ``bounds`` (sign-normalised
    ``key -> (best, worst)`` over the whole campaign, so samples taken
    at different times share one scale) and the proxy is
    ``max over front of prod_j (worst_j - v_j) / (worst_j - best_j)``.
    A lower bound on the true hypervolume against the ``worst`` corner
    — monotone non-decreasing as the front improves under fixed
    bounds, which is the property trajectory plots need.  Degenerate
    axes (``best == worst``) contribute a full edge rather than
    poisoning the product with 0/0.
    """
    parsed = [Objective.parse(o) for o in objectives]
    best = 0.0
    for member in front:
        vector = _values(member, parsed)
        volume = 1.0
        for objective, value in zip(parsed, vector):
            lo, hi = bounds[objective.key]
            if hi <= lo:
                continue  # degenerate axis: every point spans it
            edge = (hi - value) / (hi - lo)
            volume *= min(1.0, max(0.0, edge))
        best = max(best, volume)
    return best


def objective_bounds(
    records: Sequence[Mapping], objectives: Sequence[ObjectiveSpec]
) -> Dict[str, Tuple[float, float]]:
    """Sign-normalised ``key -> (best, worst)`` over finite records.

    The fixed normalisation frame for :func:`hypervolume_proxy`:
    computed once over a whole campaign so that front samples taken at
    different completion counts are comparable.  Records lacking an
    objective key (or carrying non-finite values) are skipped.
    """
    parsed = [Objective.parse(o) for o in objectives]
    lows: Dict[str, float] = {}
    highs: Dict[str, float] = {}
    for record in records:
        try:
            vector = _values(record, parsed)
        except (KeyError, TypeError, ValueError):
            continue
        if not all(np.isfinite(vector)):
            continue
        for objective, value in zip(parsed, vector):
            key = objective.key
            lows[key] = min(lows.get(key, value), value)
            highs[key] = max(highs.get(key, value), value)
    return {key: (lows[key], highs[key]) for key in lows}


def pareto_front(
    records: Sequence[Mapping],
    objectives: Sequence[ObjectiveSpec],
    key: Optional[Callable[[Mapping], Mapping]] = None,
) -> List[Mapping]:
    """The non-dominated subset, in input order.

    Args:
        records: Result dicts (or objects indexable by objective key).
        objectives: Objective specs; see :data:`ObjectiveSpec`.
        key: Optional accessor mapping a record to the dict holding the
            objective fields (e.g. ``lambda r: r["point"]``).
    """
    if not records:
        return []
    accessor = key if key is not None else (lambda record: record)
    ranks = dominance_ranks([accessor(r) for r in records], objectives)
    return [record for record, rank in zip(records, ranks) if rank == 0]
