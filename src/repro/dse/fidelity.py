"""Multi-fidelity evaluation: analytic NVSim screen, Monte-Carlo promote.

The expensive memory evaluator (``"vaet-memory"``) pays for a full
variation-aware Monte-Carlo analysis per point — margin solving over an
error population, LLG switching statistics, ECC/WER optimisation.  The
variation-*unaware* :class:`~repro.nvsim.estimator.NVSimEstimator`
produces the same latency/energy/area quantities analytically, three
orders of magnitude faster, and (measured by
``benchmarks/calibrate_fidelity.py``) rank-correlates with the full
model across organisation knobs.  That gap is the classic
multi-fidelity ladder:

1. **screen** — evaluate *every* candidate point with the cheap
   analytic estimate (``"nvsim-memory-lowfi"`` jobs);
2. **promote** — keep the points whose low-fidelity Pareto rank under
   the campaign objectives is within ``promote_ranks`` of the frontier
   (widened so a point the cheap model slightly mis-ranks is not fenced
   out — ties, e.g. axes the analytic model cannot see, promote
   together);
3. **confirm** — re-evaluate only the promoted points with the full
   vaet/LLG Monte-Carlo path; the campaign's records and Pareto front
   come from these high-fidelity results alone.

Fidelity is part of every job's identity: low-fidelity jobs carry a
distinct target name *and* a ``"fidelity": "low"`` spec field, both of
which feed :func:`~repro.dse.jobs.content_key`.  Cache addresses and
journal events therefore never collide across fidelities, and the
resume/zero-re-evaluation guarantees of the campaign machinery hold
unchanged on all four executors — a killed ladder campaign resumes
through the identical screen/promote path with every finished point a
cache hit.
"""

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.dse.jobs import Job, JobResult
from repro.dse.pareto import Objective, ObjectiveSpec, dominance_ranks
from repro.dse.runner import register_target

#: Registered name of the analytic (variation-unaware) memory evaluator.
LOWFI_MEMORY_TARGET = "nvsim-memory-lowfi"

#: Spec marker values for the two fidelities.
FIDELITY_LOW = "low"
FIDELITY_HIGH = "high"

#: Fidelity modes the memory campaign entry points understand:
#: ``"high"`` — every point pays the full Monte-Carlo path (default);
#: ``"low"`` — every point uses the analytic screen only (quick sweeps,
#: calibration harnesses); ``"ladder"`` — screen low, confirm high.
FIDELITY_MODES = ("high", "low", "ladder")


def evaluate_memory_lowfi(spec: Mapping, seed: int) -> Dict:
    """Analytic screening twin of ``evaluate_memory_point``.

    Rebuilds the PDK and :class:`~repro.nvsim.config.MemoryConfig` from
    the spec and runs the variation-unaware NVSim-class estimate — no
    Monte Carlo, no margin solving, no ECC sweep.  The result mirrors
    the high-fidelity shape (a ``DesignPoint``-style dict) so record
    flattening and Pareto ranking are fidelity-agnostic; fields the
    analytic model cannot see are pinned to their nominal meaning
    (``ecc_bits=0``, disturb unchecked).

    The ``seed`` is accepted for evaluator-protocol uniformity and
    unused: the estimate is deterministic.
    """
    from repro.nvsim.config import MemoryConfig
    from repro.nvsim.estimator import NVSimEstimator
    from repro.pdk.kit import ProcessDesignKit

    config = MemoryConfig.from_dict(spec["config"])
    pdk = ProcessDesignKit.for_node(int(spec["node_nm"]))
    estimate = NVSimEstimator(pdk, config).estimate()
    point = {
        "config": config.to_dict(),
        "ecc_bits": 0,
        "write_latency": float(estimate.write_latency),
        "read_latency": float(estimate.read_latency),
        "write_energy": float(estimate.write_energy),
        "read_energy": float(estimate.read_energy),
        "area": float(estimate.area),
        "read_disturb_ok": True,
    }
    return {"feasible": True, "fidelity": FIDELITY_LOW, "point": point}


register_target(LOWFI_MEMORY_TARGET, evaluate_memory_lowfi)


def lowfi_twin(job: Job) -> Job:
    """The analytic screening job of a high-fidelity memory job.

    Same spec plus the ``"fidelity": "low"`` marker, different target —
    both changes feed the content key, so the screen and the confirm of
    one design point occupy distinct cache and journal identities.
    """
    spec = dict(job.spec)
    spec["fidelity"] = FIDELITY_LOW
    return Job(
        LOWFI_MEMORY_TARGET, spec,
        reseed=job.reseed, batch_size=job.batch_size,
    )


@dataclass
class FidelityTrace:
    """History of one ladder campaign's screening stage.

    Attributes:
        low_jobs: The analytic screening jobs, in point order.
        low_outcomes: Screening results (aligned with ``low_jobs``).
        promoted_keys: High-fidelity job keys that survived screening.
        promote_ranks: The frontier widening the promotion used.
        objectives: Objectives the low-fidelity ranking scored.
    """

    low_jobs: List[Job] = field(default_factory=list)
    low_outcomes: List[JobResult] = field(default_factory=list)
    promoted_keys: List[str] = field(default_factory=list)
    promote_ranks: int = 1
    objectives: List = field(default_factory=list)

    @property
    def screened(self) -> int:
        """Points evaluated by the cheap analytic screen."""
        return len(self.low_jobs)

    @property
    def promoted(self) -> int:
        """Points promoted to the expensive Monte-Carlo path."""
        return len(self.promoted_keys)

    def records(self, record: Callable) -> List[Dict]:
        """Flat screening records through a campaign record builder."""
        rows = []
        for job, outcome in zip(self.low_jobs, self.low_outcomes):
            row = record(job, outcome)
            if row is not None:
                rows.append(row)
        return rows


def promotion_indices(
    rows: Sequence[Optional[Mapping]],
    objectives: Sequence[ObjectiveSpec],
    promote_ranks: int = 1,
) -> List[int]:
    """Indices whose low-fidelity Pareto rank is within the frontier band.

    Rows that are ``None`` (failed / infeasible screens) or carry a
    non-finite objective value are unrankable and never promoted.

    Raises:
        ValueError: No objectives, or ``promote_ranks`` negative.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    if promote_ranks < 0:
        raise ValueError("promote_ranks must be >= 0")
    parsed = [Objective.parse(o) for o in objectives]
    live = []
    for i, row in enumerate(rows):
        if row is None:
            continue
        values = [float(row[objective.key]) for objective in parsed]
        if all(math.isfinite(value) for value in values):
            live.append(i)
    if not live:
        return []
    ranks = dominance_ranks([rows[i] for i in live], objectives)
    return [i for i, rank in zip(live, ranks) if rank <= promote_ranks]


def run_ladder(
    jobs: Sequence[Job],
    execute: Callable[[List[Job]], List[JobResult]],
    record: Callable[[Job, JobResult], Optional[Dict]],
    objectives: Sequence[ObjectiveSpec],
    promote_ranks: int = 1,
):
    """Screen every job at low fidelity, confirm the frontier at high.

    Args:
        jobs: High-fidelity jobs of the full candidate set.
        execute: jobs -> outcomes (runner or checkpointed runner; both
            stages flow through it, so caching/journaling/executors
            apply to screens and confirms alike).
        record: (job, outcome) -> flat scoreable dict or None.
        objectives: Pareto objectives ranking the screen.
        promote_ranks: Deepest low-fidelity front promoted (0 = exact
            frontier only; the default 1 keeps one band of slack for
            cheap-model mis-ranking).

    Returns:
        ``(high_jobs, high_outcomes, trace)`` — the promoted subset in
        original point order, their Monte-Carlo results, and the
        :class:`FidelityTrace` of the screening stage.
    """
    jobs = list(jobs)
    low_jobs = [lowfi_twin(job) for job in jobs]
    low_outcomes = execute(low_jobs)
    rows = [
        record(job, outcome)
        for job, outcome in zip(low_jobs, low_outcomes)
    ]
    chosen = promotion_indices(rows, objectives, promote_ranks)
    high_jobs = [jobs[i] for i in chosen]
    high_outcomes = execute(high_jobs) if high_jobs else []
    trace = FidelityTrace(
        low_jobs=low_jobs,
        low_outcomes=low_outcomes,
        promoted_keys=[job.key for job in high_jobs],
        promote_ranks=promote_ranks,
        objectives=[
            list(o) if isinstance(o, tuple) else o for o in objectives
        ],
    )
    return high_jobs, high_outcomes, trace
