"""Read-side campaign analytics: replay the journals into a report.

Every campaign already writes three durable event streams — the
append-only campaign journal (``journal.jsonl``), one claim journal per
worker (``work/leases/*.jsonl``), and the content-addressed result
cache — but the write-side stack never reads them back.  This module is
the read-side twin: :func:`build_report` folds all three into a
:class:`CampaignReport` answering the questions a campaign owner
actually asks —

* **where does wall-clock go?** — per-point evaluation-latency
  percentiles (p50/p90/p99 over evaluated completions; cache hits are
  excluded, they cost nothing at replay time), overall throughput, and
  cache-hit / retry / timeout rates;
* **are the workers busy?** — a per-worker utilization summary folded
  from each claim journal's ``claim``/``heartbeat``/``done`` intervals
  (a worker that died mid-task is credited up to its last heartbeat);
* **is the search converging?** — the Pareto front's evolution over
  campaign time: front size and a hypervolume proxy sampled along the
  completion sequence, joined from journal order and cached results.

Everything here is a pure read: no journal is appended, no cache entry
written, no lease touched — ``analyze`` is always safe against a live
campaign.  Torn final lines and mid-crash journals produce a partial
report, never an exception; only a journal that is corrupt *interior*
(which the write side can never produce) raises.

One caveat inherited from compaction: :meth:`CampaignState.save` folds
the event history into a snapshot, so per-event analytics (latency
samples, Pareto evolution) cover the journaled tail only.  The summary
counters (status buckets, rates) always cover the whole campaign
because they fold snapshot + tail.
"""

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.cache import ResultCache
from repro.dse.checkpoint import CampaignState, journal_path
from repro.dse.executors import CACHE_DIR_NAME, WorkQueue, read_lease_events
from repro.dse.journal import read_events
from repro.dse.pareto import (
    ObjectiveSpec,
    hypervolume_proxy,
    objective_bounds,
    update_front,
)

#: Pareto-evolution samples in a report (evenly spaced along the
#: completion sequence, the final state always included).
DEFAULT_PARETO_SAMPLES = 16

#: Latency percentiles every report carries.
LATENCY_PERCENTILES = (50, 90, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation.

    Matches ``numpy.percentile``'s default method, but stays pure
    python so report construction never round-trips a few dozen floats
    through an array.

    Raises:
        ValueError: On an empty sample.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100], got %r" % q)
    ordered = sorted(float(v) for v in values)
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class WorkerUtilization:
    """One worker's claim-journal fold.

    Attributes:
        worker: Worker id (the claim journal's single writer).
        tasks: Claims folded (a task reclaimed after expiry counts per
            claim — it occupied the worker each time).
        completed: Tasks the worker journaled ``done``.
        heartbeats: Heartbeat events (liveness traffic).
        busy_s: Seconds under an open claim.  A claim with no terminal
            event (worker died mid-task) is credited up to its last
            heartbeat — the lease lawfully expired after that.
        span_s: First-to-last event stamp in this worker's journal.
        utilization: ``busy_s / span_s`` (0 when the span is empty).
        first_t: Stamp of the worker's first event.
        last_t: Stamp of the worker's last event.
    """

    worker: str
    tasks: int = 0
    completed: int = 0
    heartbeats: int = 0
    busy_s: float = 0.0
    span_s: float = 0.0
    utilization: float = 0.0
    first_t: float = 0.0
    last_t: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "worker": self.worker,
            "tasks": self.tasks,
            "completed": self.completed,
            "heartbeats": self.heartbeats,
            "busy_s": self.busy_s,
            "span_s": self.span_s,
            "utilization": self.utilization,
            "first_t": self.first_t,
            "last_t": self.last_t,
        }


@dataclass
class ParetoSample:
    """Front state after ``completed`` ok points had landed.

    Attributes:
        completed: Ok completions folded so far (journal order).
        t: Journal stamp of the ``completed``-th ok completion.
        front_size: Non-dominated archive size at that instant.
        hypervolume: :func:`~repro.dse.pareto.hypervolume_proxy` of the
            archive, normalised over the whole campaign's value ranges
            (samples share one scale, so the series is comparable).
    """

    completed: int
    t: float
    front_size: int
    hypervolume: float

    def to_dict(self) -> Dict:
        return {
            "completed": self.completed,
            "t": self.t,
            "front_size": self.front_size,
            "hypervolume": self.hypervolume,
        }


@dataclass
class CampaignReport:
    """Everything :func:`build_report` reads out of a campaign directory.

    ``to_dict()`` is the stable ``analyze --json`` payload; the field
    reference lives in the README ("Reading a campaign back").
    """

    campaign_dir: str
    status: Dict
    #: True iff ``done + remaining + quarantined == total`` — the
    #: accounting identity status() guarantees; False means the journal
    #: itself is inconsistent (e.g. more completions than the plan).
    accounting_consistent: bool
    events: int = 0
    torn_bytes: int = 0
    start_t: float = 0.0
    end_t: float = 0.0
    duration_s: float = 0.0
    #: Evaluated completions (done + failed events) in the journal tail.
    completions: int = 0
    throughput: float = 0.0
    #: count/mean/min/max/p50/p90/p99 over evaluated completions [s];
    #: None when the tail holds no evaluated completion.
    latency: Optional[Dict] = None
    #: cache_hit / retry / timeout fractions of accounted points.
    rates: Dict = field(default_factory=dict)
    workers: List[WorkerUtilization] = field(default_factory=list)
    objectives: List = field(default_factory=list)
    pareto: List[ParetoSample] = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-ready payload (no filesystem paths: byte-stable given
        an identical campaign directory content, wherever it lives)."""
        return {
            "status": self.status,
            "accounting_consistent": self.accounting_consistent,
            "journal": {
                "events": self.events,
                "torn_bytes": self.torn_bytes,
                "start_t": self.start_t,
                "end_t": self.end_t,
                "duration_s": self.duration_s,
            },
            "throughput": {
                "completions": self.completions,
                "points_per_s": self.throughput,
            },
            "latency": self.latency,
            "rates": self.rates,
            "workers": [worker.to_dict() for worker in self.workers],
            "pareto": {
                "objectives": [
                    list(o) if isinstance(o, tuple) else o
                    for o in self.objectives
                ],
                "samples": [sample.to_dict() for sample in self.pareto],
            },
        }


def _meta_objectives(meta: Dict) -> List[ObjectiveSpec]:
    """The campaign's journaled objectives, or the kind's default."""
    raw = meta.get("objectives") if isinstance(meta, dict) else None
    if raw:
        return [tuple(o) if isinstance(o, list) else o for o in raw]
    if isinstance(meta, dict) and meta.get("kind") == "system":
        return ["edp"]
    return ["edp_proxy"]


def _flatten_result(meta: Dict, spec, result) -> Optional[Dict]:
    """A cached evaluation result as a flat objective-keyed row.

    Memory-campaign results nest their metrics under
    ``point``/``config`` (see ``_memory_record`` in campaign.py); the
    same flattening is applied here so the journaled objectives (e.g.
    ``edp_proxy``) resolve.  Anything else is taken as already-flat
    metrics.  Returns None for infeasible or non-dict results.
    """
    if not isinstance(result, dict):
        return None
    kind = meta.get("kind") if isinstance(meta, dict) else None
    if kind != "memory" or "point" not in result:
        return dict(result)
    if not result.get("feasible"):
        return None
    point = dict(result.get("point") or {})
    row = dict(point.pop("config", None) or {})
    row.update(point)
    if isinstance(spec, dict):
        if "node_nm" in spec:
            row["node_nm"] = spec["node_nm"]
        constraints = spec.get("constraints")
        if isinstance(constraints, dict) and "wer_target" in constraints:
            row["wer_target"] = constraints["wer_target"]
    try:
        row.setdefault(
            "edp_proxy", row["write_latency"] * row["write_energy"]
        )
    except (KeyError, TypeError):
        pass
    return row


def _latency_summary(samples: Sequence[float]) -> Optional[Dict]:
    if not samples:
        return None
    summary = {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }
    for q in LATENCY_PERCENTILES:
        summary["p%d" % q] = percentile(samples, q)
    return summary


def _fold_latency(events: Sequence[Dict]) -> Tuple[List[float], Dict[str, str]]:
    """(latency samples, key -> final completion kind) from the tail.

    Latency samples come from evaluated completions only (``done`` /
    ``failed``), last-writer-wins per key so a retried point
    contributes its final attempt's wall-clock once.  ``cached``
    completions join the kind map (they are completions) but never the
    latency sample — a hit costs nothing at replay time.
    """
    final_kind: Dict[str, str] = {}
    final_elapsed: Dict[str, Optional[float]] = {}
    for event in events:
        kind = event.get("event")
        key = event.get("key")
        if key is None or kind not in ("done", "failed", "cached"):
            continue
        final_kind[key] = kind
        if kind == "cached":
            final_elapsed[key] = None
        else:
            elapsed = event.get("elapsed")
            final_elapsed[key] = (
                float(elapsed)
                if isinstance(elapsed, (int, float)) and elapsed >= 0
                else None
            )
    samples = [v for v in final_elapsed.values() if v is not None]
    return samples, final_kind


def _fold_workers(paths: Sequence[str]) -> List[WorkerUtilization]:
    """Per-worker busy/span fold over every claim journal."""
    folds: Dict[str, WorkerUtilization] = {}
    open_claims: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for path in paths:
        for event in read_lease_events(path):
            worker = event.get("worker")
            task = event.get("task")
            if worker is None or task is None:
                continue
            kind = event.get("event")
            t = float(event.get("t", 0.0))
            fold = folds.get(worker)
            if fold is None:
                fold = folds[worker] = WorkerUtilization(
                    worker=worker, first_t=t, last_t=t
                )
            fold.first_t = min(fold.first_t, t)
            fold.last_t = max(fold.last_t, t)
            claim = (worker, task)
            if kind == "claim":
                if claim not in open_claims:
                    fold.tasks += 1
                    open_claims[claim] = (t, t)
            elif kind == "heartbeat":
                fold.heartbeats += 1
                if claim in open_claims:
                    open_claims[claim] = (open_claims[claim][0], t)
            elif kind in ("done", "release"):
                if kind == "done":
                    fold.completed += 1
                started = open_claims.pop(claim, None)
                if started is not None:
                    fold.busy_s += max(0.0, t - started[0])
    # A claim never closed: the worker died mid-task.  Credit busy time
    # up to its last heartbeat — the lease lawfully expired after that.
    for (worker, _task), (claimed, last_alive) in open_claims.items():
        folds[worker].busy_s += max(0.0, last_alive - claimed)
    for fold in folds.values():
        fold.span_s = max(0.0, fold.last_t - fold.first_t)
        fold.utilization = (
            fold.busy_s / fold.span_s if fold.span_s > 0 else 0.0
        )
    return sorted(folds.values(), key=lambda fold: fold.worker)


def _fold_pareto(
    events: Sequence[Dict],
    cache: Optional[ResultCache],
    meta: Dict,
    objectives: Sequence[ObjectiveSpec],
    samples: int,
) -> List[ParetoSample]:
    """Front evolution along the journal's ok-completion sequence.

    One pass collects each point's row at its *first* ok completion
    (``done`` or ok ``cached``), joined from the result cache and
    flattened; a second pass folds rows into an incremental
    non-dominated archive (:func:`~repro.dse.pareto.update_front` — no
    per-prefix O(n^2) re-sort) and snapshots ``front_size`` + the
    hypervolume proxy at up to ``samples`` evenly spaced completions.
    Points whose rows lack an objective key advance the completion
    counter without joining the archive.
    """
    sequence: List[Tuple[float, Optional[Dict]]] = []
    seen = set()
    for event in events:
        kind = event.get("event")
        key = event.get("key")
        if key is None or key in seen:
            continue
        if kind == "done" or (kind == "cached" and event.get("ok", True)):
            seen.add(key)
            row = None
            record = cache.get(key) if cache is not None else None
            if record is not None:
                row = _flatten_result(
                    meta, record.get("spec"), record.get("result")
                )
            sequence.append((float(event.get("t", 0.0)), row))
    rows = [row for _, row in sequence if row is not None]
    bounds = objective_bounds(rows, objectives)
    keys = {o[0] if isinstance(o, (tuple, list)) else o for o in objectives}
    if not bounds or not keys <= set(bounds):
        return []
    total = len(sequence)
    take = max(1, int(samples))
    positions = {max(1, ((i + 1) * total) // take) for i in range(take)}
    positions.add(total)
    front: List[Dict] = []
    out: List[ParetoSample] = []
    for index, (t, row) in enumerate(sequence, start=1):
        if row is not None:
            try:
                front = update_front(front, row, objectives)
            except (KeyError, TypeError, ValueError):
                pass  # row lacks an objective key: completion only
        if index in positions:
            out.append(
                ParetoSample(
                    completed=index,
                    t=t,
                    front_size=len(front),
                    hypervolume=hypervolume_proxy(front, objectives, bounds),
                )
            )
    return out


def build_report(
    campaign_dir: str,
    objectives: Optional[Sequence[ObjectiveSpec]] = None,
    pareto_samples: int = DEFAULT_PARETO_SAMPLES,
) -> CampaignReport:
    """Replay one campaign directory into a :class:`CampaignReport`.

    Args:
        campaign_dir: The campaign home (holds ``journal.jsonl``, and
            optionally ``cache/`` and ``work/leases/``).
        objectives: Pareto objectives overriding the journaled ones
            (default: the campaign's own, falling back to the kind's
            default objective).
        pareto_samples: Evolution samples along the completion sequence.

    Raises:
        FileNotFoundError: No campaign journal in ``campaign_dir``.
        ValueError: The journal is corrupt beyond the lawful torn final
            line (interior damage the write side cannot produce).
    """
    campaign_dir = str(campaign_dir)
    path = journal_path(campaign_dir)
    state = CampaignState.load(path)
    try:
        events, torn = read_events(path)
    except FileNotFoundError:
        # Legacy journal upgraded in memory from checkpoint.json (the
        # read-only-directory path): no JSONL tail exists on disk yet.
        events, torn = [], 0
    tail = events[1:] if events else []

    status = state.status()
    consistent = (
        status["done"] + status["remaining"] + status["quarantined"]
        == status["total"]
    )

    stamps = [
        float(event["t"])
        for event in tail
        if isinstance(event.get("t"), (int, float))
    ]
    start_t = min(stamps) if stamps else float(state.created)
    end_t = max(stamps) if stamps else float(state.updated)
    duration = max(0.0, end_t - start_t)

    samples, final_kind = _fold_latency(tail)
    kinds = list(final_kind.values())
    evaluated = sum(1 for kind in kinds if kind != "cached")
    cached = len(kinds) - evaluated
    accounted = max(1, len(kinds))

    cache_dir = os.path.join(campaign_dir, CACHE_DIR_NAME)
    cache = ResultCache(cache_dir) if os.path.isdir(cache_dir) else None

    return CampaignReport(
        campaign_dir=campaign_dir,
        status=status,
        accounting_consistent=consistent,
        events=len(events),
        torn_bytes=torn,
        start_t=start_t,
        end_t=end_t,
        duration_s=duration,
        completions=evaluated,
        throughput=evaluated / duration if duration > 0 else 0.0,
        latency=_latency_summary(samples),
        rates={
            "cache_hit": cached / accounted,
            "retry": status["retried"] / accounted,
            "timeout": status["timeouts"] / accounted,
        },
        workers=_fold_workers(
            WorkQueue(campaign_dir).lease_journal_paths()
        ),
        objectives=list(
            objectives if objectives else _meta_objectives(state.meta)
        ),
        pareto=_fold_pareto(
            tail,
            cache,
            state.meta,
            list(objectives if objectives else _meta_objectives(state.meta)),
            pareto_samples,
        ),
    )
