"""Jobs: one evaluation point, keyed by a stable content hash.

A :class:`Job` pairs a *target* (the registered evaluator name, e.g.
``"vaet-memory"``) with a *spec* — a JSON-ready dict that fully
determines the evaluation (configs via their ``to_dict()`` forms, seeds,
sample counts).  The job key is the SHA-256 of the canonical JSON of
both, so identical design points hash identically across processes and
runs: the key is the cache address and the source of per-job RNG seeds.
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional


def canonical_json(value: Any) -> str:
    """Serialise to the canonical JSON form used for hashing.

    Keys are sorted and separators fixed; floats rely on ``repr``
    round-tripping (exact for IEEE doubles).  Non-JSON types raise —
    specs must be built from ``to_dict()`` output, not live objects.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_key(target: str, spec: Mapping) -> str:
    """SHA-256 hex digest identifying one (target, spec) evaluation."""
    payload = "%s\n%s" % (target, canonical_json(spec))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Job:
    """One schedulable evaluation.

    Attributes:
        target: Registered evaluator name (see ``repro.dse.runner``).
        spec: JSON-ready evaluation spec.
        reseed: Retry generation (0 = first attempt).  Deliberately
            excluded from the content key — a retried point keeps its
            cache address and journal identity — but folded into the
            derived RNG seed so each retry samples a fresh stream.
        batch_size: Scheduling hint: executors may evaluate up to this
            many same-target jobs per worker invocation (amortising
            per-point setup and dispatch).  Like ``reseed``, excluded
            from the content key — batching changes *how* a point is
            evaluated, never what it is — and it does not feed the
            seed, so batched and unbatched runs draw identical streams.
        deadline: Per-evaluation wall-clock budget [s]; ``0`` means
            unbounded.  An evaluation that exceeds it is killed and
            recorded as an ``EvaluationTimeout`` failure (retryable and
            quarantinable like any other failure).  Excluded from the
            content key and the seed for the same reason as
            ``batch_size``: a deadline bounds *how long* a point may
            run, never what it computes.
    """

    target: str
    spec: Mapping
    reseed: int = 0
    batch_size: int = 0
    deadline: float = 0.0

    def __post_init__(self) -> None:
        # Freeze the key eagerly: it validates the spec is hashable
        # JSON *now*, at submission, not inside a worker.
        object.__setattr__(self, "_key", content_key(self.target, self.spec))

    @property
    def key(self) -> str:
        """Stable content hash of (target, spec)."""
        return self._key

    @property
    def fidelity(self) -> str:
        """Evaluation fidelity this job was addressed at.

        Multi-fidelity campaigns (:mod:`repro.dse.fidelity`) stamp
        ``"fidelity"`` into the spec, so it participates in the content
        key — a screening estimate and a full Monte-Carlo evaluation of
        the same design point can never collide in the cache or the
        journal.  Plain campaigns default to ``"high"``.
        """
        return str(self.spec.get("fidelity", "high"))

    @property
    def seed(self) -> int:
        """Deterministic per-job RNG seed derived from the key.

        A pure function of the job content (plus the retry generation),
        so serial, parallel and cached executions of the same point are
        bit-identical, while retries draw decorrelated streams.
        """
        if self.reseed:
            salted = "%s#retry%d" % (self.key, self.reseed)
            digest = hashlib.sha256(salted.encode("utf-8")).hexdigest()
            return int(digest[:16], 16)
        return int(self.key[:16], 16)


@dataclass
class JobResult:
    """Outcome of one job.

    Attributes:
        job: The evaluated job.
        ok: False if the evaluator raised (failure isolation — the
            campaign continues; see ``error``).
        result: Evaluator output dict (None on failure).
        error: Stringified exception on failure.
        elapsed: Evaluation wall-clock [s] (0 for cache hits).
        from_cache: True if served from the result cache.
        attempts: Evaluator invocations behind this outcome, including
            journaled attempts from earlier runs (1 for cache hits and
            untried points).
    """

    job: Job
    ok: bool
    result: Optional[Dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    from_cache: bool = False
    attempts: int = 1
