"""repro.dse: parallel, cached, cross-layer design-space exploration.

The engine behind the paper's pre-fabrication exploration claim, as a
subsystem every layer plugs into:

* :mod:`repro.dse.space` — declarative :class:`ParameterSpace` (grid and
  latin-hypercube sampling over named axes);
* :mod:`repro.dse.jobs` — content-hash keyed :class:`Job` records;
* :mod:`repro.dse.cache` — on-disk JSON :class:`ResultCache` (identical
  re-runs are lookups, not simulations);
* :mod:`repro.dse.runner` — multiprocessing :class:`CampaignRunner` with
  chunked scheduling, content-derived seeds and failure isolation;
* :mod:`repro.dse.pareto` — multi-objective frontier extraction;
* :mod:`repro.dse.campaign` — :func:`explore_memory` (VAET-STT) and
  :func:`explore_system` (MAGPIE) entry points.

``DesignSpaceExplorer.sweep_subarrays`` and ``MagpieFlow.run`` are thin
wrappers over this engine.
"""

from repro.dse.cache import ResultCache
from repro.dse.jobs import Job, JobResult, canonical_json, content_key
from repro.dse.pareto import Objective, dominance_ranks, dominates, pareto_front
from repro.dse.runner import (
    MEMORY_TARGET,
    SYSTEM_TARGET,
    CampaignRunner,
    get_target,
    register_target,
)
from repro.dse.space import Axis, ParameterSpace
from repro.dse.campaign import (
    MemoryCampaignResult,
    SystemCampaignResult,
    evaluate_memory_point,
    evaluate_system_point,
    explore_memory,
    explore_system,
    memory_point_spec,
    system_point_spec,
)

__all__ = [
    "Axis",
    "ParameterSpace",
    "Job",
    "JobResult",
    "canonical_json",
    "content_key",
    "ResultCache",
    "CampaignRunner",
    "MEMORY_TARGET",
    "SYSTEM_TARGET",
    "register_target",
    "get_target",
    "Objective",
    "dominates",
    "dominance_ranks",
    "pareto_front",
    "MemoryCampaignResult",
    "SystemCampaignResult",
    "explore_memory",
    "explore_system",
    "evaluate_memory_point",
    "evaluate_system_point",
    "memory_point_spec",
    "system_point_spec",
]
