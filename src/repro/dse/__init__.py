"""repro.dse: parallel, cached, cross-layer design-space exploration.

The engine behind the paper's pre-fabrication exploration claim, as a
subsystem every layer plugs into:

* :mod:`repro.dse.space` — declarative :class:`ParameterSpace` (grid and
  latin-hypercube sampling over named axes);
* :mod:`repro.dse.jobs` — content-hash keyed :class:`Job` records;
* :mod:`repro.dse.cache` — on-disk JSON :class:`ResultCache` (identical
  re-runs are lookups, not simulations);
* :mod:`repro.dse.runner` — :class:`CampaignRunner` with streaming
  execution (:meth:`~repro.dse.runner.CampaignRunner.run_iter` +
  :class:`~repro.dse.runner.Progress` callbacks), chunked scheduling,
  content-derived seeds and failure isolation;
* :mod:`repro.dse.executors` — pluggable execution backends behind the
  :class:`Executor` protocol: :class:`SerialExecutor`,
  :class:`ProcessPoolExecutor`, and :class:`WorkerPullExecutor` — N
  independent ``python -m repro.dse worker`` processes (any host that
  mounts the campaign directory) leasing points through journal-backed
  claim events with heartbeat + expiry reclaim;
* :mod:`repro.dse.net` — campaign-as-a-service: a TCP
  :class:`~repro.dse.net.CampaignServer` leasing points to
  ``worker --connect host:port`` clients on hosts with *no* shared
  mount (:class:`~repro.dse.net.NetworkExecutor`), plus a
  :class:`~repro.dse.net.Supervisor` that respawns and autoscales a
  local worker fleet against queue depth;
* :mod:`repro.dse.shard` — :class:`ShardedResultCache` fan-out and
  crash-safe, idempotent :func:`merge_caches` over multi-writer cache
  directories;
* :mod:`repro.dse.journal` — append-only JSONL event log with torn-line
  recovery and snapshot compaction (O(1) journal I/O per point);
* :mod:`repro.dse.retry` — :class:`RetryPolicy`: budgeted per-point
  retries with content-derived reseeding and flaky-point quarantine;
* :mod:`repro.dse.checkpoint` — :class:`CampaignState` journals behind
  the resumable :func:`run_memory_campaign` / :func:`run_system_campaign`
  entry points (legacy atomic-JSON journals upgrade transparently);
* :mod:`repro.dse.adaptive` — successive-halving/zoom
  :class:`AdaptiveSampler` (``sampler="adaptive"`` campaigns);
* :mod:`repro.dse.surrogate` — model-based :class:`SurrogateSampler`
  (``sampler="surrogate"``): a TPE-style good/bad density-ratio model
  over the full space, pure numpy, deterministic in its seed;
* :mod:`repro.dse.fidelity` — multi-fidelity ladder
  (``fidelity="ladder"`` memory campaigns): the analytic NVSim
  estimate screens every point, only the frontier band pays the full
  Monte-Carlo evaluation;
* :mod:`repro.dse.pareto` — multi-objective frontier extraction;
* :mod:`repro.dse.analytics` — pure read-side campaign analytics:
  :func:`~repro.dse.analytics.build_report` replays the journal, the
  claim journals and the result cache into a
  :class:`~repro.dse.analytics.CampaignReport` (latency percentiles,
  worker utilization, cache/retry/timeout rates, Pareto-front
  evolution) — ``python -m repro.dse analyze <dir>``;
* :mod:`repro.dse.chaos` — deterministic fault injection
  (:class:`~repro.dse.chaos.FaultPlane`) at the engine's persistence
  and network seams, plus the :class:`~repro.dse.chaos.InvariantChecker`
  that replays a campaign directory and asserts its conservation laws;
* :mod:`repro.dse.campaign` — :func:`explore_memory` (VAET-STT) and
  :func:`explore_system` (MAGPIE) entry points.

``DesignSpaceExplorer.sweep_subarrays`` and ``MagpieFlow.run`` are thin
wrappers over this engine, and ``python -m repro.dse`` drives
describe/run/resume/status/analyze campaigns from the command line.
"""

from repro.dse.adaptive import (
    AdaptiveRound,
    AdaptiveSampler,
    AdaptiveTrace,
    score_records,
)
from repro.dse.analytics import (
    CampaignReport,
    ParetoSample,
    WorkerUtilization,
    build_report,
)
from repro.dse.cache import ResultCache
from repro.dse.chaos import (
    ChaosCrash,
    ChaosDrop,
    Fault,
    FaultPlane,
    InvariantChecker,
    Schedule,
    seeded_schedule,
)
from repro.dse.fidelity import (
    FIDELITY_MODES,
    LOWFI_MEMORY_TARGET,
    FidelityTrace,
    evaluate_memory_lowfi,
    lowfi_twin,
    promotion_indices,
    run_ladder,
)
from repro.dse.surrogate import SurrogateSampler, evaluations_to_target
from repro.dse.checkpoint import (
    JOURNAL_NAME,
    LEGACY_JOURNAL_NAME,
    CampaignState,
    campaign_key,
    journal_path,
    run_checkpointed,
)
from repro.dse.executors import (
    CHAOS_TARGET,
    EXECUTOR_NAMES,
    SELFTEST_TARGET,
    Executor,
    LeaseTable,
    ProcessPoolExecutor,
    SerialExecutor,
    WorkerPullExecutor,
    WorkQueue,
    make_executor,
    run_worker,
)
from repro.dse.jobs import Job, JobResult, canonical_json, content_key
from repro.dse.journal import JOURNAL_VERSION, JsonlJournal, read_events
from repro.dse.retry import RetryPolicy
from repro.dse.shard import ShardedResultCache, merge_caches, shard_index
from repro.dse.pareto import (
    Objective,
    dominance_ranks,
    dominates,
    hypervolume_proxy,
    objective_bounds,
    pareto_front,
    update_front,
)
from repro.dse.runner import (
    MEMORY_TARGET,
    SYSTEM_TARGET,
    TIMEOUT_ERROR,
    WORKERS_ENV,
    CampaignRunner,
    Progress,
    default_workers,
    get_batch_target,
    get_target,
    get_target_deadline,
    is_timeout_error,
    register_batch_target,
    register_target,
    timeout_error,
)
from repro.dse.net import (
    CampaignServer,
    NetworkExecutor,
    Supervisor,
    parse_connect,
    run_network_worker,
)
from repro.dse.space import Axis, ParameterSpace
from repro.dse.campaign import (
    MemoryCampaignResult,
    SystemCampaignResult,
    evaluate_memory_batch,
    evaluate_memory_point,
    evaluate_system_point,
    explore_memory,
    explore_system,
    memory_point_spec,
    run_memory_campaign,
    run_system_campaign,
    system_point_spec,
)

__all__ = [
    "Axis",
    "ParameterSpace",
    "Job",
    "JobResult",
    "canonical_json",
    "content_key",
    "ResultCache",
    "ShardedResultCache",
    "shard_index",
    "merge_caches",
    "CampaignRunner",
    "Executor",
    "EXECUTOR_NAMES",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "WorkerPullExecutor",
    "WorkQueue",
    "LeaseTable",
    "make_executor",
    "run_worker",
    "CampaignServer",
    "NetworkExecutor",
    "Supervisor",
    "parse_connect",
    "run_network_worker",
    "SELFTEST_TARGET",
    "CHAOS_TARGET",
    "Progress",
    "default_workers",
    "WORKERS_ENV",
    "MEMORY_TARGET",
    "SYSTEM_TARGET",
    "TIMEOUT_ERROR",
    "timeout_error",
    "is_timeout_error",
    "get_target_deadline",
    "register_target",
    "get_target",
    "register_batch_target",
    "get_batch_target",
    "ChaosCrash",
    "ChaosDrop",
    "Fault",
    "FaultPlane",
    "InvariantChecker",
    "Schedule",
    "seeded_schedule",
    "CampaignState",
    "campaign_key",
    "journal_path",
    "run_checkpointed",
    "JOURNAL_NAME",
    "LEGACY_JOURNAL_NAME",
    "JOURNAL_VERSION",
    "JsonlJournal",
    "read_events",
    "RetryPolicy",
    "AdaptiveRound",
    "AdaptiveSampler",
    "AdaptiveTrace",
    "score_records",
    "SurrogateSampler",
    "evaluations_to_target",
    "FIDELITY_MODES",
    "LOWFI_MEMORY_TARGET",
    "FidelityTrace",
    "evaluate_memory_lowfi",
    "lowfi_twin",
    "promotion_indices",
    "run_ladder",
    "Objective",
    "dominates",
    "dominance_ranks",
    "pareto_front",
    "update_front",
    "hypervolume_proxy",
    "objective_bounds",
    "CampaignReport",
    "ParetoSample",
    "WorkerUtilization",
    "build_report",
    "MemoryCampaignResult",
    "SystemCampaignResult",
    "explore_memory",
    "explore_system",
    "run_memory_campaign",
    "run_system_campaign",
    "evaluate_memory_point",
    "evaluate_memory_batch",
    "evaluate_system_point",
    "memory_point_spec",
    "system_point_spec",
]
