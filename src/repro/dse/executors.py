"""Pluggable campaign executors: one campaign, many cooperating processes.

The :class:`~repro.dse.runner.CampaignRunner` needs exactly one thing
from its execution backend: *given a batch of unique jobs, yield
``(job, outcome)`` pairs in completion order*.  That seam is the
:class:`Executor` protocol, with three implementations:

* :class:`SerialExecutor` — evaluate lazily in-process, one job per
  pull (the historic ``workers=1`` path: no pool, no pickling);
* :class:`ProcessPoolExecutor` — fan out over a ``multiprocessing``
  pool with ``imap_unordered`` (the historic parallel path, refactored
  out of ``CampaignRunner._imap``);
* :class:`WorkerPullExecutor` — publish jobs as task files in the
  campaign directory and let N *independent* worker processes
  (``python -m repro.dse worker <campaign-dir>``) pull, lease, evaluate
  and report them.  Workers on any host that mounts the directory
  cooperate on one campaign; the coordinating ``run``/``resume``
  process only aggregates.

Worker-pull protocol (everything lives under ``<campaign-dir>/work/``)::

    work/
    ├── tasks/<key>-<reseed>.json     # one pending task per file
    ├── results/<key>-<reseed>.json   # one outcome per file (atomic rename)
    ├── leases/<worker-id>.jsonl      # per-worker claim journals
    └── stop                          # sentinel: workers exit

* **claim events, not locks** — each worker appends ``claim`` /
  ``heartbeat`` / ``done`` / ``release`` events to its *own* JSONL
  journal (single writer per file, so no locking is ever needed) and
  derives the global lease state by folding *all* journals through the
  deterministic :class:`LeaseTable`;
* **lease + heartbeat + expiry** — a claim holds a task for
  ``lease_ttl`` seconds; a background heartbeat extends it while the
  evaluation runs; a worker that dies stops heartbeating, its lease
  expires, and any surviving worker reclaims the task — a killed
  worker never loses a point;
* **benign races** — two workers that claim simultaneously both
  re-read the journals and agree on the winner (the fold is
  deterministic).  In the tiny window where both believe they won, the
  point is evaluated twice: results are content-hash keyed and
  last-writer-wins identical, so the collision is harmless by design.

Evaluated results land in the shared campaign
:class:`~repro.dse.cache.ResultCache` *and* in a per-task outcome file,
so a coordinator killed mid-campaign loses nothing the workers
finished while it was gone.
"""

import hashlib
import json
import logging
import os
import socket
import subprocess
import sys
import threading
import time
from typing import Collection, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dse import chaos
from repro.dse.cache import ResultCache
from repro.dse.jobs import Job
from repro.dse.journal import atomic_write_json
from repro.dse.runner import (
    _execute,
    _execute_batch,
    _execute_batch_indexed,
    _execute_indexed,
    default_workers,
    execute_batch_tasks,
    register_target,
)

logger = logging.getLogger(__name__)

#: One evaluation outcome: (ok, result, error, elapsed).
Outcome = Tuple[bool, Optional[Dict], Optional[str], float]

#: Executor names understood by :func:`make_executor` and the CLI.
EXECUTOR_NAMES = ("serial", "pool", "worker-pull", "network")

#: Conventional cache directory inside a campaign directory.
CACHE_DIR_NAME = "cache"

#: Conventional worker-pull queue directory inside a campaign directory.
WORK_DIR_NAME = "work"

#: Registered name of the synthetic self-test evaluator below.
SELFTEST_TARGET = "dse-selftest"


class Executor:
    """Protocol: turn a batch of unique jobs into completion-ordered outcomes.

    The runner calls :meth:`imap` once per execution round (initial
    submission plus one call per retry round) and :meth:`close` once
    the campaign is over.  Implementations must yield every job exactly
    once, in whatever order evaluations complete.
    """

    def imap(self, jobs: Sequence[Job]) -> Iterator[Tuple[Job, Outcome]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _chunk_jobs(jobs: Sequence[Job]) -> List[List[Job]]:
    """Group jobs into same-target chunks bounded by their batch hints.

    A job with ``batch_size > 1`` joins the previous chunk while that
    chunk's capacity (its first job's hint) allows and the target
    matches; everything else — unhinted jobs included — opens a
    singleton chunk, so unbatched campaigns chunk exactly as before.
    """
    chunks: List[List[Job]] = []
    for job in jobs:
        capacity = int(chunks[-1][0].batch_size) if chunks else 0
        if (
            chunks
            and job.batch_size > 1
            and capacity > 1
            and len(chunks[-1]) < capacity
            and chunks[-1][0].target == job.target
        ):
            chunks[-1].append(job)
        else:
            chunks.append([job])
    return chunks


class SerialExecutor(Executor):
    """Evaluate in-process, lazily, one job per pull (no pool, no pickling).

    Jobs carrying a ``batch_size`` hint evaluate in same-target chunks
    through the registered batch twin (one pull per chunk)."""

    def imap(self, jobs: Sequence[Job]) -> Iterator[Tuple[Job, Outcome]]:
        for chunk in _chunk_jobs(jobs):
            if len(chunk) == 1:
                job = chunk[0]
                yield job, _execute(
                    (job.target, dict(job.spec), job.seed, job.deadline)
                )
                continue
            outcomes = _execute_batch([
                (job.target, dict(job.spec), job.seed, job.deadline)
                for job in chunk
            ])
            for job, outcome in zip(chunk, outcomes):
                yield job, outcome


class ProcessPoolExecutor(Executor):
    """Fan out over a ``multiprocessing`` pool (``imap_unordered``).

    Args:
        workers: Pool size; ``None`` uses ``REPRO_DSE_WORKERS`` when
            set, else the CPU count.
        chunksize: Pool chunk size; default balances ~4 chunks per
            worker to amortise dispatch without starving the pool.
    """

    def __init__(self, workers: Optional[int] = None, chunksize: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None else default_workers()
        self.chunksize = chunksize

    def imap(self, jobs: Sequence[Job]) -> Iterator[Tuple[Job, Outcome]]:
        jobs = list(jobs)
        if not jobs:
            return
        import multiprocessing

        chunks = _chunk_jobs(jobs)
        if len(chunks) < len(jobs):
            # Batched: ship whole chunks so each pool worker evaluates
            # its chunk through the target's batch twin.  The chunk is
            # already the dispatch-amortising unit, so pool chunksize
            # stays 1 to keep completion streaming fine-grained.
            payloads = []
            position = 0
            for chunk in chunks:
                indices = tuple(range(position, position + len(chunk)))
                position += len(chunk)
                payloads.append(
                    (
                        indices,
                        [
                            (job.target, dict(job.spec), job.seed, job.deadline)
                            for job in chunk
                        ],
                    )
                )
            with multiprocessing.Pool(self.workers) as pool:
                for positions, outcomes in pool.imap_unordered(
                    _execute_batch_indexed, payloads, chunksize=1
                ):
                    for position, outcome in zip(positions, outcomes):
                        yield jobs[position], outcome
            return
        payloads = [
            (position, job.target, dict(job.spec), job.seed, job.deadline)
            for position, job in enumerate(jobs)
        ]
        chunksize = self.chunksize or max(1, len(payloads) // (self.workers * 4))
        # Abandoning the generator mid-flight (consumer exception) tears
        # the pool down via its context manager, so no workers leak.
        with multiprocessing.Pool(self.workers) as pool:
            for position, outcome in pool.imap_unordered(
                _execute_indexed, payloads, chunksize=chunksize
            ):
                yield jobs[position], outcome


# -- lease bookkeeping ---------------------------------------------------


class LeaseTable:
    """Deterministic fold of claim events into current task ownership.

    The worker-pull protocol has no lock server: every worker appends
    claim events to its own journal and *derives* who owns what by
    folding the merged event stream through this table.  The fold is a
    pure function of the event set (events are sorted by
    ``(t, worker, seq)`` before replay), so every process that sees the
    same journals agrees on the same owners.

    Rules (all times come from the events, queries pass ``now``):

    * ``claim`` succeeds if the task is unowned, its current lease has
      expired, or the claimant already owns it; it is ignored for
      completed tasks;
    * ``heartbeat`` extends the holder's lease; a non-holder's
      heartbeat is ignored (its lease was reclaimed in between);
    * ``release`` frees the task if the releasing worker holds it;
    * ``done`` marks the task completed (and frees the lease) — it is
      never claimable again unless a ``reopen`` follows;
    * ``reopen`` un-completes a task (any participant may append it:
      the coordinator does, after quarantining a torn result file).
    """

    def __init__(self):
        #: task -> (worker, lease expiry time)
        self.leases: Dict[str, Tuple[str, float]] = {}
        #: tasks completed by some worker (not claimable until reopened).
        self.completed = set()
        #: task -> timestamp of the latest folded ``done`` event.  A
        #: ``reopen`` is causal (its author *observed* the done), so it
        #: must be stamped after this time even when the observing
        #: host's clock lags — see :meth:`WorkerPullExecutor._reopen`.
        self.completed_at: Dict[str, float] = {}
        #: task -> timestamp of the latest folded ``reopen`` event —
        #: claims bump past it the same way (a claim on a reopened
        #: task observed the reopen, so sorting after it is causal
        #: even when the claimant's clock lags the reopener's).
        self.reopened_at: Dict[str, float] = {}

    def owner(self, task: str, now: float) -> Optional[str]:
        """The worker holding an unexpired lease on ``task``, or None."""
        lease = self.leases.get(task)
        if lease is None or now >= lease[1]:
            return None
        return lease[0]

    def expires(self, task: str) -> Optional[float]:
        """When the current lease (if any) expires."""
        lease = self.leases.get(task)
        return None if lease is None else lease[1]

    def claim(self, task: str, worker: str, t: float, ttl: float) -> bool:
        if task in self.completed:
            return False
        holder = self.owner(task, t)
        if holder is not None and holder != worker:
            return False
        self.leases[task] = (worker, t + ttl)
        return True

    def heartbeat(self, task: str, worker: str, t: float, ttl: float) -> bool:
        lease = self.leases.get(task)
        if task in self.completed or lease is None or lease[0] != worker:
            return False
        self.leases[task] = (worker, t + ttl)
        return True

    def release(self, task: str, worker: str) -> bool:
        lease = self.leases.get(task)
        if lease is None or lease[0] != worker:
            return False
        del self.leases[task]
        return True

    def done(self, task: str, worker: str, t: float = 0.0) -> None:
        self.completed.add(task)
        self.completed_at[task] = max(self.completed_at.get(task, 0.0), t)
        self.leases.pop(task, None)

    def reopen(self, task: str, t: float = 0.0) -> None:
        self.completed.discard(task)
        self.reopened_at[task] = max(self.reopened_at.get(task, 0.0), t)
        self.leases.pop(task, None)

    def apply(self, event: Dict) -> None:
        """Fold one journal event (unknown kinds are skipped)."""
        kind = event.get("event")
        task = event.get("task")
        worker = event.get("worker")
        t = float(event.get("t", 0.0))
        ttl = float(event.get("ttl", 0.0))
        if task is None or worker is None:
            return
        if kind == "claim":
            self.claim(task, worker, t, ttl)
        elif kind == "heartbeat":
            self.heartbeat(task, worker, t, ttl)
        elif kind == "release":
            self.release(task, worker)
        elif kind == "done":
            self.done(task, worker, t)
        elif kind == "reopen":
            self.reopen(task, t)

    @classmethod
    def replay(cls, events: Sequence[Dict]) -> "LeaseTable":
        """Fold an unordered event set deterministically."""
        table = cls()
        ordered = sorted(
            events,
            key=lambda e: (
                float(e.get("t", 0.0)),
                str(e.get("worker", "")),
                int(e.get("seq", 0)),
            ),
        )
        for event in ordered:
            table.apply(event)
        return table


class LeaseJournal:
    """One worker's append-only claim journal (single writer, no locks).

    Appends are flushed per event; a torn final line (worker killed
    mid-append) is simply skipped by readers — losing a heartbeat can
    only *shorten* a lease, never corrupt the protocol.
    """

    def __init__(self, path: str, worker: str):
        self.path = str(path)
        self.worker = str(worker)
        self._seq = 0
        self._last_t = 0.0
        self._lock = threading.Lock()
        self._repaired = False

    def _repair_tail(self) -> None:
        """Terminate a torn final line before the first new append.

        Only reachable when a worker restarts under an explicit
        ``--id`` and its previous life died mid-write; without the
        newline the next event would fuse with the fragment and both
        lines would be skipped by readers.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                terminated = handle.read(1) == b"\n"
        except (OSError, ValueError):
            return  # absent or empty: nothing to repair
        if not terminated:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def append(self, event: Dict) -> None:
        with self._lock:
            if not self._repaired:
                self._repair_tail()
                self._repaired = True
            self._seq += 1
            event = dict(event, worker=self.worker, seq=self._seq)
            event.setdefault("t", time.time())
            # Timestamps within one journal must be monotone: a claim
            # stamped into the future (causally bumped past a skewed
            # ``done``) would otherwise be followed by heartbeats that
            # sort *before* it and get discarded in the fold.
            event["t"] = max(event["t"], self._last_t + 1e-6)
            self._last_t = event["t"]
            line = json.dumps(event, separators=(",", ":")) + "\n"
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            chaos.fire("lease.append", path=self.path, worker=self.worker)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
            chaos.fire("lease.appended", path=self.path, worker=self.worker)

    def claim(self, task: str, ttl: float) -> None:
        self.append({"event": "claim", "task": task, "ttl": float(ttl)})

    def heartbeat(self, task: str, ttl: float) -> None:
        self.append({"event": "heartbeat", "task": task, "ttl": float(ttl)})

    def release(self, task: str) -> None:
        self.append({"event": "release", "task": task})

    def done(self, task: str) -> None:
        self.append({"event": "done", "task": task})

    def reopen(self, task: str) -> None:
        self.append({"event": "reopen", "task": task})


def read_lease_events(path: str) -> List[Dict]:
    """Parse one lease journal, skipping torn/unparseable lines."""
    events: List[Dict] = []
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return events
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8", errors="replace"))
        except ValueError:
            continue  # torn append: at worst a lost heartbeat
        if isinstance(event, dict):
            events.append(event)
    return events


def read_lease_tail(path: str, offset: int = 0) -> Tuple[List[Dict], int]:
    """Parse the complete events after ``offset``; return the new offset.

    The incremental half of the applied-watermark fold: only fully
    newline-terminated lines are consumed, so the returned offset is
    always a line boundary.  A torn final line (its writer died
    mid-append, or the append is racing this read) stays unconsumed —
    the next tail read picks it up once the newline lands, or never
    does for a dead worker (at worst a lost heartbeat).  Unparseable
    *terminated* lines are skipped but consumed, exactly as
    :func:`read_lease_events` skips them.
    """
    events: List[Dict] = []
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            raw = handle.read()
    except (OSError, ValueError):
        return events, offset
    end = raw.rfind(b"\n")
    if end < 0:
        return events, offset
    for line in raw[:end].split(b"\n"):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8", errors="replace"))
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events, offset + end + 1


def _event_sort_key(event: Dict) -> Tuple[float, str, int]:
    """The canonical fold order: ``(t, worker, seq)`` (see replay())."""
    return (
        float(event.get("t", 0.0)),
        str(event.get("worker", "")),
        int(event.get("seq", 0)),
    )


class _Heartbeat:
    """Background thread extending lease(s) while an evaluation runs.

    Accepts one task id or a whole claimed chunk — a batch-claiming
    worker keeps every lease in its chunk alive with a single thread.

    A positive ``deadline`` caps how long the beats continue: once the
    evaluation has overrun its wall-clock budget the thread stops
    renewing, the lease lawfully expires ``ttl`` later, and surviving
    workers reclaim the task — the backstop for platforms where the
    in-process reaper cannot kill the stuck evaluation itself.
    """

    def __init__(
        self, journal: LeaseJournal, task, ttl: float, deadline: float = 0.0
    ):
        self._journal = journal
        self._tasks = [task] if isinstance(task, str) else list(task)
        self._ttl = float(ttl)
        self._deadline = float(deadline or 0.0)
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        # Beat at a third of the TTL so one missed beat never expires
        # a healthy worker's lease.
        while not self._stop.wait(self._ttl / 3.0):
            if (
                self._deadline
                and time.monotonic() - self._started > self._deadline
            ):
                return  # overran the deadline: let the lease expire
            for task in self._tasks:
                self._journal.heartbeat(task, self._ttl)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        if self._thread.is_alive():
            logger.warning(
                "heartbeat thread %r (worker %s, task(s) %s) did not stop "
                "within 5s; leaking it daemonised",
                self._thread.name,
                self._journal.worker,
                ",".join(self._tasks),
            )


# -- the work queue (shared by coordinator and workers) ------------------


#: Sentinel returned by :meth:`WorkQueue.read_result` for a quarantined
#: torn result file (distinct from "no result yet").
TORN_RESULT = object()



def task_id(job: Job) -> str:
    """The queue identity of one submission: content key + retry generation.

    Retries reuse the job's content key (same cache address) but carry a
    bumped ``reseed``, so each retry round is a distinct queue entry.
    """
    return "%s-%d" % (job.key, job.reseed)


class WorkQueue:
    """Filesystem layout and primitives of the worker-pull protocol.

    Both sides speak through this class: the coordinator publishes task
    files and consumes result files; workers scan tasks, fold lease
    journals, and publish results.  Every write is an atomic rename, so
    any number of processes (on any host mounting the directory) can
    participate without locks.
    """

    def __init__(self, campaign_dir: str):
        self.campaign_dir = str(campaign_dir)
        self.root = os.path.join(self.campaign_dir, WORK_DIR_NAME)
        self.tasks_dir = os.path.join(self.root, "tasks")
        self.results_dir = os.path.join(self.root, "results")
        self.leases_dir = os.path.join(self.root, "leases")
        self.stop_path = os.path.join(self.root, "stop")
        self.cache_dir = os.path.join(self.campaign_dir, CACHE_DIR_NAME)
        #: Applied watermarks: path -> [byte offset, events folded].
        #: Lease journals are append-only, so a journal that grew only
        #: needs its tail (bytes past the offset) parsed and folded —
        #: per-event fold cost stays flat as the history grows.
        self._watermarks: Dict[str, List[int]] = {}
        #: The incrementally folded table the watermarks describe.
        self._table: Optional[LeaseTable] = None
        #: Sort key of the last event folded into ``_table``.  A fresh
        #: tail event sorting *before* it (cross-journal clock skew
        #: surfacing between scans) voids the incremental fold — see
        #: :meth:`lease_table`.
        self._applied_key: Tuple[float, str, int] = (-1.0, "", -1)
        #: Fold telemetry: benches and tests assert ``full_refolds``
        #: stays 0 on the in-order fast path.
        self.fold_stats = {"folds": 0, "events_folded": 0, "full_refolds": 0}

    def ensure(self) -> None:
        for directory in (self.tasks_dir, self.results_dir, self.leases_dir):
            os.makedirs(directory, exist_ok=True)

    # -- stop sentinel --------------------------------------------------

    def request_stop(self) -> None:
        """Tell every worker polling this queue to exit."""
        self.ensure()
        with open(self.stop_path, "w") as handle:
            handle.write("%f\n" % time.time())

    def clear_stop(self) -> None:
        try:
            os.unlink(self.stop_path)
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_path)

    def stop_stamp(self) -> Optional[float]:
        """The stop sentinel's mtime, or None if absent.

        Workers snapshot this at startup and stop when it *changes*
        (appears, or is rewritten by a later ``request_stop``).
        Comparing stamps for identity instead of against a clock makes
        the protocol immune to cross-host clock and mtime-server skew:
        a sentinel already present at startup is a previous campaign's
        leftover and is ignored until someone writes a fresh one.
        """
        try:
            return os.path.getmtime(self.stop_path)
        except OSError:
            return None

    # -- tasks ----------------------------------------------------------

    def task_path(self, tid: str) -> str:
        return os.path.join(self.tasks_dir, tid + ".json")

    def result_path(self, tid: str) -> str:
        return os.path.join(self.results_dir, tid + ".json")

    def lease_path(self, worker: str) -> str:
        return os.path.join(self.leases_dir, worker + ".jsonl")

    def publish(self, job: Job) -> str:
        """Write one pending task file (idempotent); return its id.

        A job with a ``batch_size`` hint records it as the task's
        ``"batch"`` key — workers claiming such a task may lease up to
        that many more tasks in the same round trip and evaluate the
        chunk together.  A job's ``deadline`` rides along the same way:
        workers enforce it on the evaluation and stop heartbeating past
        it, so a stuck point can never pin a lease forever.
        """
        tid = task_id(job)
        path = self.task_path(tid)
        if not os.path.exists(path):
            record = {
                "task": tid,
                "key": job.key,
                "reseed": job.reseed,
                "target": job.target,
                "spec": dict(job.spec),
                "seed": job.seed,
            }
            if job.batch_size > 1:
                record["batch"] = int(job.batch_size)
            if job.deadline:
                record["deadline"] = float(job.deadline)
            atomic_write_json(path, record)
        return tid

    def pending_tasks(self) -> List[str]:
        """Ids of published tasks that have no result yet.

        Two directory listings total — never a per-task stat, which at
        10^4+ published tasks (and over NFS) would swamp every worker's
        poll loop with metadata round-trips.
        """
        try:
            names = os.listdir(self.tasks_dir)
        except OSError:
            return []
        finished = self.available_results()
        return [
            name[: -len(".json")]
            for name in sorted(names)
            if name.endswith(".json") and name[: -len(".json")] not in finished
        ]

    def read_task(self, tid: str) -> Optional[Dict]:
        try:
            with open(self.task_path(tid)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- results --------------------------------------------------------

    def publish_result(self, tid: str, outcome: Outcome, worker: str) -> None:
        ok, result, error, elapsed = outcome
        chaos.fire("queue.result", task=tid, worker=worker)
        atomic_write_json(
            self.result_path(tid),
            {
                "ok": ok,
                "result": result,
                "error": error,
                "elapsed": elapsed,
                "worker": worker,
            },
        )

    def read_result(self, tid: str):
        """Parse one outcome file.

        Returns the :data:`Outcome` tuple, ``None`` if no result has
        landed yet, or :data:`TORN_RESULT` after quarantining an
        unparseable file (renamed to ``*.corrupt``) — the caller must
        then ``reopen`` the task so a worker re-evaluates it.
        """
        path = self.result_path(tid)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except OSError:
            return None
        except ValueError:
            # A torn result must not wedge the queue: move it aside so
            # the task becomes claimable (and evaluable) again.
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                pass
            return TORN_RESULT
        return (
            bool(record.get("ok")),
            record.get("result"),
            record.get("error"),
            float(record.get("elapsed", 0.0)),
        )

    def available_results(self) -> set:
        """Ids of every landed result, from one directory listing."""
        try:
            names = os.listdir(self.results_dir)
        except OSError:
            return set()
        return {
            name[: -len(".json")] for name in names if name.endswith(".json")
        }

    def consume(self, tid: str) -> None:
        """Drop a task/result pair the coordinator has aggregated."""
        for path in (self.task_path(tid), self.result_path(tid)):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- leases ---------------------------------------------------------

    def lease_journal_paths(self) -> List[str]:
        """Sorted per-worker claim-journal paths (empty when none exist).

        Shared by the coordinator's folds, the chaos
        :class:`~repro.dse.chaos.InvariantChecker`, and the read-side
        analytics replay, so every consumer agrees on what counts as a
        lease journal.
        """
        try:
            names = sorted(os.listdir(self.leases_dir))
        except OSError:
            return []
        return [
            os.path.join(self.leases_dir, name)
            for name in names
            if name.endswith(".jsonl")
        ]

    def lease_events(self) -> List[Dict]:
        """Every claim event across every worker journal (full re-read).

        Diagnostic/verification surface: folds should go through
        :meth:`lease_table`, which only parses journal *tails* past its
        applied watermarks.
        """
        events: List[Dict] = []
        for path in self.lease_journal_paths():
            events.extend(read_lease_events(path))
        return events

    def watermarks(self) -> Dict[str, Tuple[int, int]]:
        """Applied watermark per journal: path -> (byte offset, events)."""
        return {
            path: (mark[0], mark[1]) for path, mark in self._watermarks.items()
        }

    def lease_table(self) -> LeaseTable:
        """Fold every journal into the current lease state.

        Incremental via applied watermarks: each scan stats every
        journal and parses only the bytes past that journal's
        watermark, applying the new events in canonical
        ``(t, worker, seq)`` order on top of the previous fold.  A scan
        while nothing grew (the common idle poll) is pure stats; a scan
        after appends costs only the appended tail — flat per event no
        matter how long the history gets.

        The incremental result is kept provably identical to the
        canonical full fold (:meth:`LeaseTable.replay` over the whole
        sorted event set): if any fresh event sorts *before* the last
        applied one — out-of-order arrival across journals, e.g. a
        claim causally stamped into the future by one worker landing
        before a slower worker's past-stamped events are scanned — the
        incremental fold is void and the table is rebuilt from offset
        zero (counted in ``fold_stats["full_refolds"]``).  A journal
        that shrank (manual truncation) triggers the same rebuild.

        Callers must treat the returned table as read-only; it is the
        same mutable object across calls, updated in place.
        """
        self.fold_stats["folds"] += 1
        if self._table is None:
            self._table = LeaseTable()
        fresh: List[Dict] = []
        for path in self.lease_journal_paths():
            mark = self._watermarks.get(path)
            if mark is None:
                mark = self._watermarks[path] = [0, 0]
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size < mark[0]:
                return self._full_refold()
            if size == mark[0]:
                continue
            events, offset = read_lease_tail(path, mark[0])
            mark[0] = offset
            mark[1] += len(events)
            fresh.extend(events)
        if not fresh:
            return self._table
        fresh.sort(key=_event_sort_key)
        if _event_sort_key(fresh[0]) < self._applied_key:
            return self._full_refold()
        for event in fresh:
            self._table.apply(event)
        self._applied_key = _event_sort_key(fresh[-1])
        self.fold_stats["events_folded"] += len(fresh)
        return self._table

    def _full_refold(self) -> LeaseTable:
        """Rebuild the fold from offset zero (the canonical sorted replay)."""
        self.fold_stats["full_refolds"] += 1
        self._watermarks = {}
        events: List[Dict] = []
        for path in self.lease_journal_paths():
            parsed, offset = read_lease_tail(path, 0)
            self._watermarks[path] = [offset, len(parsed)]
            events.extend(parsed)
        events.sort(key=_event_sort_key)
        self._table = table = LeaseTable()
        for event in events:
            table.apply(event)
        self._applied_key = (
            _event_sort_key(events[-1]) if events else (-1.0, "", -1)
        )
        self.fold_stats["events_folded"] += len(events)
        return table


# -- the worker side -----------------------------------------------------


def default_worker_id() -> str:
    """Host- and process-unique worker identity."""
    return "%s-%d" % (socket.gethostname(), os.getpid())


def _claim_order(tids: Sequence[str], worker: str) -> List[str]:
    """Per-worker deterministic shuffle so workers prefer different tasks."""
    return sorted(
        tids,
        key=lambda tid: hashlib.sha256(("%s|%s" % (tid, worker)).encode()).hexdigest(),
    )


def run_worker(
    campaign_dir: str,
    worker_id: Optional[str] = None,
    lease_ttl: float = 30.0,
    poll: float = 0.2,
    idle_timeout: Optional[float] = None,
    once: bool = False,
    max_tasks: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> int:
    """One worker-pull worker: claim, evaluate, report, repeat.

    Runs until the queue's ``stop`` sentinel appears, ``idle_timeout``
    seconds pass without claimable work, ``once`` drains the current
    queue, or ``max_tasks`` evaluations complete.

    Args:
        campaign_dir: Campaign directory (the coordinator's ``--dir``).
        worker_id: Stable identity for lease journals; default is
            ``<hostname>-<pid>``.
        lease_ttl: Seconds a claim lives without a heartbeat.
        poll: Seconds between queue scans when idle.
        idle_timeout: Exit after this long with nothing claimable
            (None = wait for the stop sentinel).
        once: Exit as soon as a scan finds nothing claimable.
        max_tasks: Exit after evaluating this many tasks.
        cache: Result store override (default: the campaign's
            ``cache/``) — successful evaluations are written here *and*
            to the per-task result file.

    Returns:
        Number of tasks this worker evaluated.
    """
    if lease_ttl <= 0:
        raise ValueError("lease_ttl must be > 0")
    queue = WorkQueue(campaign_dir)
    queue.ensure()
    worker = worker_id if worker_id is not None else default_worker_id()
    journal = LeaseJournal(queue.lease_path(worker), worker)
    store = cache if cache is not None else ResultCache(queue.cache_dir)
    evaluated = 0
    idle_since = time.monotonic()
    # Only obey stop sentinels that *change* after startup: a stale
    # sentinel left by a finished campaign must not kill workers
    # pre-started for the next one (the coordinator clears it at its
    # first batch, but workers may legitimately start earlier).  A
    # worker on an already-stopped queue winds down via idle_timeout.
    initial_stop = queue.stop_stamp()
    while True:
        current_stop = queue.stop_stamp()
        if current_stop is not None and current_stop != initial_stop:
            break
        if max_tasks is not None and evaluated >= max_tasks:
            break
        task = _claim_one(queue, journal, worker, lease_ttl)
        if task is None:
            if once:
                break
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            time.sleep(poll)
            continue
        idle_since = time.monotonic()
        # A task published with a "batch" hint invites this worker to
        # lease a whole chunk in one scan round and evaluate it through
        # the target's batch twin — same per-task results, leases and
        # result files, amortised claim/dispatch overhead.
        tasks = [task]
        claimed = {task["task"]}
        capacity = int(task.get("batch", 1) or 1)
        if max_tasks is not None:
            capacity = min(capacity, max_tasks - evaluated)
        while len(tasks) < capacity:
            extra = _claim_one(
                queue, journal, worker, lease_ttl, exclude=claimed
            )
            if extra is None:
                break
            tasks.append(extra)
            claimed.add(extra["task"])
        _evaluate_claimed(queue, journal, store, worker, lease_ttl, tasks)
        evaluated += len(tasks)
    return evaluated


def _evaluate_claimed(
    queue: WorkQueue,
    journal: LeaseJournal,
    store: ResultCache,
    worker: str,
    lease_ttl: float,
    tasks: Sequence[Dict],
) -> None:
    """Evaluate a claimed chunk and report every task in it.

    Cache hits are served without evaluation; the rest go through
    :func:`~repro.dse.runner.execute_batch_tasks` (per-point isolation,
    scalar fallback) under one heartbeat covering every lease in the
    chunk.  Each success is written to the shared cache *before* its
    result file is published, preserving the single-task durability
    ordering: a worker killed mid-chunk loses only unpublished work,
    which surviving workers reclaim at lease expiry.
    """
    outcomes: Dict[str, Outcome] = {}
    to_run: List[Dict] = []
    for task in tasks:
        cached = store.get(task["key"])
        if cached is not None and "result" in cached:
            # Another worker already evaluated this point durably (it
            # was SIGKILLed between its cache write and its result
            # file, or a duplicate claim raced) — a real evaluation is
            # minutes of Monte Carlo; serving the record is a file
            # read.
            outcomes[task["task"]] = (
                True, cached["result"], None,
                float(cached.get("elapsed", 0.0)),
            )
        else:
            to_run.append(task)
    if to_run:
        # The chunk's heartbeat budget is the sum of its members'
        # deadlines (they evaluate sequentially); any member without
        # one leaves the chunk unbounded, as before.
        deadlines = [float(task.get("deadline") or 0.0) for task in to_run]
        budget = sum(deadlines) if all(d > 0 for d in deadlines) else 0.0
        heartbeat = _Heartbeat(
            journal, [task["task"] for task in to_run], lease_ttl,
            deadline=budget,
        )
        try:
            evaluated = execute_batch_tasks(to_run)
        finally:
            heartbeat.stop()
        for task, outcome in zip(to_run, evaluated):
            ok, result, error, elapsed = outcome
            if ok:
                # The shared cache is the durable store of record: even
                # if the coordinator died, this evaluation is never
                # lost.
                store.put(
                    task["key"],
                    {
                        "target": task["target"],
                        "spec": task["spec"],
                        "result": result,
                        "elapsed": elapsed,
                    },
                )
            outcomes[task["task"]] = outcome
    for task in tasks:
        tid = task["task"]
        queue.publish_result(tid, outcomes[tid], worker)
        journal.done(tid)


def _claim_one(
    queue: WorkQueue,
    journal: LeaseJournal,
    worker: str,
    ttl: float,
    exclude: Collection[str] = (),
) -> Optional[Dict]:
    """Lease one claimable task, or None if nothing is available.

    Claim protocol: fold the journals, pick an unleased (or expired)
    task, append our claim, then fold *again* to confirm we won.  Two
    workers racing on the same task agree on the winner because the
    fold is deterministic over the same event set; in the narrow window
    where neither saw the other's claim, both evaluate — harmless,
    because results are content-keyed and identical.

    ``exclude`` lists task ids the caller already holds in the chunk it
    is assembling: the fold's self-reclaim rule ("the claimant already
    owns it") would otherwise hand the same task straight back while
    filling a batch.
    """
    pending = _claim_order(queue.pending_tasks(), worker)
    if not pending:
        return None
    table = queue.lease_table()
    for tid in pending:
        if tid in exclude:
            continue
        now = time.time()
        if tid in table.completed:
            # Result published, coordinator not yet caught up (it will
            # reopen the task if the result turns out torn).
            continue
        holder = table.owner(tid, now)
        if holder is not None and holder != worker:
            continue
        # A reopened task carries earlier ``done``/``reopen`` events in
        # the fold; a claim stamped by a lagging clock would sort
        # before them and be cancelled.  We observed both, so stamping
        # past whichever is latest is causally honest — see
        # WorkerPullExecutor._reopen.
        t = max(
            now,
            table.completed_at.get(tid, 0.0) + 2e-6,
            table.reopened_at.get(tid, 0.0) + 1e-6,
        )
        journal.append({"event": "claim", "task": tid, "ttl": float(ttl), "t": t})
        confirm = queue.lease_table()
        if confirm.owner(tid, time.time()) != worker:
            continue  # lost the race; try the next task
        task = queue.read_task(tid)
        if task is None:
            journal.release(tid)
            continue  # consumed (or torn) between scan and claim
        return task
    return None


# -- the coordinator side ------------------------------------------------


class WorkerStalled(RuntimeError):
    """The worker-pull queue made no progress within the timeout."""


class WorkerPullExecutor(Executor):
    """Aggregate results produced by independent worker processes.

    ``imap`` publishes each job as a task file under
    ``<campaign-dir>/work/`` and yields outcomes as result files
    appear — it never evaluates anything itself.  Workers are started
    separately (``python -m repro.dse worker <campaign-dir>``, on any
    host sharing the directory) or spawned locally with
    ``spawn_workers=N``.

    Args:
        campaign_dir: Directory shared with the workers.
        spawn_workers: Launch this many local worker subprocesses on
            first use (0 = workers are managed externally).  Workers
            that exited (idle timeout, crash) are relaunched at the
            next batch.
        lease_ttl: Lease TTL handed to spawned workers.
        poll: Seconds between result scans.
        timeout: Raise :class:`WorkerStalled` after this many seconds
            without a single new result (None = wait forever).
        spawn_idle_timeout: ``--idle-timeout`` handed to spawned
            workers, so a coordinator that dies without ``close()``
            (SIGKILL, OOM) leaves no orphans polling forever.  Must
            exceed any legitimate idle gap inside one campaign (retry
            backoffs, adaptive scoring between rounds); exited workers
            respawn on the next batch anyway.
    """

    def __init__(
        self,
        campaign_dir: str,
        spawn_workers: int = 0,
        lease_ttl: float = 30.0,
        poll: float = 0.05,
        timeout: Optional[float] = None,
        spawn_idle_timeout: float = 300.0,
    ):
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be >= 0")
        self.queue = WorkQueue(campaign_dir)
        self.spawn_workers = int(spawn_workers)
        self.lease_ttl = float(lease_ttl)
        self.poll = float(poll)
        self.timeout = timeout
        self.spawn_idle_timeout = spawn_idle_timeout
        self.procs: List[subprocess.Popen] = []
        self._closed = False
        self._last_spawn = None
        self._journal = LeaseJournal(
            self.queue.lease_path("coordinator-" + default_worker_id()),
            "coordinator-" + default_worker_id(),
        )

    def _reopen(self, tid: str, table: Optional[LeaseTable] = None) -> None:
        """Append a reopen stamped causally *after* the done it undoes.

        The fold orders events by timestamp, and this coordinator's
        clock may lag the worker that appended the ``done`` (NTP skew
        across hosts).  A reopen stamped earlier than the done would
        sort before it and be cancelled by it — leaving the task
        completed, unclaimable, and the queue wedged.  We observed the
        done, so stamping just past its recorded time is causally
        honest and immune to skew.
        """
        if table is None:
            table = self.queue.lease_table()
        t = time.time()
        done_t = table.completed_at.get(tid)
        if done_t is not None:
            t = max(t, done_t + 1e-6)
        self._journal.append({"event": "reopen", "task": tid, "t": t})

    @property
    def persist_root(self) -> str:
        """Cache root workers already write successful results to.

        A runner whose cache lives at this root can skip its own
        write-back: the record landed (durably, before the result file)
        on the worker side.
        """
        return self.queue.cache_dir

    def _spawn_command(self) -> List[str]:
        """The worker command line spawned locally (also the cheat
        sheet for starting one by hand on another host)."""
        cmd = [
            sys.executable, "-m", "repro.dse", "worker",
            self.queue.campaign_dir,
            "--ttl", str(self.lease_ttl),
            "--poll", str(max(self.poll, 0.01)),
        ]
        if self.spawn_idle_timeout is not None:
            # Orphan insurance: if this coordinator dies without
            # close(), the workers wind down on their own.
            cmd += ["--idle-timeout", str(self.spawn_idle_timeout)]
        return cmd

    def _spawn(self) -> None:
        """Top the local worker fleet back up to ``spawn_workers``.

        Rate-limited to one relaunch round per second so a worker that
        exits immediately cannot be respawned at poll frequency.
        """
        if not self.spawn_workers:
            return
        self.procs = [proc for proc in self.procs if proc.poll() is None]
        missing = self.spawn_workers - len(self.procs)
        if missing <= 0:
            return
        now = time.monotonic()
        if self._last_spawn is not None and now - self._last_spawn < 1.0:
            return
        self._last_spawn = now
        import repro

        # Workers must import this very checkout, wherever the
        # coordinator found it.
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        cmd = self._spawn_command()
        for _ in range(missing):
            self.procs.append(
                subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)
            )

    def imap(self, jobs: Sequence[Job]) -> Iterator[Tuple[Job, Outcome]]:
        jobs = list(jobs)
        if not jobs:
            return
        if self._closed:
            raise RuntimeError("executor is closed")
        self.queue.ensure()
        self.queue.clear_stop()  # a previous run's sentinel must not apply
        by_tid = {}
        for job in jobs:
            by_tid[self.queue.publish(job)] = job
        # Lease journals outlive runs: a resubmitted task (a failed
        # point re-run on resume, or a result consumed just before a
        # coordinator crash) may still carry a ``done`` event from a
        # previous life, which would block every claim forever.  A
        # published task with no result on disk is work by definition —
        # reopen it.
        table = self.queue.lease_table()
        for tid in by_tid:
            if tid in table.completed and not os.path.exists(
                self.queue.result_path(tid)
            ):
                self._reopen(tid, table)
        self._spawn()
        pending = set(by_tid)
        last_progress = time.monotonic()
        while pending:
            progressed = False
            # One directory listing per tick instead of one failed
            # open() per pending task: at 10^4+ points (and over NFS)
            # per-file ENOENT probes would swamp the coordinator.
            for tid in sorted(pending & self.queue.available_results()):
                outcome = self.queue.read_result(tid)
                if outcome is None:
                    continue
                if outcome is TORN_RESULT:
                    # Quarantined: reopen so a worker re-evaluates it.
                    self._reopen(tid)
                    continue
                pending.discard(tid)
                self.queue.consume(tid)
                progressed = True
                yield by_tid[tid], outcome
            if not pending:
                break
            now = time.monotonic()
            if progressed:
                last_progress = now
            elif self.timeout is not None and now - last_progress > self.timeout:
                raise WorkerStalled(
                    "no result for %.1f s; %d task(s) still pending "
                    "(are any workers running against %s?)"
                    % (self.timeout, len(pending), self.queue.root)
                )
            if self.spawn_workers and not any(
                p.poll() is None for p in self.procs
            ):
                # No spawned worker left alive.  A nonzero exit is a
                # worker failure: fail fast instead of crash-looping.
                # Clean exits are idle timeouts (e.g. every remaining
                # lease is held by externally-started workers on other
                # hosts) — relaunch, rate-limited, rather than abort a
                # campaign that may still be progressing elsewhere.
                if any(p.returncode != 0 for p in self.procs):
                    raise WorkerStalled(
                        "spawned worker(s) failed (exit codes %s) with "
                        "%d task(s) pending"
                        % ([p.returncode for p in self.procs], len(pending))
                    )
                self._spawn()
            time.sleep(self.poll)

    def close(self) -> None:
        """Stop the workers (sentinel first, then reap spawned ones)."""
        if self._closed:
            return
        self._closed = True
        self.queue.request_stop()
        for proc in self.procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        del self.procs[:]


#: Extra keyword options each named executor accepts (workers and
#: chunksize are dedicated parameters, not options).
_EXECUTOR_OPTIONS = {
    "serial": (),
    "pool": (),
    "worker-pull": (
        "spawn_workers", "lease_ttl", "poll", "timeout", "spawn_idle_timeout",
    ),
    "network": (
        "spawn_workers", "lease_ttl", "poll", "timeout", "spawn_idle_timeout",
        "host", "port",
    ),
}


def make_executor(
    name,
    campaign_dir: Optional[str] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    **options,
):
    """Build an executor from its CLI/spec name (instances pass through).

    Args:
        name: ``"serial"``, ``"pool"``, ``"worker-pull"``, ``"network"``,
            or an :class:`Executor` instance (returned unchanged).
        campaign_dir: Required for ``"worker-pull"`` and ``"network"``
            (the queue lives under it).
        workers / chunksize: Pool sizing for ``"pool"``.
        **options: Extra keyword arguments for the executor class
            (``spawn_workers``, ``lease_ttl``, ``timeout``, ...).

    Raises:
        ValueError: Unknown name, an option the named executor does not
            accept, or ``"worker-pull"`` without a campaign directory.
    """
    if isinstance(name, Executor) or hasattr(name, "imap"):
        if options:
            # Silently dropping these would leave the caller believing
            # (say) a tuned lease_ttl applies when it does not.
            raise ValueError(
                "executor option(s) %s cannot be applied to an executor "
                "instance; construct it with them instead"
                % ", ".join(sorted(options))
            )
        return name
    if name not in _EXECUTOR_OPTIONS:
        raise ValueError(
            "unknown executor %r; known: %s" % (name, list(EXECUTOR_NAMES))
        )
    unsupported = sorted(set(options) - set(_EXECUTOR_OPTIONS[name]))
    if unsupported:
        raise ValueError(
            "executor %r does not accept option(s) %s"
            % (name, ", ".join(unsupported))
        )
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return ProcessPoolExecutor(workers=workers, chunksize=chunksize)
    if campaign_dir is None:
        raise ValueError(
            "executor %r needs a campaign directory" % (name,)
        )
    if name == "network":
        from repro.dse.net import NetworkExecutor

        return NetworkExecutor(campaign_dir, **options)
    return WorkerPullExecutor(campaign_dir, **options)


# -- synthetic self-test evaluator ---------------------------------------


def _selftest_invocation(x) -> int:
    """Bump and return this point's cross-process invocation count.

    One marker file per point in the directory named by
    ``REPRO_DSE_SELFTEST_DIR``; each invocation appends one byte
    (``O_APPEND``), so the file size *is* the invocation count — across
    threads, processes and hosts sharing the directory.
    """
    scratch = os.environ.get("REPRO_DSE_SELFTEST_DIR")
    if not scratch:
        raise RuntimeError(
            "selftest: invocation counting needs REPRO_DSE_SELFTEST_DIR"
        )
    os.makedirs(scratch, exist_ok=True)
    marker = os.path.join(scratch, "count-%s" % (x,))
    with open(marker, "ab") as handle:
        handle.write(b"x")
        handle.flush()
    return os.path.getsize(marker)


def evaluate_selftest(spec, seed: int) -> Dict:
    """Cheap deterministic evaluator for conformance tests and benches.

    Spec knobs (all optional): ``x`` (the point; result value is
    ``2*x``), ``sleep_s`` (simulated evaluation cost), ``count``
    (record each invocation in the ``REPRO_DSE_SELFTEST_DIR``
    directory, so tests can prove zero re-evaluation across kills and
    executors), ``fail`` = ``"always"`` (deterministic failure),
    ``fail_first`` = N (flaky: the first N invocations fail; the
    count is the same cross-process marker ``count`` uses).
    """
    x = spec.get("x", 0)
    if spec.get("sleep_s"):
        time.sleep(float(spec["sleep_s"]))
    if spec.get("fail") == "always":
        raise RuntimeError("selftest: point %r always fails" % (x,))
    fail_first = int(spec.get("fail_first", 0))
    if fail_first or spec.get("count"):
        invocation = _selftest_invocation(x)
        if invocation <= fail_first:
            raise RuntimeError("selftest: point %r flaky failure" % (x,))
    return {"value": 2 * x, "cost": 100 - x, "seed": seed}


register_target(SELFTEST_TARGET, evaluate_selftest)


#: Registered name of the chaos twin of the self-test evaluator.
CHAOS_TARGET = "dse-chaos"


def evaluate_chaos(spec, seed: int) -> Dict:
    """Chaos twin of the self-test evaluator: injects evaluation faults.

    Driven by the spec's ``"chaos"`` knob — every other key behaves
    exactly as in :func:`evaluate_selftest`:

    * ``"hang"`` — sleep far past any plausible deadline (``chaos_s``,
      default 3600 s); only meaningful under a deadline, which reaps it;
    * ``"slow"`` — sleep ``chaos_s`` seconds (default 0.5), then
      evaluate normally;
    * ``"crash"`` — raise deterministically;
    * ``"exit"`` — kill the evaluating process with exit code
      ``chaos_code`` (default 17), simulating a wrong-exit evaluator;
    * ``"hang_first"`` / ``"crash_first"`` / ``"exit_first"`` — fault
      only the first ``chaos_n`` invocations (default 1), counted by
      the same cross-process marker files the self-test uses, so a
      reaped/retried point eventually succeeds on every executor.
    """
    mode = str(spec.get("chaos") or "")
    if mode:
        faulty = True
        if mode.endswith("_first"):
            first = int(spec.get("chaos_n", 1))
            invocation = _selftest_invocation("chaos-%s" % (spec.get("x", 0),))
            faulty = invocation <= first
            mode = mode[: -len("_first")]
        if faulty:
            if mode == "hang":
                time.sleep(float(spec.get("chaos_s", 3600.0)))
            elif mode == "slow":
                time.sleep(float(spec.get("chaos_s", 0.5)))
            elif mode == "crash":
                raise RuntimeError(
                    "chaos: injected crash at point %r" % (spec.get("x", 0),)
                )
            elif mode == "exit":
                os._exit(int(spec.get("chaos_code", 17)))
            else:
                raise ValueError("chaos: unknown fault mode %r" % (mode,))
    return evaluate_selftest(spec, seed)


register_target(CHAOS_TARGET, evaluate_chaos)
