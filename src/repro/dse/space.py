"""Declarative design spaces: named axes, grid and LHS sampling.

The paper's pitch is *pre-fabrication* design-space exploration: sweep
STT-MRAM organisations (VAET-STT, Sec. III) and hybrid-memory system
scenarios (MAGPIE, Sec. IV) before committing silicon.  A
:class:`ParameterSpace` names the axes of such a sweep — PDK node,
:class:`~repro.nvsim.config.MemoryConfig` knobs, reliability targets,
archsim scenarios, workloads — and enumerates points either exhaustively
(:meth:`ParameterSpace.grid`) or by latin-hypercube sampling
(:meth:`ParameterSpace.sample`) when the full grid is too large.

Axes hold *discrete* value lists (every knob in this repository is
discrete: power-of-two shapes, shipped PDK nodes, enum scenarios, target
ladders), so LHS here stratifies the index range of each axis.

For adaptive campaigns, :meth:`ParameterSpace.refine` implements the
zoom step of a successive-halving sampler: given scored points, it
returns a sub-space whose axes are windowed onto the value range the
best-scoring points occupy (see :mod:`repro.dse.adaptive`).
"""

import enum
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def plain_value(value):
    """JSON-able form of an axis value (enums by value).

    The single normalisation every consumer shares: grid/LHS points
    carry raw axis values (possibly enums), while points read back from
    a journal, a cache record, or ``canonical_json`` carry the
    serialised plain form.  Comparing through ``plain_value`` makes the
    two interchangeable.
    """
    if isinstance(value, enum.Enum):
        return value.value
    return value


@dataclass(frozen=True)
class Axis:
    """One named dimension of a design space.

    Attributes:
        name: Axis name; campaign builders map it onto a config field
            (e.g. ``subarray_rows``, ``wer_target``, ``node_nm``).
        values: The discrete values the axis can take, in sweep order.
    """

    name: str
    values: Tuple

    def __init__(self, name: str, values: Sequence):
        if not name:
            raise ValueError("axis name must be non-empty")
        values = tuple(values)
        if not values:
            raise ValueError("axis %r has no values" % name)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


class ParameterSpace:
    """An ordered collection of axes.

    Args:
        axes: Axis objects, or ``(name, values)`` pairs.

    Example::

        space = ParameterSpace()
        space.add("subarray_rows", [128, 256, 512])
        space.add("wer_target", [1e-9, 1e-12, 1e-15])
        for point in space.grid():
            ...  # {"subarray_rows": 128, "wer_target": 1e-9}, ...
    """

    def __init__(self, axes: Sequence = ()):
        self.axes: List[Axis] = []
        self._names = set()
        for axis in axes:
            if not isinstance(axis, Axis):
                axis = Axis(*axis)
            self._append(axis)

    def _append(self, axis: Axis) -> None:
        if axis.name in self._names:
            raise ValueError("duplicate axis %r" % axis.name)
        self._names.add(axis.name)
        self.axes.append(axis)

    def add(self, name: str, values: Sequence) -> "ParameterSpace":
        """Append one axis; returns self for chaining."""
        self._append(Axis(name, values))
        return self

    @property
    def size(self) -> int:
        """Cardinality of the full grid."""
        product = 1
        for axis in self.axes:
            product *= len(axis)
        return product

    def grid(self) -> Iterator[Dict[str, object]]:
        """Enumerate the full cartesian grid in axis order."""
        if not self.axes:
            return iter(())
        names = [axis.name for axis in self.axes]
        return (
            dict(zip(names, combo))
            for combo in itertools.product(*(axis.values for axis in self.axes))
        )

    def sample(self, count: int, seed: int = 0) -> List[Dict[str, object]]:
        """Latin-hypercube sample ``count`` points.

        Each axis's index range is cut into ``count`` strata; every
        stratum is visited exactly once per axis, and the per-axis
        visit orders are independently permuted.  Deterministic in
        ``seed``, so sampled campaigns are cache- and re-run-stable.

        Args:
            count: Number of points (may exceed the grid size; strata
                then revisit values).
            seed: RNG seed for the stratum permutations.
        """
        if count <= 0:
            raise ValueError("sample count must be positive")
        if not self.axes:
            return []
        rng = np.random.default_rng(seed)
        columns = []
        for axis in self.axes:
            # Stratified positions in [0, 1): one per sample, shuffled.
            positions = (rng.permutation(count) + rng.random(count)) / count
            indices = np.minimum(
                (positions * len(axis)).astype(int), len(axis) - 1
            )
            columns.append([axis.values[i] for i in indices])
        names = [axis.name for axis in self.axes]
        return [
            dict(zip(names, row)) for row in zip(*columns)
        ]

    def refine(
        self,
        scored: Sequence[Tuple[Mapping, Optional[float]]],
        keep: float = 0.5,
        margin: int = 1,
    ) -> "ParameterSpace":
        """Zoom onto the region the best-scoring points occupy.

        The successive-halving step for discrete axes: sort points by
        score (lower is better), keep the best ``keep`` fraction, and
        window every axis onto the contiguous index range those
        survivors span, widened by ``margin`` values on each side so
        the optimum is not fenced out by one coarse round.  Axes no
        surviving point mentions keep their full range.

        Args:
            scored: ``(point, score)`` pairs; points are axis-name ->
                value dicts as produced by :meth:`grid` / :meth:`sample`
                (raw or ``canonical_json``-round-tripped: enum axis
                values match their serialised plain form).  Pairs with
                a ``None`` or non-finite score (NaN/inf from a failed
                or degenerate objective) are unrankable and ignored —
                NaN compares false under every ordering, so letting it
                into ``sorted`` silently scrambles the survivor set.
            keep: Fraction of points that survive (at least one does).
            margin: Index widening on each side of the survivor window.

        Returns:
            A new :class:`ParameterSpace` over the windowed values; the
            receiver is not modified.

        Raises:
            ValueError: Empty ``scored``, no finitely-scored pair,
                ``keep`` outside (0, 1], or a survivor holding a value
                an axis does not contain.
        """
        if not scored:
            raise ValueError("refine needs at least one scored point")
        if not 0.0 < keep <= 1.0:
            raise ValueError("keep must be in (0, 1], got %r" % keep)
        if margin < 0:
            raise ValueError("margin must be >= 0")
        rankable = [
            (point, score)
            for point, score in scored
            if score is not None and math.isfinite(score)
        ]
        if not rankable:
            raise ValueError(
                "refine needs at least one finitely scored point "
                "(got only None/NaN/inf scores)"
            )
        count = max(1, math.ceil(len(rankable) * keep))
        ranked = sorted(rankable, key=lambda pair: pair[1])
        survivors = [point for point, _ in ranked[:count]]

        axes = []
        for axis in self.axes:
            plain_values = [plain_value(v) for v in axis.values]
            positions = []
            for point in survivors:
                if axis.name not in point:
                    continue
                value = point[axis.name]
                try:
                    positions.append(plain_values.index(plain_value(value)))
                except ValueError:
                    raise ValueError(
                        "scored point value %r is not on axis %r (values: %s)"
                        % (value, axis.name, list(axis.values))
                    )
            if not positions:
                axes.append(axis)
                continue
            low = max(0, min(positions) - margin)
            high = min(len(axis) - 1, max(positions) + margin)
            axes.append(Axis(axis.name, axis.values[low:high + 1]))
        return ParameterSpace(axes)
