"""Sharded result store + crash-safe merge of cache directories.

Scaling a campaign across processes and hosts turns the
:class:`~repro.dse.cache.ResultCache` into a *multi-writer* store.  Two
properties make that safe without any locking:

* **per-record atomic renames** — every record lands via write-to-tmp +
  ``os.replace``, so a reader sees the old record or the new one, never
  a torn mix;
* **content-hash keys** — two writers racing on the same key are
  writing byte-identical records, so last-writer-wins is *identical*:
  the collision is unobservable.

This module adds the pieces the multi-host story needs on top:

* :func:`shard_index` — deterministic key -> shard fan-out, so a large
  campaign can split its store across directories (or mount points)
  with every participant agreeing on the layout;
* :class:`ShardedResultCache` — the :class:`ResultCache` API over N
  shard subdirectories, with lock-free read-your-writes counters (plain
  per-process integers: a ``get`` after a ``put`` re-reads the just-
  renamed file, so no synchronisation is ever required);
* :func:`merge_caches` — crash-safe, idempotent merge of any number of
  cache/shard directories into one: each record copies atomically, a
  crash mid-merge leaves a valid partial store, and re-running
  converges (records already present and parseable are skipped).
"""

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dse.cache import ResultCache
from repro.dse.journal import atomic_write_bytes

#: Default shard count (two hex digits of fan-out inside each shard
#: keeps directories small even at 10^6 records).
DEFAULT_SHARDS = 16


def shard_index(key: str, shards: int) -> int:
    """Deterministic shard for a content-hash key (stable across hosts)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return int(key[:8], 16) % shards


def shard_name(index: int) -> str:
    return "shard-%02x" % index


class ShardedResultCache:
    """The :class:`ResultCache` API fanned out over N shard directories.

    Args:
        root: Store root; shard subdirectories are created on first
            write.
        shards: Shard count.  Must match across every process sharing
            the store (it is part of the on-disk layout).

    Attributes:
        hits / misses / writes / corrupt: Lock-free per-process session
            counters aggregated over the shards.  Read-your-writes by
            construction: a lookup after a store re-reads the renamed
            file, so no cross-process synchronisation exists or is
            needed.
    """

    def __init__(self, root: str, shards: int = DEFAULT_SHARDS):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = str(root)
        self.shards = int(shards)
        self._shards: List[ResultCache] = [
            ResultCache(os.path.join(self.root, shard_name(index)))
            for index in range(self.shards)
        ]

    def shard_for(self, key: str) -> ResultCache:
        """The shard cache a key routes to."""
        return self._shards[shard_index(key, self.shards)]

    def path_for(self, key: str) -> str:
        """The record file a key lives at (see ``ResultCache.path_for``)."""
        return self.shard_for(key).path_for(key)

    def get(self, key: str) -> Optional[Dict]:
        return self.shard_for(key).get(key)

    def put(self, key: str, record: Dict) -> None:
        self.shard_for(key).put(key, record)

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def purge_corrupt(self) -> List[str]:
        removed: List[str] = []
        for shard in self._shards:
            removed.extend(shard.purge_corrupt())
        return removed

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def writes(self) -> int:
        return sum(shard.writes for shard in self._shards)

    @property
    def corrupt(self) -> int:
        return sum(shard.corrupt for shard in self._shards)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Aggregated session counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
            "entries": len(self),
            "shards": self.shards,
        }


def iter_records(root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(key, path)`` for every record file under a cache root.

    Walks any layout (flat, two-level fan-out, shard directories);
    ``*.tmp`` droppings and ``*.corrupt`` quarantine files are skipped.
    """
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".json"):
                yield name[: -len(".json")], os.path.join(dirpath, name)


def merge_caches(dest, sources: Iterable) -> Dict[str, int]:
    """Merge cache/shard directories into one store, crash-safely.

    Every source record is copied byte-for-byte into the destination's
    slot for its key via an atomic rename, so:

    * a crash mid-merge leaves a valid store holding a prefix of the
      records — re-running the merge completes it (idempotent);
    * merging directories that were written *concurrently* (several
      workers, several hosts) is safe: colliding keys carry identical
      content, so any write order converges to the same store;
    * corrupt source records are skipped (and counted), never copied.

    Args:
        dest: A :class:`ResultCache` / :class:`ShardedResultCache`, or
            a path string (treated as a plain ``ResultCache`` root).
        sources: Cache objects or root paths to drain records from.

    Returns:
        ``{"merged": n, "skipped": n, "corrupt": n}`` — records copied,
        records already present (and parseable) in the destination, and
        unparseable source records left behind.
    """
    if isinstance(dest, (str, os.PathLike)):
        dest = ResultCache(str(dest))
    counts = {"merged": 0, "skipped": 0, "corrupt": 0}
    for source in sources:
        root = source if isinstance(source, (str, os.PathLike)) else source.root
        root = str(root)
        if not os.path.isdir(root):
            continue
        for key, path in iter_records(root):
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
                json.loads(raw.decode("utf-8"))
            except (OSError, ValueError):
                counts["corrupt"] += 1
                continue
            target = dest.path_for(key)
            if os.path.abspath(target) == os.path.abspath(path):
                counts["skipped"] += 1
                continue
            if _parseable(target):
                counts["skipped"] += 1  # idempotent fast path
                continue
            atomic_write_bytes(target, raw)
            counts["merged"] += 1
    return counts


def _parseable(path: str) -> bool:
    try:
        with open(path, "rb") as handle:
            json.loads(handle.read().decode("utf-8"))
        return True
    except (OSError, ValueError):
        return False
