"""High-level campaigns: wire VAET-STT, NVSim and MAGPIE into the engine.

Two built-in evaluators register with the runner:

* ``"vaet-memory"`` — one memory-level design point: rebuild the PDK and
  :class:`~repro.nvsim.config.MemoryConfig` from the spec, run the
  variation-aware ECC/margin/disturb optimisation of
  :class:`~repro.vaet.explorer.DesignSpaceExplorer`, return the winning
  :class:`~repro.vaet.explorer.DesignPoint` as a dict.
* ``"magpie-system"`` — one (workload, scenario) cell of the MAGPIE
  grid: rebuild the SoC from serialised memory records, simulate, return
  the gem5-stats-style report text (the Fig. 10 file-parser artefact).

Everything an evaluator needs travels in the spec as plain JSON, so jobs
pickle cheaply, hash stably, and replay identically from cache.

Entry points :func:`explore_memory` and :func:`explore_system` build the
job lists from a :class:`~repro.dse.space.ParameterSpace` / grid, run
them through a (cached, parallel) :class:`CampaignRunner`, and wrap the
outcomes with Pareto helpers.
"""

import enum
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.dse.cache import ResultCache
from repro.dse.jobs import Job, JobResult
from repro.dse.pareto import ObjectiveSpec, pareto_front
from repro.dse.runner import (
    MEMORY_TARGET,
    SYSTEM_TARGET,
    CampaignRunner,
    register_target,
)
from repro.dse.space import ParameterSpace

#: MemoryConfig field names an axis may override.
_CONFIG_FIELDS = (
    "rows", "cols", "word_bits", "banks",
    "subarray_rows", "subarray_cols", "memory_type", "cell",
)
#: DesignConstraints field names an axis may override.
_CONSTRAINT_FIELDS = ("wer_target", "rer_target", "disturb_budget", "max_ecc_bits")
#: Spec-level knobs an axis may override.
_SPEC_FIELDS = ("node_nm", "num_words", "error_population", "seed")


def _json_value(value):
    """Coerce axis values to JSON-ready form (enums by value)."""
    if isinstance(value, enum.Enum):
        return value.value
    return value


# -- evaluators (run inside workers) ------------------------------------


def evaluate_memory_point(spec: Mapping, seed: int) -> Dict:
    """Evaluate one memory-level design point from its spec.

    Args:
        spec: See :func:`memory_point_spec`.
        seed: Runner-derived content seed, used when the spec's own
            ``seed`` is None (campaign mode); an explicit spec seed wins
            (legacy sweeps pin 2018 for bit-identical tables).

    Returns:
        ``{"feasible": bool, "point": DesignPoint dict | None}``.
    """
    from repro.nvsim.config import MemoryConfig
    from repro.pdk.kit import ProcessDesignKit
    from repro.vaet.explorer import DesignConstraints, DesignSpaceExplorer

    config = MemoryConfig.from_dict(spec["config"])
    constraints = DesignConstraints.from_dict(spec["constraints"])
    pdk = ProcessDesignKit.for_node(int(spec["node_nm"]))
    explorer = DesignSpaceExplorer(
        pdk,
        config,
        constraints,
        num_words=int(spec.get("num_words", 1500)),
        error_population=int(spec.get("error_population", 200_000)),
    )
    chosen_seed = spec.get("seed")
    point = explorer.evaluate(
        config, seed=seed if chosen_seed is None else int(chosen_seed)
    )
    if point is None:
        return {"feasible": False, "point": None}
    return {"feasible": True, "point": point.to_dict()}


def evaluate_system_point(spec: Mapping, seed: int) -> Dict:
    """Evaluate one (workload, scenario) MAGPIE cell from its spec.

    The memory-level records arrive pre-computed in the spec (they are
    shared by every cell of a campaign), so workers only pay for the
    system simulation.

    Returns:
        ``{"report": str}`` — the gem5-stats-style activity report.
    """
    from repro.archsim.memtech import MemoryTechnology
    from repro.archsim.simulator import simulate
    from repro.archsim.soc import SoCConfig
    from repro.archsim.workloads import WorkloadDescriptor
    from repro.magpie.scenarios import Scenario, build_scenario

    base = SoCConfig.from_dict(spec["soc"])
    sram = MemoryTechnology.from_dict(spec["sram"])
    stt = MemoryTechnology.from_dict(spec["stt"])
    scenario = Scenario(spec["scenario"])
    workload = WorkloadDescriptor.from_dict(spec["workload"])
    soc = build_scenario(scenario, sram, stt, base)
    report = simulate(soc, workload)
    return {"report": report.render()}


register_target(MEMORY_TARGET, evaluate_memory_point)
register_target(SYSTEM_TARGET, evaluate_system_point)


# -- spec builders ------------------------------------------------------


def memory_point_spec(explorer, config, seed: Optional[int] = 2018) -> Dict:
    """Spec for one config under a ``DesignSpaceExplorer``'s settings.

    Args:
        explorer: The :class:`~repro.vaet.explorer.DesignSpaceExplorer`
            whose PDK/constraints/sampling settings apply.
        config: The :class:`~repro.nvsim.config.MemoryConfig` to score.
        seed: Monte Carlo seed; the default pins the historic tool seed
            so legacy sweeps reproduce; None defers to the content seed.
    """
    return {
        "node_nm": explorer.pdk.tech.node_nm,
        "config": config.to_dict(),
        "constraints": explorer.constraints.to_dict(),
        "num_words": explorer.num_words,
        "error_population": explorer.error_population,
        "seed": seed,
    }


def system_point_spec(flow, workload, scenario) -> Dict:
    """Spec for one (workload, scenario) cell of a ``MagpieFlow`` grid."""
    sram, stt = flow.memory_records()
    return {
        "node_nm": flow.node_nm,
        "wer_target": flow.wer_target,
        "soc": flow.base.to_dict(),
        "sram": sram.to_dict(),
        "stt": stt.to_dict(),
        "scenario": scenario.value,
        "workload": workload.to_dict(),
    }


def sweep_points(jobs: Sequence[Job], runner: Optional[CampaignRunner] = None):
    """Run memory jobs and return the feasible ``DesignPoint`` list.

    The compatibility path under
    :meth:`~repro.vaet.explorer.DesignSpaceExplorer.sweep_subarrays`:
    serial by default, infeasible points dropped, evaluator failures
    re-raised (the historic sweep propagated exceptions).
    """
    from repro.vaet.explorer import DesignPoint

    engine = runner if runner is not None else CampaignRunner(workers=1)
    points = []
    for outcome in engine.run(jobs):
        if not outcome.ok:
            raise RuntimeError("sweep job failed: %s" % outcome.error)
        if outcome.result["feasible"]:
            points.append(DesignPoint.from_dict(outcome.result["point"]))
    return points


# -- campaign entry points ----------------------------------------------


@dataclass
class MemoryCampaignResult:
    """Outcome of :func:`explore_memory`.

    Attributes:
        jobs: Submitted jobs, in point order.
        outcomes: Per-job results (aligned with ``jobs``).
        elapsed: Campaign wall-clock [s].
        cache_stats: Cache session counters (None when uncached).
    """

    jobs: List[Job]
    outcomes: List[JobResult]
    elapsed: float
    cache_stats: Optional[Dict] = None

    def records(self) -> List[Dict]:
        """Feasible points as flat dicts: spec axes + metrics + EDP."""
        rows = []
        for job, outcome in zip(self.jobs, self.outcomes):
            if not (outcome.ok and outcome.result.get("feasible")):
                continue
            point = dict(outcome.result["point"])
            row = dict(point.pop("config"))
            row["node_nm"] = job.spec["node_nm"]
            row["wer_target"] = job.spec["constraints"]["wer_target"]
            row.update(point)
            row["edp_proxy"] = row["write_latency"] * row["write_energy"]
            row["key"] = job.key
            rows.append(row)
        return rows

    def errors(self) -> List[JobResult]:
        """Failed outcomes (failure isolation keeps them out of records)."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def infeasible(self) -> int:
        """Count of points that met no constraint-satisfying design."""
        return sum(
            1 for o in self.outcomes if o.ok and not o.result.get("feasible")
        )

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    def pareto(
        self,
        objectives: Sequence[ObjectiveSpec] = (
            "write_latency", "write_energy", "area",
        ),
    ) -> List[Dict]:
        """Non-dominated records under the given objectives."""
        return pareto_front(self.records(), objectives)


def explore_memory(
    space: ParameterSpace,
    base_config=None,
    constraints=None,
    node_nm: int = 45,
    num_words: int = 1500,
    error_population: int = 200_000,
    seed: Optional[int] = 2018,
    samples: Optional[int] = None,
    sample_seed: int = 0,
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
) -> MemoryCampaignResult:
    """Run a memory-level (VAET-STT) campaign over a parameter space.

    Axis names map onto :class:`MemoryConfig` fields, ``DesignConstraints``
    fields, or the spec-level knobs ``node_nm`` / ``num_words`` /
    ``error_population`` / ``seed``.  Invalid combinations (e.g. a
    subarray taller than the array) become per-point error records, not
    campaign aborts.

    Args:
        space: The axes to sweep.
        base_config: Starting organisation (default: the paper array).
        constraints: Baseline reliability constraints.
        node_nm: Default PDK node when no ``node_nm`` axis is given.
        num_words / error_population: Monte Carlo sampling effort.
        seed: Spec seed for every point (None = per-point content seed).
        samples: If set, latin-hypercube sample this many points instead
            of the full grid.
        sample_seed: LHS permutation seed.
        cache_dir: Enable the on-disk result cache at this path.
        workers: Pool size (None = CPU count).
        runner: Pre-built runner (overrides cache_dir/workers).
    """
    from repro.nvsim.config import PAPER_ARRAY
    from repro.vaet.explorer import DesignConstraints

    base_config = base_config if base_config is not None else PAPER_ARRAY
    constraints = constraints if constraints is not None else DesignConstraints()
    points = (
        space.sample(samples, seed=sample_seed)
        if samples is not None
        else list(space.grid())
    )

    jobs = []
    for point in points:
        config_dict = base_config.to_dict()
        constraint_dict = constraints.to_dict()
        spec = {
            "node_nm": node_nm,
            "num_words": num_words,
            "error_population": error_population,
            "seed": seed,
        }
        for name, value in point.items():
            value = _json_value(value)
            if name in _CONFIG_FIELDS:
                config_dict[name] = value
            elif name in _CONSTRAINT_FIELDS:
                constraint_dict[name] = value
            elif name in _SPEC_FIELDS:
                spec[name] = value
            else:
                raise ValueError(
                    "axis %r maps to no MemoryConfig/DesignConstraints/"
                    "spec field; known: %s"
                    % (
                        name,
                        sorted(_CONFIG_FIELDS + _CONSTRAINT_FIELDS + _SPEC_FIELDS),
                    )
                )
        spec["config"] = config_dict
        spec["constraints"] = constraint_dict
        jobs.append(Job(MEMORY_TARGET, spec))

    if runner is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        runner = CampaignRunner(workers=workers, cache=cache)
    start = time.perf_counter()
    outcomes = runner.run(jobs)
    elapsed = time.perf_counter() - start
    stats = runner.cache.stats() if runner.cache is not None else None
    return MemoryCampaignResult(
        jobs=jobs, outcomes=outcomes, elapsed=elapsed, cache_stats=stats
    )


@dataclass
class SystemCampaignResult:
    """Outcome of :func:`explore_system`.

    Attributes:
        results: (kernel, Scenario) -> ``ScenarioResult`` grid.
        elapsed: Campaign wall-clock [s].
        cache_stats: Cache session counters (None when uncached).
    """

    results: Dict
    elapsed: float
    cache_stats: Optional[Dict] = None

    def records(self) -> List[Dict]:
        """Grid cells as flat dicts with exec time, energy and EDP."""
        rows = []
        for (kernel, scenario), cell in self.results.items():
            energy = cell.energy.total_energy
            rows.append(
                {
                    "workload": kernel,
                    "scenario": scenario.value,
                    "exec_time": cell.energy.exec_time,
                    "energy": energy,
                    "edp": energy * cell.energy.exec_time,
                }
            )
        return rows

    def pareto(
        self, objectives: Sequence[ObjectiveSpec] = ("exec_time", "energy")
    ) -> List[Dict]:
        """Non-dominated grid cells under the given objectives."""
        return pareto_front(self.records(), objectives)


def explore_system(
    workloads: Optional[Iterable[str]] = None,
    scenarios: Optional[Iterable] = None,
    node_nm: int = 45,
    base=None,
    wer_target: float = 1e-9,
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
) -> SystemCampaignResult:
    """Run a system-level (MAGPIE) campaign over a kernel x scenario grid.

    Args:
        workloads / scenarios: Grid axes (defaults: all kernels, all
            four paper scenarios).
        node_nm / base / wer_target: ``MagpieFlow`` settings; the memory
            level runs once and its records are shared by every cell.
        cache_dir / workers / runner: Engine settings, as in
            :func:`explore_memory`.
    """
    from repro.magpie.flow import MagpieFlow

    flow = MagpieFlow(node_nm=node_nm, base=base, wer_target=wer_target)
    if runner is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        runner = CampaignRunner(workers=workers, cache=cache)
    start = time.perf_counter()
    results = flow.run(workloads=workloads, scenarios=scenarios, runner=runner)
    elapsed = time.perf_counter() - start
    stats = runner.cache.stats() if runner.cache is not None else None
    return SystemCampaignResult(results=results, elapsed=elapsed, cache_stats=stats)
