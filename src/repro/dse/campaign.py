"""High-level campaigns: wire VAET-STT, NVSim and MAGPIE into the engine.

Two built-in evaluators register with the runner:

* ``"vaet-memory"`` — one memory-level design point: rebuild the PDK and
  :class:`~repro.nvsim.config.MemoryConfig` from the spec, run the
  variation-aware ECC/margin/disturb optimisation of
  :class:`~repro.vaet.explorer.DesignSpaceExplorer`, return the winning
  :class:`~repro.vaet.explorer.DesignPoint` as a dict.
* ``"magpie-system"`` — one (workload, scenario) cell of the MAGPIE
  grid: rebuild the SoC from serialised memory records, simulate, return
  the gem5-stats-style report text (the Fig. 10 file-parser artefact).

Everything an evaluator needs travels in the spec as plain JSON, so jobs
pickle cheaply, hash stably, and replay identically from cache.

Entry points :func:`explore_memory` and :func:`explore_system` build the
job lists from a :class:`~repro.dse.space.ParameterSpace` / grid, run
them through a (cached, parallel) :class:`CampaignRunner`, and wrap the
outcomes with Pareto helpers.  Both accept ``sampler="adaptive"`` to
spend the evaluation budget successively zooming onto the
objective-promising region instead of covering the whole grid, or
``sampler="surrogate"`` to drive it with a TPE-style density model.
Memory campaigns additionally accept ``fidelity="ladder"`` to screen
the space with the cheap analytic NVSim estimate and re-evaluate only
the frontier band at full Monte-Carlo fidelity (see
:mod:`repro.dse.fidelity`).

:func:`run_memory_campaign` and :func:`run_system_campaign` are the
*resumable* entry points: they pin a campaign to a directory holding the
result cache plus a :class:`~repro.dse.checkpoint.CampaignState`
journal, so a campaign killed after N of M points continues with
``resume=True`` exactly where it stopped — zero re-evaluation of the N
finished points.
"""

import enum
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dse.adaptive import AdaptiveSampler, AdaptiveTrace, score_records
from repro.dse.cache import ResultCache
from repro.dse.checkpoint import (
    CampaignState,
    campaign_key,
    journal_path,
    run_checkpointed,
)
from repro.dse.executors import CACHE_DIR_NAME, make_executor
from repro.dse.fidelity import (
    FIDELITY_MODES,
    FidelityTrace,
    lowfi_twin,
    run_ladder,
)
from repro.dse.jobs import Job, JobResult
from repro.dse.shard import merge_caches
from repro.dse.pareto import ObjectiveSpec, pareto_front
from repro.dse.retry import RetryPolicy
from repro.dse.runner import (
    MEMORY_TARGET,
    SYSTEM_TARGET,
    CampaignRunner,
    ProgressCallback,
    register_batch_target,
    register_target,
)
from repro.dse.space import ParameterSpace

#: Samplers the campaign entry points understand.
SAMPLERS = ("grid", "lhs", "adaptive", "surrogate")

#: The model-driven samplers (propose/evaluate loops over rounds, as
#: opposed to the static grid/LHS point lists).
MODEL_SAMPLERS = ("adaptive", "surrogate")

#: MemoryConfig field names an axis may override.
_CONFIG_FIELDS = (
    "rows", "cols", "word_bits", "banks",
    "subarray_rows", "subarray_cols", "memory_type", "cell",
)
#: DesignConstraints field names an axis may override.
_CONSTRAINT_FIELDS = ("wer_target", "rer_target", "disturb_budget", "max_ecc_bits")
#: Spec-level knobs an axis may override.
_SPEC_FIELDS = ("node_nm", "num_words", "error_population", "seed")


def _json_value(value):
    """Coerce axis values to JSON-ready form (enums by value)."""
    if isinstance(value, enum.Enum):
        return value.value
    return value


# -- evaluators (run inside workers) ------------------------------------


def _evaluate_memory(spec: Mapping, seed: int, pdk=None) -> Dict:
    """The memory-point evaluation body, with an optional shared PDK."""
    from repro.nvsim.config import MemoryConfig
    from repro.pdk.kit import ProcessDesignKit
    from repro.vaet.explorer import DesignConstraints, DesignSpaceExplorer

    config = MemoryConfig.from_dict(spec["config"])
    constraints = DesignConstraints.from_dict(spec["constraints"])
    if pdk is None:
        pdk = ProcessDesignKit.for_node(int(spec["node_nm"]))
    explorer = DesignSpaceExplorer(
        pdk,
        config,
        constraints,
        num_words=int(spec.get("num_words", 1500)),
        error_population=int(spec.get("error_population", 200_000)),
    )
    chosen_seed = spec.get("seed")
    point = explorer.evaluate(
        config, seed=seed if chosen_seed is None else int(chosen_seed)
    )
    if point is None:
        return {"feasible": False, "point": None}
    return {"feasible": True, "point": point.to_dict()}


def evaluate_memory_point(spec: Mapping, seed: int) -> Dict:
    """Evaluate one memory-level design point from its spec.

    Args:
        spec: See :func:`memory_point_spec`.
        seed: Runner-derived content seed, used when the spec's own
            ``seed`` is None (campaign mode); an explicit spec seed wins
            (legacy sweeps pin 2018 for bit-identical tables).

    Returns:
        ``{"feasible": bool, "point": DesignPoint dict | None}``.
    """
    return _evaluate_memory(spec, seed)


def evaluate_memory_batch(
    specs: Sequence[Mapping], seeds: Sequence[int]
) -> List[Tuple]:
    """Batched twin of :func:`evaluate_memory_point`.

    Evaluates a chunk of points in one worker invocation, sharing the
    :class:`~repro.pdk.kit.ProcessDesignKit` per node across the chunk
    (PDK construction re-derives the whole hybrid model and dominates
    small-point overhead).  Each point keeps its own failure isolation:
    the returned list holds one ``(ok, result, error, elapsed)``
    outcome per point, identical to what the scalar path would produce
    for the same ``(spec, seed)``.
    """
    from repro.dse.runner import isolated_call
    from repro.pdk.kit import ProcessDesignKit

    pdks: Dict[int, object] = {}

    def evaluate(spec: Mapping, seed: int) -> Dict:
        node = int(spec["node_nm"])
        if node not in pdks:
            pdks[node] = ProcessDesignKit.for_node(node)
        return _evaluate_memory(spec, seed, pdks[node])

    return [
        isolated_call(evaluate, spec, seed)
        for spec, seed in zip(specs, seeds)
    ]


def evaluate_system_point(spec: Mapping, seed: int) -> Dict:
    """Evaluate one (workload, scenario) MAGPIE cell from its spec.

    The memory-level records arrive pre-computed in the spec (they are
    shared by every cell of a campaign), so workers only pay for the
    system simulation.

    Returns:
        ``{"report": str}`` — the gem5-stats-style activity report.
    """
    from repro.archsim.memtech import MemoryTechnology
    from repro.archsim.simulator import simulate
    from repro.archsim.soc import SoCConfig
    from repro.archsim.workloads import WorkloadDescriptor
    from repro.magpie.scenarios import Scenario, build_scenario

    base = SoCConfig.from_dict(spec["soc"])
    sram = MemoryTechnology.from_dict(spec["sram"])
    stt = MemoryTechnology.from_dict(spec["stt"])
    scenario = Scenario(spec["scenario"])
    workload = WorkloadDescriptor.from_dict(spec["workload"])
    soc = build_scenario(scenario, sram, stt, base)
    report = simulate(soc, workload)
    return {"report": report.render()}


register_target(MEMORY_TARGET, evaluate_memory_point)
register_target(SYSTEM_TARGET, evaluate_system_point)
register_batch_target(MEMORY_TARGET, evaluate_memory_batch)


# -- spec builders ------------------------------------------------------


def memory_point_spec(explorer, config, seed: Optional[int] = 2018) -> Dict:
    """Spec for one config under a ``DesignSpaceExplorer``'s settings.

    Args:
        explorer: The :class:`~repro.vaet.explorer.DesignSpaceExplorer`
            whose PDK/constraints/sampling settings apply.
        config: The :class:`~repro.nvsim.config.MemoryConfig` to score.
        seed: Monte Carlo seed; the default pins the historic tool seed
            so legacy sweeps reproduce; None defers to the content seed.
    """
    return {
        "node_nm": explorer.pdk.tech.node_nm,
        "config": config.to_dict(),
        "constraints": explorer.constraints.to_dict(),
        "num_words": explorer.num_words,
        "error_population": explorer.error_population,
        "seed": seed,
    }


def system_point_spec(flow, workload, scenario) -> Dict:
    """Spec for one (workload, scenario) cell of a ``MagpieFlow`` grid."""
    sram, stt = flow.memory_records()
    return {
        "node_nm": flow.node_nm,
        "wer_target": flow.wer_target,
        "soc": flow.base.to_dict(),
        "sram": sram.to_dict(),
        "stt": stt.to_dict(),
        "scenario": scenario.value,
        "workload": workload.to_dict(),
    }


def sweep_points(jobs: Sequence[Job], runner: Optional[CampaignRunner] = None):
    """Run memory jobs and return the feasible ``DesignPoint`` list.

    The compatibility path under
    :meth:`~repro.vaet.explorer.DesignSpaceExplorer.sweep_subarrays`:
    serial by default, infeasible points dropped, evaluator failures
    re-raised (the historic sweep propagated exceptions).
    """
    from repro.vaet.explorer import DesignPoint

    engine = runner if runner is not None else CampaignRunner(workers=1)
    points = []
    for outcome in engine.run(jobs):
        if not outcome.ok:
            raise RuntimeError("sweep job failed: %s" % outcome.error)
        if outcome.result["feasible"]:
            points.append(DesignPoint.from_dict(outcome.result["point"]))
    return points


# -- campaign entry points ----------------------------------------------


def _memory_record(job: Job, outcome: JobResult) -> Optional[Dict]:
    """Flat record (spec axes + metrics + EDP) of one feasible outcome."""
    if not (outcome.ok and outcome.result.get("feasible")):
        return None
    point = dict(outcome.result["point"])
    row = dict(point.pop("config"))
    row["node_nm"] = job.spec["node_nm"]
    row["wer_target"] = job.spec["constraints"]["wer_target"]
    row.update(point)
    row["edp_proxy"] = row["write_latency"] * row["write_energy"]
    row["key"] = job.key
    return row


def _memory_jobs(
    points: Iterable[Mapping],
    base_config,
    constraints,
    node_nm: int,
    num_words: int,
    error_population: int,
    seed: Optional[int],
) -> List[Job]:
    """Memory-level jobs for design points (axis-name -> value dicts)."""
    jobs = []
    for point in points:
        config_dict = base_config.to_dict()
        constraint_dict = constraints.to_dict()
        spec = {
            "node_nm": node_nm,
            "num_words": num_words,
            "error_population": error_population,
            "seed": seed,
        }
        for name, value in point.items():
            value = _json_value(value)
            if name in _CONFIG_FIELDS:
                config_dict[name] = value
            elif name in _CONSTRAINT_FIELDS:
                constraint_dict[name] = value
            elif name in _SPEC_FIELDS:
                spec[name] = value
            else:
                raise ValueError(
                    "axis %r maps to no MemoryConfig/DesignConstraints/"
                    "spec field; known: %s"
                    % (
                        name,
                        sorted(_CONFIG_FIELDS + _CONSTRAINT_FIELDS + _SPEC_FIELDS),
                    )
                )
        spec["config"] = config_dict
        spec["constraints"] = constraint_dict
        jobs.append(Job(MEMORY_TARGET, spec))
    return jobs


def _space_signature(space: ParameterSpace) -> List:
    """JSON-ready axis summary for campaign signatures / journals."""
    return [
        [axis.name, [_json_value(value) for value in axis.values]]
        for axis in space.axes
    ]


def _make_sampler(name: str, space, sampler_options):
    """Build the model-driven sampler behind ``sampler="adaptive"/"surrogate"``."""
    options = dict(sampler_options or {})
    if name == "surrogate":
        from repro.dse.surrogate import SurrogateSampler

        return SurrogateSampler(space, **options)
    return AdaptiveSampler(space, **options)


def _run_adaptive(
    space, build_jobs, execute, record, sampler_options, objectives,
    sampler: str = "adaptive",
):
    """Shared model-driven loop: evaluate batches, score, re-propose.

    Args:
        build_jobs: points -> jobs.
        execute: jobs -> outcomes (runner or checkpointed runner).
        record: (job, outcome) -> scoreable record dict or None.
        sampler_options: AdaptiveSampler / SurrogateSampler overrides.
        objectives: Scoring objectives (Pareto ranks when several).
        sampler: ``"adaptive"`` (successive-halving zoom) or
            ``"surrogate"`` (TPE-style density-ratio model).

    Returns:
        (jobs, outcomes, trace) with jobs/outcomes deduplicated across
        rounds in first-seen order.
    """
    all_jobs: List[Job] = []
    all_outcomes: List[JobResult] = []
    seen = set()

    def evaluate(points):
        jobs = build_jobs(points)
        outcomes = execute(jobs)
        for job, outcome in zip(jobs, outcomes):
            if job.key not in seen:
                seen.add(job.key)
                all_jobs.append(job)
                all_outcomes.append(outcome)
        rows = [record(job, outcome) for job, outcome in zip(jobs, outcomes)]
        return score_records(rows, objectives)

    driver = _make_sampler(sampler, space, sampler_options)
    trace = driver.run(evaluate)
    return all_jobs, all_outcomes, trace


@dataclass
class MemoryCampaignResult:
    """Outcome of :func:`explore_memory` / :func:`run_memory_campaign`.

    Attributes:
        jobs: Submitted jobs, in point order.
        outcomes: Per-job results (aligned with ``jobs``).
        elapsed: Campaign wall-clock [s].
        cache_stats: Cache session counters (None when uncached).
        adaptive: Sampler trace when the campaign ran a model-driven
            sampler (``"adaptive"`` zoom or ``"surrogate"`` TPE).
        quarantined: Job keys whose retry budget is exhausted (flaky
            points) — excluded from :meth:`records` and therefore from
            Pareto ranking.
        fidelity: Screening trace when the campaign ran
            ``fidelity="ladder"`` (see :mod:`repro.dse.fidelity`);
            ``jobs``/``outcomes`` then hold only the promoted
            high-fidelity evaluations.
    """

    jobs: List[Job]
    outcomes: List[JobResult]
    elapsed: float
    cache_stats: Optional[Dict] = None
    adaptive: Optional[AdaptiveTrace] = None
    quarantined: List[str] = field(default_factory=list)
    fidelity: Optional[FidelityTrace] = None

    def records(self) -> List[Dict]:
        """Feasible points as flat dicts: spec axes + metrics + EDP.

        Quarantined (flaky) points are excluded even if an earlier
        attempt left a result behind — a point the campaign cannot
        evaluate reliably must not anchor a Pareto frontier.
        """
        blocked = set(self.quarantined)
        rows = []
        for job, outcome in zip(self.jobs, self.outcomes):
            if job.key in blocked:
                continue
            row = _memory_record(job, outcome)
            if row is not None:
                rows.append(row)
        return rows

    def screening_records(self) -> List[Dict]:
        """Low-fidelity screening rows of a ``fidelity="ladder"`` run.

        Empty for single-fidelity campaigns.  The calibration harness
        joins these against :meth:`records` to measure the analytic
        model's error distribution.
        """
        if self.fidelity is None:
            return []
        return self.fidelity.records(_memory_record)

    def errors(self) -> List[JobResult]:
        """Failed outcomes (failure isolation keeps them out of records)."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def infeasible(self) -> int:
        """Count of points that met no constraint-satisfying design."""
        return sum(
            1 for o in self.outcomes if o.ok and not o.result.get("feasible")
        )

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    def pareto(
        self,
        objectives: Sequence[ObjectiveSpec] = (
            "write_latency", "write_energy", "area",
        ),
    ) -> List[Dict]:
        """Non-dominated records under the given objectives."""
        return pareto_front(self.records(), objectives)


def _memory_settings(base_config, constraints):
    """Default the memory campaign's config/constraint objects."""
    from repro.nvsim.config import PAPER_ARRAY
    from repro.vaet.explorer import DesignConstraints

    if base_config is None:
        base_config = PAPER_ARRAY
    if constraints is None:
        constraints = DesignConstraints()
    return base_config, constraints


def _campaign_cache(campaign_dir: str, workers_dirs) -> ResultCache:
    """The campaign's shared cache, pre-merged with worker-local stores.

    ``workers_dirs`` (cache or shard directories written by workers
    that could not mount the campaign directory) are folded in first,
    so the run aggregates everything already evaluated elsewhere.
    """
    cache = ResultCache(os.path.join(campaign_dir, CACHE_DIR_NAME))
    if workers_dirs:
        merge_caches(cache, workers_dirs)
    return cache


def _campaign_executor(executor, campaign_dir, workers, executor_options):
    """Resolve the ``executor=`` argument of the campaign entry points.

    Returns ``(executor instance or None, close_when_done)`` — a name
    string builds a fresh executor this campaign owns (and must close);
    an instance passes through and stays the caller's to manage.
    """
    if executor is None:
        return None, False
    built = make_executor(
        executor,
        campaign_dir=campaign_dir,
        workers=workers,
        **dict(executor_options or {}),
    )
    return built, built is not executor


def _static_points(
    space: ParameterSpace,
    sampler: str,
    samples: Optional[int],
    sample_seed: int,
) -> List[Dict]:
    """Grid or LHS point list for the non-adaptive samplers."""
    if sampler == "lhs" and samples is None:
        raise ValueError('sampler="lhs" requires samples')
    if samples is not None:
        return space.sample(samples, seed=sample_seed)
    return list(space.grid())


def _validate_fidelity(fidelity: str, sampler: str) -> None:
    """Reject unknown fidelity modes and model-sampler combinations."""
    if fidelity not in FIDELITY_MODES:
        raise ValueError(
            "unknown fidelity %r; known: %s" % (fidelity, FIDELITY_MODES)
        )
    if fidelity != "high" and sampler in MODEL_SAMPLERS:
        raise ValueError(
            'fidelity=%r requires a static sampler ("grid"/"lhs"); '
            "model-driven samplers budget their own evaluations" % (fidelity,)
        )


def explore_memory(
    space: ParameterSpace,
    base_config=None,
    constraints=None,
    node_nm: int = 45,
    num_words: int = 1500,
    error_population: int = 200_000,
    seed: Optional[int] = 2018,
    samples: Optional[int] = None,
    sample_seed: int = 0,
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
    sampler: str = "grid",
    sampler_options: Optional[Dict] = None,
    objectives: Sequence[ObjectiveSpec] = ("edp_proxy",),
    retry: Optional[RetryPolicy] = None,
    progress: Optional[ProgressCallback] = None,
    batch_size: Optional[int] = None,
    deadline: Optional[float] = None,
    fidelity: str = "high",
    promote_ranks: int = 1,
) -> MemoryCampaignResult:
    """Run a memory-level (VAET-STT) campaign over a parameter space.

    Axis names map onto :class:`MemoryConfig` fields, ``DesignConstraints``
    fields, or the spec-level knobs ``node_nm`` / ``num_words`` /
    ``error_population`` / ``seed``.  Invalid combinations (e.g. a
    subarray taller than the array) become per-point error records, not
    campaign aborts.

    Args:
        space: The axes to sweep.
        base_config: Starting organisation (default: the paper array).
        constraints: Baseline reliability constraints.
        node_nm: Default PDK node when no ``node_nm`` axis is given.
        num_words / error_population: Monte Carlo sampling effort.
        seed: Spec seed for every point (None = per-point content seed).
        samples: If set, latin-hypercube sample this many points instead
            of the full grid.
        sample_seed: LHS permutation seed.
        cache_dir: Enable the on-disk result cache at this path.
        workers: Pool size (None = ``REPRO_DSE_WORKERS`` or CPU count).
        runner: Pre-built runner (overrides cache_dir/workers).
        sampler: ``"grid"`` (default), ``"lhs"`` (requires ``samples``),
            ``"adaptive"`` — successive-halving zoom onto the region
            best under ``objectives`` (see :mod:`repro.dse.adaptive`) —
            or ``"surrogate"`` — TPE-style density-ratio model over the
            full space (see :mod:`repro.dse.surrogate`).
        sampler_options: ``AdaptiveSampler`` overrides (batch, rounds,
            keep, margin, seed) or ``SurrogateSampler`` overrides
            (batch, rounds, gamma, candidates, smoothing, init_rounds,
            seed).
        objectives: Adaptive scoring objectives over the feasible
            records (Pareto dominance ranks when more than one).
        retry: Optional :class:`~repro.dse.retry.RetryPolicy` — failed
            points re-run with reseeded RNG streams before their
            failure is final (journal-free here; use
            :func:`run_memory_campaign` for quarantine bookkeeping).
        progress: Per-point streaming callback (one
            :class:`~repro.dse.runner.Progress` snapshot per completed
            point; adaptive campaigns restart the count each round).
        batch_size: Evaluate up to this many points per worker
            invocation through the batched memory evaluator (the PDK
            is shared across each chunk).  Scheduling hint only —
            results, cache keys and seeds are identical to unbatched
            runs.  Ignored when a pre-built ``runner`` is passed.
        deadline: Per-evaluation wall-clock budget [s] — a point still
            running past it is reaped and recorded as a timeout
            failure (see :attr:`~repro.dse.jobs.Job.deadline`).  Like
            ``batch_size``, a scheduling knob outside the content key;
            ignored when a pre-built ``runner`` is passed.
        fidelity: ``"high"`` (default) — every point pays the full
            Monte-Carlo evaluation; ``"low"`` — every point uses the
            analytic NVSim-class estimate only (quick sweeps,
            calibration); ``"ladder"`` — screen every point at low
            fidelity, then re-evaluate only the frontier band at high
            fidelity (see :mod:`repro.dse.fidelity`).  Static samplers
            only.
        promote_ranks: Ladder promotion depth — low-fidelity Pareto
            ranks up to this value (under ``objectives``) advance to
            the Monte-Carlo stage.
    """
    if sampler not in SAMPLERS:
        raise ValueError("unknown sampler %r; known: %s" % (sampler, SAMPLERS))
    _validate_fidelity(fidelity, sampler)
    base_config, constraints = _memory_settings(base_config, constraints)
    if runner is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        runner = CampaignRunner(
            workers=workers, cache=cache, batch_size=batch_size,
            deadline=deadline,
        )

    def build_jobs(points):
        return _memory_jobs(
            points, base_config, constraints,
            node_nm, num_words, error_population, seed,
        )

    start = time.perf_counter()
    trace = None
    ftrace = None
    if sampler in MODEL_SAMPLERS:
        jobs, outcomes, trace = _run_adaptive(
            space,
            build_jobs,
            lambda jobs: runner.run(jobs, progress=progress, retry=retry),
            _memory_record,
            sampler_options,
            objectives,
            sampler=sampler,
        )
    else:
        jobs = build_jobs(_static_points(space, sampler, samples, sample_seed))
        if fidelity == "low":
            jobs = [lowfi_twin(job) for job in jobs]
        if fidelity == "ladder":
            jobs, outcomes, ftrace = run_ladder(
                jobs,
                lambda batch: runner.run(batch, progress=progress, retry=retry),
                _memory_record,
                objectives,
                promote_ranks=promote_ranks,
            )
        else:
            outcomes = runner.run(jobs, progress=progress, retry=retry)
    elapsed = time.perf_counter() - start
    stats = runner.cache.stats() if runner.cache is not None else None
    return MemoryCampaignResult(
        jobs=jobs, outcomes=outcomes, elapsed=elapsed,
        cache_stats=stats, adaptive=trace, fidelity=ftrace,
    )


def run_memory_campaign(
    space: ParameterSpace,
    campaign_dir: str,
    resume: bool = False,
    retry_failed: bool = False,
    base_config=None,
    constraints=None,
    node_nm: int = 45,
    num_words: int = 1500,
    error_population: int = 200_000,
    seed: Optional[int] = 2018,
    samples: Optional[int] = None,
    sample_seed: int = 0,
    workers: Optional[int] = None,
    sampler: str = "grid",
    sampler_options: Optional[Dict] = None,
    objectives: Sequence[ObjectiveSpec] = ("edp_proxy",),
    retry: Optional[RetryPolicy] = None,
    progress: Optional[ProgressCallback] = None,
    executor=None,
    executor_options: Optional[Dict] = None,
    workers_dirs: Optional[Sequence[str]] = None,
    batch_size: Optional[int] = None,
    deadline: Optional[float] = None,
    fidelity: str = "high",
    promote_ranks: int = 1,
) -> MemoryCampaignResult:
    """Resumable :func:`explore_memory`: cache + journal in a directory.

    ``campaign_dir`` holds the result cache (``cache/``) and the
    append-only JSONL journal (``journal.jsonl``; legacy
    ``checkpoint.json`` files are upgraded transparently on resume),
    both written as results arrive.  A campaign killed after N of M
    points continues with ``resume=True``: the N finished points come
    back as cache/journal hits (zero re-evaluation) and the results are
    identical to an uninterrupted run.

    Args:
        campaign_dir: Campaign home; created on first write.
        resume: Continue an existing journal instead of starting fresh.
            Refuses a journal whose signature (axes + settings +
            sampler) differs from this call's.
        retry_failed: Re-run points the journal marks failed instead of
            replaying their recorded errors (quarantined points are
            released first).
        retry: Optional :class:`~repro.dse.retry.RetryPolicy` — failed
            points re-run with reseeded RNG streams, each retry is
            journaled (the budget spans resumes), and budget-exhausted
            points are quarantined.
        executor: Execution backend: ``"serial"``, ``"pool"``,
            ``"worker-pull"`` (points are leased to independent
            ``python -m repro.dse worker`` processes sharing this
            directory — see :mod:`repro.dse.executors`), ``"network"``
            (an embedded campaign server leases points over TCP to
            ``worker --connect`` processes with no shared mount — see
            :mod:`repro.dse.net`), or an
            :class:`~repro.dse.executors.Executor` instance.  The
            executor changes *where* points evaluate, never the journal
            format, the campaign signature, or the results.
        executor_options: Extra keyword arguments for a named executor
            (``spawn_workers``, ``lease_ttl``, ``timeout``, ...).
        workers_dirs: Cache/shard directories written elsewhere (e.g.
            by workers without access to this directory) to merge into
            the campaign cache before running.
        batch_size: Evaluate up to this many points per worker
            invocation (every executor honours it: pool workers chunk,
            pull/network workers lease chunks).  Like the executor, it
            changes *how* points evaluate, never the journal format,
            the campaign signature, or the results — a resumed
            campaign may freely change it.
        deadline: Per-evaluation wall-clock budget [s]; evaluations
            still running past it are reaped and journaled as timeout
            failures (retryable / quarantinable under ``retry``,
            counted by ``status``).  A scheduling knob like
            ``batch_size`` — outside the content key and the campaign
            signature, so a resumed campaign may freely change it.
        fidelity / promote_ranks: Multi-fidelity mode, as in
            :func:`explore_memory`.  Fidelity is part of every job's
            content key *and* (for non-default modes) the campaign
            signature, so screens and confirms journal and resume
            independently and a ladder campaign never mixes with a
            plain one in the same directory.
        (Remaining arguments are as in :func:`explore_memory`.)
    """
    if sampler not in SAMPLERS:
        raise ValueError("unknown sampler %r; known: %s" % (sampler, SAMPLERS))
    _validate_fidelity(fidelity, sampler)
    base_config, constraints = _memory_settings(base_config, constraints)
    signature = {
        "kind": "memory",
        "axes": _space_signature(space),
        "base_config": base_config.to_dict(),
        "constraints": constraints.to_dict(),
        "node_nm": node_nm,
        "num_words": num_words,
        "error_population": error_population,
        "seed": seed,
        "samples": samples,
        "sample_seed": sample_seed,
        "sampler": sampler,
        "sampler_options": dict(sampler_options or {}),
        "objectives": [list(o) if isinstance(o, tuple) else o for o in objectives],
    }
    if fidelity != "high":
        # Only non-default modes stamp the signature, so campaign keys
        # (and therefore resumability) of existing journals are stable.
        signature["fidelity"] = fidelity
        signature["promote_ranks"] = promote_ranks
    cache = _campaign_cache(campaign_dir, workers_dirs)
    engine, owns_executor = _campaign_executor(
        executor, campaign_dir, workers, executor_options
    )
    runner = CampaignRunner(
        workers=workers, cache=cache, executor=engine,
        batch_size=batch_size, deadline=deadline,
    )
    journal = journal_path(campaign_dir, prefer_existing=resume)

    def build_jobs(points):
        return _memory_jobs(
            points, base_config, constraints,
            node_nm, num_words, error_population, seed,
        )

    start = time.perf_counter()
    trace = None
    ftrace = None
    try:
        if sampler in MODEL_SAMPLERS:
            state = CampaignState.open(
                journal, campaign_key(signature), total=0,
                resume=resume, meta=signature,
            )
            planned = 0

            def execute(jobs):
                nonlocal planned
                planned += len(jobs)
                state.total = max(state.total, planned)
                return run_checkpointed(
                    jobs, runner, state, retry_failed=retry_failed,
                    retry=retry, progress=progress,
                )

            jobs, outcomes, trace = _run_adaptive(
                space, build_jobs, execute, _memory_record,
                sampler_options, objectives, sampler=sampler,
            )
        elif fidelity == "ladder":
            jobs = build_jobs(_static_points(space, sampler, samples, sample_seed))
            # Total starts at the screening count and grows as the
            # promoted subset becomes known, like the model samplers.
            state = CampaignState.open(
                journal, campaign_key(signature), total=len(jobs),
                resume=resume, meta=signature,
            )
            planned = 0

            def execute(batch):
                nonlocal planned
                planned += len(batch)
                state.total = max(state.total, planned)
                return run_checkpointed(
                    batch, runner, state, retry_failed=retry_failed,
                    retry=retry, progress=progress,
                )

            jobs, outcomes, ftrace = run_ladder(
                jobs, execute, _memory_record, objectives,
                promote_ranks=promote_ranks,
            )
        else:
            jobs = build_jobs(_static_points(space, sampler, samples, sample_seed))
            if fidelity == "low":
                jobs = [lowfi_twin(job) for job in jobs]
            state = CampaignState.open(
                journal, campaign_key(signature), total=len(jobs),
                resume=resume, meta=signature,
            )
            outcomes = run_checkpointed(
                jobs, runner, state, retry_failed=retry_failed,
                retry=retry, progress=progress,
            )
    finally:
        if owns_executor:
            engine.close()
    state.close()
    elapsed = time.perf_counter() - start
    return MemoryCampaignResult(
        jobs=jobs, outcomes=outcomes, elapsed=elapsed,
        cache_stats=cache.stats(), adaptive=trace, fidelity=ftrace,
        quarantined=sorted(state.quarantined),
    )


def _system_row(kernel: str, scenario, cell) -> Dict:
    """Flat record of one (kernel, scenario) cell."""
    energy = cell.energy.total_energy
    return {
        "workload": kernel,
        "scenario": scenario.value,
        "exec_time": cell.energy.exec_time,
        "energy": energy,
        "edp": energy * cell.energy.exec_time,
    }


def _system_jobs(flow, cells: Sequence[Tuple[str, object]]) -> List[Job]:
    """System-level jobs for (kernel name, Scenario) cells."""
    from repro.archsim.workloads import PARSEC_KERNELS

    return [
        Job(SYSTEM_TARGET, system_point_spec(flow, PARSEC_KERNELS[name], scenario))
        for name, scenario in cells
    ]


def _system_results(flow, cells, outcomes) -> Dict:
    """Parse cell outcomes into the (kernel, Scenario) -> result grid.

    Raises:
        RuntimeError: On any failed cell (system campaigns keep the
            historic fail-fast contract of ``MagpieFlow.run``).
    """
    from repro.archsim.stats import ActivityReport
    from repro.magpie.flow import ScenarioResult
    from repro.mcpat.components import estimate_energy

    results: Dict = {}
    for (name, scenario), outcome in zip(cells, outcomes):
        if not outcome.ok:
            raise RuntimeError(
                "MAGPIE job (%s, %s) failed: %s"
                % (name, scenario.value, outcome.error)
            )
        report = ActivityReport.parse(outcome.result["report"])
        soc = flow.build_soc(scenario)
        energy = estimate_energy(soc, report)
        results[(name, scenario)] = ScenarioResult(
            scenario=scenario, report=report, energy=energy
        )
    return results


def run_system_cells(
    flow,
    cells: Sequence[Tuple[str, object]],
    runner: CampaignRunner,
    progress: Optional[ProgressCallback] = None,
) -> Dict:
    """Evaluate (kernel, Scenario) cells through the engine.

    The shared core of ``MagpieFlow.run`` and the system campaign entry
    points: each cell is a content-hashed job carrying the memory-level
    records, so caching/parallel runners drop in transparently.
    """
    jobs = _system_jobs(flow, cells)
    outcomes = runner.run(jobs, progress=progress)
    return _system_results(flow, cells, outcomes)


@dataclass
class SystemCampaignResult:
    """Outcome of :func:`explore_system` / :func:`run_system_campaign`.

    Attributes:
        results: (kernel, Scenario) -> ``ScenarioResult`` grid (the
            evaluated subset, for adaptive campaigns).
        elapsed: Campaign wall-clock [s].
        cache_stats: Cache session counters (None when uncached).
        adaptive: Zoom trace when the campaign ran ``sampler="adaptive"``.
    """

    results: Dict
    elapsed: float
    cache_stats: Optional[Dict] = None
    adaptive: Optional[AdaptiveTrace] = None

    def records(self) -> List[Dict]:
        """Grid cells as flat dicts with exec time, energy and EDP."""
        return [
            _system_row(kernel, scenario, cell)
            for (kernel, scenario), cell in self.results.items()
        ]

    def pareto(
        self, objectives: Sequence[ObjectiveSpec] = ("exec_time", "energy")
    ) -> List[Dict]:
        """Non-dominated grid cells under the given objectives."""
        return pareto_front(self.records(), objectives)


def explore_system(
    workloads: Optional[Iterable[str]] = None,
    scenarios: Optional[Iterable] = None,
    node_nm: int = 45,
    base=None,
    wer_target: float = 1e-9,
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
    sampler: str = "grid",
    sampler_options: Optional[Dict] = None,
    objectives: Sequence[ObjectiveSpec] = ("edp",),
    progress: Optional[ProgressCallback] = None,
    deadline: Optional[float] = None,
) -> SystemCampaignResult:
    """Run a system-level (MAGPIE) campaign over a kernel x scenario grid.

    Args:
        workloads / scenarios: Grid axes (defaults: all kernels, all
            four paper scenarios).
        node_nm / base / wer_target: ``MagpieFlow`` settings; the memory
            level runs once and its records are shared by every cell.
        cache_dir / workers / runner: Engine settings, as in
            :func:`explore_memory`.
        sampler: ``"grid"`` (default, the full cross product),
            ``"adaptive"`` — zoom onto the cells best under
            ``objectives`` instead of evaluating every cell — or
            ``"surrogate"`` — model the good cells with the TPE-style
            density-ratio sampler.
        sampler_options / objectives / progress: As in
            :func:`explore_memory` (default objective: EDP).
    """
    if sampler not in ("grid",) + MODEL_SAMPLERS:
        raise ValueError(
            'unknown sampler %r; system campaigns support "grid", '
            '"adaptive" and "surrogate"' % (sampler,)
        )
    from repro.magpie.flow import MagpieFlow

    flow = MagpieFlow(node_nm=node_nm, base=base, wer_target=wer_target)
    if runner is None:
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        runner = CampaignRunner(workers=workers, cache=cache, deadline=deadline)

    start = time.perf_counter()
    trace = None
    if sampler in MODEL_SAMPLERS:
        results, trace = _adaptive_system(
            flow, workloads, scenarios, runner,
            sampler_options, objectives, progress, sampler=sampler,
        )
    else:
        results = flow.run(
            workloads=workloads, scenarios=scenarios, runner=runner,
            progress=progress,
        )
    elapsed = time.perf_counter() - start
    stats = runner.cache.stats() if runner.cache is not None else None
    return SystemCampaignResult(
        results=results, elapsed=elapsed, cache_stats=stats, adaptive=trace
    )


def _adaptive_system(
    flow, workloads, scenarios, runner, sampler_options, objectives, progress,
    sampler: str = "adaptive",
):
    """Model-driven cell selection over the workload x scenario grid."""
    from repro.magpie.scenarios import Scenario

    names, chosen = flow.validate_grid(workloads, scenarios)
    space = ParameterSpace(
        [("workload", names), ("scenario", [s.value for s in chosen])]
    )
    results: Dict = {}

    def evaluate(points):
        cells = [
            (point["workload"], Scenario(point["scenario"])) for point in points
        ]
        batch = run_system_cells(flow, cells, runner, progress=progress)
        results.update(batch)
        rows = [
            _system_row(name, scenario, batch[(name, scenario)])
            for name, scenario in cells
        ]
        return score_records(rows, objectives)

    driver = _make_sampler(sampler, space, sampler_options)
    trace = driver.run(evaluate)
    return results, trace


def run_system_campaign(
    campaign_dir: str,
    workloads: Optional[Iterable[str]] = None,
    scenarios: Optional[Iterable] = None,
    node_nm: int = 45,
    base=None,
    wer_target: float = 1e-9,
    resume: bool = False,
    retry_failed: bool = False,
    retry: Optional[RetryPolicy] = None,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    executor=None,
    executor_options: Optional[Dict] = None,
    workers_dirs: Optional[Sequence[str]] = None,
    batch_size: Optional[int] = None,
    deadline: Optional[float] = None,
) -> SystemCampaignResult:
    """Resumable :func:`explore_system`: cache + journal in a directory.

    The full kernel x scenario grid with every completed cell journaled
    as it lands; ``resume=True`` finishes a killed campaign without
    re-simulating completed cells (they replay from the cache).  A
    ``retry`` policy re-runs failed cells (journaled, budget spans
    resumes) before the grid's fail-fast contract raises.  See
    :func:`run_memory_campaign` for the directory layout, the
    ``executor`` / ``executor_options`` / ``workers_dirs`` plumbing,
    and the resume semantics.
    """
    from repro.magpie.flow import MagpieFlow

    flow = MagpieFlow(node_nm=node_nm, base=base, wer_target=wer_target)
    names, chosen = flow.validate_grid(workloads, scenarios)
    cells = [(name, scenario) for name in names for scenario in chosen]
    signature = {
        "kind": "system",
        "workloads": names,
        "scenarios": [s.value for s in chosen],
        "node_nm": node_nm,
        "wer_target": wer_target,
        "base": flow.base.to_dict(),
    }
    cache = _campaign_cache(campaign_dir, workers_dirs)
    engine, owns_executor = _campaign_executor(
        executor, campaign_dir, workers, executor_options
    )
    runner = CampaignRunner(
        workers=workers, cache=cache, executor=engine,
        batch_size=batch_size, deadline=deadline,
    )
    jobs = _system_jobs(flow, cells)
    journal = journal_path(campaign_dir, prefer_existing=resume)
    state = CampaignState.open(
        journal,
        campaign_key(signature),
        total=len(jobs),
        resume=resume,
        meta=signature,
    )
    start = time.perf_counter()
    try:
        outcomes = run_checkpointed(
            jobs, runner, state, retry_failed=retry_failed,
            retry=retry, progress=progress,
        )
    finally:
        if owns_executor:
            engine.close()
    state.close()
    results = _system_results(flow, cells, outcomes)
    elapsed = time.perf_counter() - start
    return SystemCampaignResult(
        results=results, elapsed=elapsed, cache_stats=cache.stats()
    )
