"""repro.dse.chaos: deterministic fault injection + campaign invariants.

The engine's crash-safety claims (PRs 3-5) were earned with ad-hoc test
fixtures — a runner that raises mid-campaign, a hand-torn journal line.
This module promotes fault injection into a first-class subsystem:

* a seeded :class:`FaultPlane` injects faults at the engine's existing
  seams — the hook sites below are ``fire()`` calls already wired into
  :mod:`~repro.dse.journal`, :mod:`~repro.dse.cache`,
  :mod:`~repro.dse.executors` and :mod:`~repro.dse.net.server` — so a
  *schedule* of hangs, crashes, torn tails, ENOSPC and connection drops
  replays bit-identically from one integer seed;
* an :class:`InvariantChecker` replays a campaign directory after a
  schedule and asserts the conservation laws the engine promises (no
  lost results, no corrupt journals, totals conserved, leases monotone);
* :func:`seeded_schedule` derives a complete chaos scenario (faults,
  evaluation fault modes, executor mode, deadline) from a seed, so a
  failing CI run is reproducible from the printed seed alone.

Hook sites wired today::

    journal.append     before a campaign-journal line is written
    journal.appended   after it is flushed (torn faults tear it here)
    journal.atomic     before an atomic snapshot/task/result write
    cache.put          before a result-cache record is stored
    lease.append       before a lease-journal event is written
    lease.appended     after it is flushed
    queue.result       before a worker publishes a result file
    evaluate           on entry to every evaluation
    server.message     on every message the campaign server receives

Design constraints: this file is a *leaf* module (no ``repro.dse``
imports at module scope — every hooked module imports it), and the
disabled path is one global read plus a ``None`` check, benchmarked in
``bench_dse.py`` to stay under 2% of even the cheapest evaluator call.
"""

import errno
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ChaosCrash",
    "ChaosDrop",
    "FAULT_KINDS",
    "Fault",
    "FaultPlane",
    "InvariantChecker",
    "active",
    "fire",
    "install",
    "seeded_schedule",
    "uninstall",
]


class ChaosCrash(RuntimeError):
    """Injected process death.

    Raised after the fault's side effect (a torn tail is torn *first*),
    so the harness observing it sees exactly the on-disk state a SIGKILL
    at that instant would have left.
    """


class ChaosDrop(RuntimeError):
    """Injected connection drop: the server aborts the transport."""


#: Fault kinds understood by :class:`Fault`:
#:
#: * ``enospc`` — raise ``OSError(ENOSPC)`` (disk full);
#: * ``fsync``  — raise ``OSError(EIO)`` (flush/fsync failure);
#: * ``torn``   — truncate a few flushed bytes off the file named by
#:   the hook context, then raise :class:`ChaosCrash` (a power cut
#:   mid-append);
#: * ``crash``  — raise :class:`ChaosCrash`;
#: * ``drop``   — raise :class:`ChaosDrop` (network: connection drop);
#: * ``delay``  — sleep ``delay_s`` (slow disk / delayed reply /
#:   server pause), then continue normally.
FAULT_KINDS = ("enospc", "fsync", "torn", "crash", "drop", "delay")


@dataclass
class Fault:
    """One armed fault: where it fires, what it does, how often.

    Attributes:
        site: Hook site this fault arms (exact match, or a prefix when
            it ends with ``"."`` — ``"journal."`` arms both journal
            sites).
        kind: One of :data:`FAULT_KINDS`.
        count: Fire at most this many times (0 = unlimited).
        skip: Let this many eligible fires pass before arming — the
            deterministic way to hit "the third append", not the first.
        probability: Chance an eligible fire actually injects, drawn
            from the plane's seeded RNG (deterministic per schedule).
        delay_s: Sleep length for ``delay`` faults.
        torn_bytes: How many flushed bytes a ``torn`` fault tears off
            (clamped to the file size).
        match: If set, the fault only fires when this substring appears
            in the hook context's ``path``/``task``/``target``.
    """

    site: str
    kind: str
    count: int = 1
    skip: int = 0
    probability: float = 1.0
    delay_s: float = 0.02
    torn_bytes: int = 7
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r; known: %s" % (self.kind, FAULT_KINDS)
            )

    def applies(self, site: str, ctx: Dict) -> bool:
        if self.site.endswith("."):
            if not site.startswith(self.site):
                return False
        elif site != self.site:
            return False
        if self.match is not None:
            haystack = "|".join(
                str(ctx.get(key, "")) for key in ("path", "task", "target")
            )
            if self.match not in haystack:
                return False
        return True


class FaultPlane:
    """A seeded, deterministic set of armed faults.

    Thread-safe (workers heartbeat and evaluate from threads in tests):
    eligibility decisions happen under a lock and consume the plane's
    RNG in call order, side effects (sleeps, raises) happen outside it.
    Use as a context manager to install/uninstall the process-global
    plane that :func:`fire` consults::

        with FaultPlane(seed=7, faults=[Fault("cache.put", "enospc")]):
            run_memory_campaign(...)

    Attributes:
        fired: One record per injected fault (site, kind, context
            summary) — the schedule's audit trail.
    """

    def __init__(self, seed: int = 0, faults: Sequence[Fault] = ()):
        self.seed = int(seed)
        self.faults: List[Fault] = list(faults)
        self.fired: List[Dict] = []
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._spent: Dict[int, int] = {}
        self._skipped: Dict[int, int] = {}

    def add(self, fault: Fault) -> "FaultPlane":
        self.faults.append(fault)
        return self

    def __enter__(self) -> "FaultPlane":
        install(self)
        return self

    def __exit__(self, *exc_info) -> None:
        uninstall()

    def fire(self, site: str, ctx: Dict) -> None:
        """Evaluate every armed fault against one hook invocation.

        At most one fault injects per invocation (the first eligible
        one, in arming order) — composing several behaviours at one
        instant would model a fault no real machine produces.
        """
        chosen: Optional[Fault] = None
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not fault.applies(site, ctx):
                    continue
                if fault.count and self._spent.get(index, 0) >= fault.count:
                    continue
                if self._skipped.get(index, 0) < fault.skip:
                    self._skipped[index] = self._skipped.get(index, 0) + 1
                    continue
                if fault.probability < 1.0 and (
                    self._rng.random() >= fault.probability
                ):
                    continue
                self._spent[index] = self._spent.get(index, 0) + 1
                self.fired.append({
                    "site": site,
                    "kind": fault.kind,
                    "path": str(ctx.get("path", "")),
                    "task": str(ctx.get("task", "")),
                })
                chosen = fault
                break
        if chosen is not None:
            self._inject(chosen, site, ctx)

    def _inject(self, fault: Fault, site: str, ctx: Dict) -> None:
        if fault.kind == "enospc":
            raise OSError(
                errno.ENOSPC, "chaos: no space left on device (%s)" % site
            )
        if fault.kind == "fsync":
            raise OSError(errno.EIO, "chaos: fsync failed (%s)" % site)
        if fault.kind == "torn":
            self._tear(str(ctx.get("path", "")), fault.torn_bytes)
            raise ChaosCrash("chaos: crash after torn append (%s)" % site)
        if fault.kind == "crash":
            raise ChaosCrash("chaos: injected crash (%s)" % site)
        if fault.kind == "drop":
            raise ChaosDrop("chaos: connection dropped (%s)" % site)
        if fault.kind == "delay":
            time.sleep(fault.delay_s)

    @staticmethod
    def _tear(path: str, torn_bytes: int) -> None:
        """Truncate flushed bytes off a file's tail (a torn final line).

        Never tears past the previous line's newline: the engine's
        guarantee is that only the *final* (in-flight) record may be
        lost, and the fault must model exactly that.
        """
        if not path:
            return
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return
        body = data[:-1] if data.endswith(b"\n") else data
        floor = body.rfind(b"\n") + 1  # keep everything through here
        target = max(floor, size - max(1, int(torn_bytes)))
        if target >= size:
            target = max(floor, size - 1)
        try:
            with open(path, "rb+") as handle:
                handle.truncate(target)
        except OSError:
            pass


#: The installed plane (None = chaos disabled, the production state).
_PLANE: Optional[FaultPlane] = None


def install(plane: FaultPlane) -> None:
    """Install the process-global fault plane :func:`fire` consults."""
    global _PLANE
    _PLANE = plane


def uninstall() -> None:
    global _PLANE
    _PLANE = None


def active() -> Optional[FaultPlane]:
    """The installed plane, or None when chaos is disabled."""
    return _PLANE


def fire(site: str, **ctx) -> None:
    """Hook entry the engine calls at every seam.

    The disabled path — one module-global read and a ``None`` check —
    is the only cost production code pays; ``bench_dse.py`` gates it at
    <2% of an evaluator call.
    """
    plane = _PLANE
    if plane is None:
        return
    plane.fire(site, ctx)


# -- invariants ----------------------------------------------------------


class InvariantChecker:
    """Replay a campaign directory and assert its conservation laws.

    The checks are exactly the engine's standing promises, verified
    from on-disk state alone (journal + cache + work queue), so any
    fault schedule — or production incident — can be audited the same
    way:

    1. the campaign journal parses with no *interior* corruption (a
       torn final line is lawful; a torn middle one never is), and its
       event stamps ``t`` are monotone non-decreasing;
    2. status totals are conserved: the disjoint progress buckets
       satisfy ``done + remaining + quarantined == total`` exactly,
       ``done <= total``, and (for a campaign that ran to completion)
       ``done + quarantined == total``;
    3. no lost results: every point the journal records as completed-ok
       has a parseable record in the result cache;
    4. no double-apply: no point is both completed-ok and quarantined;
    5. lease journals are monotone: per journal, ``seq`` strictly
       increases and ``t`` never decreases, and the canonical
       :meth:`LeaseTable.replay` accepts the merged event set;
    6. queue conservation (when a work queue exists and the campaign
       completed): no published task is still awaiting a result whose
       point the journal does not know as completed.
    """

    def __init__(self, campaign_dir: str):
        self.campaign_dir = str(campaign_dir)

    def check(self, expect_complete: bool = True) -> List[str]:
        """Return every violated invariant (empty = all laws hold)."""
        violations: List[str] = []
        state = self._check_journal(violations)
        if state is not None:
            self._check_totals(state, violations, expect_complete)
            self._check_cache(state, violations)
            self._check_quarantine(state, violations)
            self._check_leases(violations)
            self._check_queue(state, violations, expect_complete)
        return violations

    def _check_journal(self, violations: List[str]):
        from repro.dse.checkpoint import CampaignState, journal_path

        path = journal_path(self.campaign_dir)
        if not os.path.exists(path):
            violations.append("no campaign journal at %s" % path)
            return None
        try:
            state = CampaignState.load(path)
        except Exception as exc:
            violations.append("campaign journal corrupt: %s" % exc)
            return None
        self._check_journal_clock(path, violations)
        return state

    def _check_journal_clock(self, path: str, violations: List[str]) -> None:
        """Campaign-journal stamps must be monotone non-decreasing.

        Appends clamp ``t`` to the journal's high-water mark, so a
        decreasing stamp means hand-edited history or an append path
        that bypassed the clamp — either way analytics durations would
        silently go negative.
        """
        from repro.dse.journal import read_events

        try:
            events, _ = read_events(path)
        except (OSError, ValueError):
            return  # parse problems are _check_journal's report
        last_t = None
        for event in events:
            stamp = event.get("t")
            if not isinstance(stamp, (int, float)):
                continue
            if last_t is not None and stamp < last_t:
                violations.append(
                    "campaign journal: t decreased (%r after %r)"
                    % (stamp, last_t)
                )
                break
            last_t = float(stamp)

    def _check_totals(
        self, state, violations: List[str], expect_complete: bool
    ) -> None:
        status = state.status()
        total = int(status.get("total", 0))
        done = int(status.get("done", 0))
        failed = int(status.get("failed", 0))
        remaining = int(status.get("remaining", 0))
        quarantined = int(status.get("quarantined", 0))
        if done > total or failed > done + quarantined:
            violations.append(
                "totals not conserved: done=%d failed=%d quarantined=%d "
                "total=%d" % (done, failed, quarantined, total)
            )
        # The accounting identity: the disjoint progress buckets must
        # tile the plan exactly (quarantined points are not runnable,
        # so they may not hide inside ``remaining``).
        if done + remaining + quarantined != total:
            violations.append(
                "totals not conserved: done=%d + remaining=%d + "
                "quarantined=%d != total=%d"
                % (done, remaining, quarantined, total)
            )
        if expect_complete and done + quarantined != total:
            violations.append(
                "campaign incomplete: done=%d + quarantined=%d != total=%d"
                % (done, quarantined, total)
            )

    def _check_cache(self, state, violations: List[str]) -> None:
        from repro.dse.cache import ResultCache
        from repro.dse.executors import CACHE_DIR_NAME

        cache_dir = os.path.join(self.campaign_dir, CACHE_DIR_NAME)
        if not os.path.isdir(cache_dir):
            return
        cache = ResultCache(cache_dir)
        for key, entry in state.completed.items():
            if not entry.get("ok"):
                continue
            record = cache.get(key)
            if record is None or "result" not in record:
                violations.append(
                    "lost result: %s completed ok but has no cache record"
                    % key
                )

    def _check_quarantine(self, state, violations: List[str]) -> None:
        for key in getattr(state, "quarantined", ()):  # set of keys
            entry = state.completed.get(key)
            if entry is not None and entry.get("ok"):
                violations.append(
                    "double-apply: %s is both completed-ok and quarantined"
                    % key
                )

    def _check_leases(self, violations: List[str]) -> None:
        from repro.dse.executors import LeaseTable, WorkQueue, read_lease_events

        queue = WorkQueue(self.campaign_dir)
        if not os.path.isdir(queue.leases_dir):
            return
        merged: List[Dict] = []
        for path in queue.lease_journal_paths():
            name = os.path.basename(path)
            events = read_lease_events(path)
            merged.extend(events)
            last_seq, last_t = 0, 0.0
            for event in events:
                seq = int(event.get("seq", 0))
                t = float(event.get("t", 0.0))
                if seq <= last_seq:
                    violations.append(
                        "lease journal %s: seq not strictly increasing "
                        "(%d after %d)" % (name, seq, last_seq)
                    )
                    break
                if t < last_t:
                    violations.append(
                        "lease journal %s: t decreased (%r after %r)"
                        % (name, t, last_t)
                    )
                    break
                last_seq, last_t = seq, t
        try:
            LeaseTable.replay(merged)
        except Exception as exc:
            violations.append("lease replay failed: %s" % exc)

    def _check_queue(
        self, state, violations: List[str], expect_complete: bool
    ) -> None:
        from repro.dse.executors import WorkQueue

        queue = WorkQueue(self.campaign_dir)
        if not os.path.isdir(queue.tasks_dir) or not expect_complete:
            return
        finished = queue.available_results()
        for tid in queue.pending_tasks():
            task = queue.read_task(tid)
            key = task.get("key") if task else None
            if tid in finished or (key and key in state.completed):
                continue
            violations.append(
                "lost task: %s published but never resolved" % tid
            )


# -- seeded schedules ----------------------------------------------------


@dataclass
class Schedule:
    """A complete chaos scenario derived from one integer seed.

    ``pytest -m chaos`` materialises one of these per seed and drives a
    resume-until-complete campaign under its plane; everything here is
    a pure function of ``seed``, so a failing run replays exactly from
    the seed printed in the assertion message.
    """

    seed: int
    mode: str  # "serial" or "network"
    points: int
    deadline: float
    faults: List[Fault] = field(default_factory=list)
    #: point index -> chaos mode for the dse-chaos evaluator spec.
    evaluation_faults: Dict[int, str] = field(default_factory=dict)

    def plane(self) -> FaultPlane:
        return FaultPlane(seed=self.seed, faults=list(self.faults))


#: The fault menu seeded schedules draw from, per execution mode.
_DISK_MENU = [
    ("journal.append", "enospc"),
    ("journal.append", "crash"),
    ("journal.appended", "torn"),
    ("journal.appended", "fsync"),
    ("cache.put", "enospc"),
    ("cache.put", "crash"),
]
_NET_MENU = [
    ("lease.appended", "torn"),
    ("lease.append", "crash"),
    ("queue.result", "crash"),
    ("server.message", "drop"),
    ("server.message", "delay"),
]
_EVAL_MENU = ["hang_first", "crash_first", "slow"]


def seeded_schedule(seed: int) -> Schedule:
    """Derive a reproducible chaos scenario from one integer seed.

    Roughly one in three schedules runs the full network stack (server
    + reconnecting worker) and draws network faults; the rest run the
    in-process serial path and draw disk faults.  Every schedule mixes
    in one or two evaluation faults (hang/crash/slow) on top.
    """
    rng = random.Random(int(seed))
    mode = "network" if rng.random() < 0.34 else "serial"
    points = rng.randint(4, 7)
    # Short enough that a reaped hang costs a test seed well under a
    # second; long enough that a healthy self-test point never times
    # out even on a loaded CI box.
    deadline = 0.8 if mode == "serial" else 1.5
    menu = list(_DISK_MENU)
    if mode == "network":
        menu += _NET_MENU
    faults = []
    for _ in range(rng.randint(1, 3)):
        site, kind = menu[rng.randrange(len(menu))]
        faults.append(
            Fault(
                site=site,
                kind=kind,
                count=1,
                skip=rng.randint(0, 2),
                delay_s=0.02,
                torn_bytes=rng.randint(3, 12),
            )
        )
    evaluation_faults: Dict[int, str] = {}
    for _ in range(rng.randint(1, 2)):
        evaluation_faults[rng.randrange(points)] = (
            _EVAL_MENU[rng.randrange(len(_EVAL_MENU))]
        )
    return Schedule(
        seed=int(seed),
        mode=mode,
        points=points,
        deadline=deadline,
        faults=faults,
        evaluation_faults=evaluation_faults,
    )
