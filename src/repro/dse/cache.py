"""On-disk JSON result store keyed by job content hash.

Re-running an identical design point becomes a file read instead of a
Monte-Carlo campaign — the idiom OpenNVRAM's characterizer uses for its
NVSim/Cadence comparison JSONs, promoted to a first-class store.  One
file per key (two-level fan-out to keep directories small), per-record
atomic writes via rename.

The store is **multi-writer safe without locks**: concurrent ``put``s
of the same key write byte-identical records (keys are content hashes
of the full evaluation spec), so the atomic rename makes collisions
last-writer-wins *identical* — unobservable.  Many campaign processes,
or worker-pull workers on many hosts, may share one cache directory;
see :mod:`repro.dse.shard` for shard fan-out and crash-safe merging of
several such directories.

A record that fails to parse (a torn write on an exotic filesystem, a
disk fault, a manual edit) is **quarantined on first contact**: the bad
file is renamed to ``*.corrupt`` so the slot reads as a plain miss, the
next ``put`` repairs it, and the evidence survives for forensics.
"""

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.dse import chaos


class ResultCache:
    """Directory-backed map from job key to result record.

    Args:
        root: Cache directory (created on first write).

    Attributes:
        hits / misses / writes / corrupt: Session counters (reset per
            instance; lock-free plain integers — cross-process
            consistency comes from the files, not the counters).
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    def path_for(self, key: str) -> str:
        """The record file a key lives at (two-level fan-out)."""
        return os.path.join(self.root, key[:2], key + ".json")

    # Historic private spelling, kept for callers/tests that used it.
    _path = path_for

    def _read(self, key: str) -> Optional[Dict]:
        """Parse one record off disk; None if absent or corrupt.

        An unparseable file is quarantined (renamed to ``*.corrupt``)
        so the slot becomes a plain miss that the next ``put`` repairs —
        without this, a torn record would shadow its key forever: every
        lookup would re-parse the same bad bytes and miss.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                return json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None

    def _quarantine(self, path: str) -> None:
        """Move a corrupt record aside (racing quarantines are benign).

        Re-checks the slot first: between our failed parse and this
        call another writer may have *repaired* the record with a valid
        ``put``, and renaming that away would throw a fresh result out.
        The re-check narrows the window to microseconds; the residual
        race costs at most one redundant (deterministic, content-keyed)
        re-evaluation, never a wrong result.
        """
        try:
            with open(path) as handle:
                json.load(handle)
            return  # concurrently repaired: leave the valid record be
        except OSError:
            return  # concurrently quarantined or purged
        except ValueError:
            pass  # still the corrupt bytes
        try:
            os.replace(path, path + ".corrupt")
            self.corrupt += 1
        except OSError:
            pass  # another process already moved or repaired it

    def get(self, key: str) -> Optional[Dict]:
        """Look one record up; None (and a miss) if absent or corrupt."""
        record = self._read(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict) -> None:
        """Store one record atomically (write + rename).

        The ``cache.put`` chaos hook fires before any file is touched,
        so an injected ENOSPC/crash surfaces cleanly: no temp litter,
        no half-written record, the slot still a plain miss.
        """
        chaos.fire("cache.put", path=self.path_for(key), key=key)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        """Membership consistent with :meth:`get`.

        A corrupt or truncated file (a crash mid-rename on exotic
        filesystems, manual edits) is *not* a member — ``get`` would
        miss on it, so ``in`` must agree (and the bad file is
        quarantined either way).  Does not touch the hit/miss counters.
        """
        return self._read(key) is not None

    def purge_corrupt(self) -> List[str]:
        """Delete unparseable cache files and quarantined ``*.corrupt``
        leftovers; return the affected keys.

        Lets an operator reclaim a cache after a crash or disk fault
        instead of carrying dead files alongside the live records.
        """
        removed = []
        if not os.path.isdir(self.root):
            return removed
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".corrupt"):
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                    except OSError:
                        continue
                    removed.append(name[: -len(".json.corrupt")])
                    continue
                if not name.endswith(".json"):
                    continue
                key = name[: -len(".json")]
                if self._read(key) is None:
                    # Parse failures were quarantined by _read (drop
                    # the quarantine file); OSError reads (disk fault,
                    # lost permission) left the dead file in place —
                    # delete it directly, as this method always has.
                    gone = False
                    path = os.path.join(shard_dir, name)
                    for victim in (path + ".corrupt", path):
                        try:
                            os.unlink(victim)
                            gone = True
                        except OSError:
                            continue
                    if gone:
                        removed.append(key)
        return removed

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1 for name in os.listdir(shard_dir) if name.endswith(".json")
                )
        return count

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk this session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Session counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
            "entries": len(self),
        }
