"""On-disk JSON result store keyed by job content hash.

Re-running an identical design point becomes a file read instead of a
Monte-Carlo campaign — the idiom OpenNVRAM's characterizer uses for its
NVSim/Cadence comparison JSONs, promoted to a first-class store.  One
file per key (two-level fan-out to keep directories small), atomic
writes via rename, no locking needed for the single-writer campaign
runner.
"""

import json
import os
import tempfile
from typing import Dict, List, Optional


class ResultCache:
    """Directory-backed map from job key to result record.

    Args:
        root: Cache directory (created on first write).

    Attributes:
        hits / misses / writes: Session counters (reset per instance).
    """

    def __init__(self, root: str):
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _read(self, key: str) -> Optional[Dict]:
        """Parse one record off disk; None if absent or corrupt."""
        try:
            with open(self._path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def get(self, key: str) -> Optional[Dict]:
        """Look one record up; None (and a miss) if absent or corrupt."""
        record = self._read(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict) -> None:
        """Store one record atomically (write + rename)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        """Membership consistent with :meth:`get`.

        A corrupt or truncated file (a crash mid-rename on exotic
        filesystems, manual edits) is *not* a member — ``get`` would
        miss on it, so ``in`` must agree.  Does not touch the session
        counters.
        """
        return self._read(key) is not None

    def purge_corrupt(self) -> List[str]:
        """Delete unparseable cache files; return the removed keys.

        Lets an operator reclaim a cache after a crash or disk fault
        instead of carrying dead files that every membership test
        re-parses.
        """
        removed = []
        if not os.path.isdir(self.root):
            return removed
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                key = name[: -len(".json")]
                if self._read(key) is None:
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                    except OSError:
                        continue
                    removed.append(key)
        return removed

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1 for name in os.listdir(shard_dir) if name.endswith(".json")
                )
        return count

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk this session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Session counters as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
            "entries": len(self),
        }
