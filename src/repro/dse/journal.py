"""Append-only JSONL event log with snapshot compaction.

The persistence layer under :class:`~repro.dse.checkpoint.CampaignState`.
A journal is a plain-text file holding one JSON object per line — one
*event* per completed/retried point — plus an optional sidecar snapshot
(``<journal>.snapshot``) produced by compaction.  An annotated excerpt::

    {"event": "begin", "version": 2, "campaign_key": "3f2a...", ...}
    {"event": "started", "key": "9bd1...", "t": 1753862400.1}
    {"event": "done", "key": "9bd1...", "elapsed": 3.2, "attempts": 1, ...}
    {"event": "retry", "key": "77c0...", "attempt": 1, "backoff": 0.5, ...}
    {"event": "failed", "key": "77c0...", "error": "...", "attempts": 3, ...}
    {"event": "quarantine", "key": "77c0...", "attempts": 3, "t": ...}

* ``begin`` — always the first line; names the campaign (signature
  hash), schema version, planned total and metadata.
* ``started`` — a point was submitted for evaluation (crash forensics:
  a ``started`` without a matching completion was in flight).
* ``done`` / ``failed`` — terminal completion of a point; ``attempts``
  counts evaluator invocations including retries.
* ``cached`` — a completion served from the result cache that had no
  journal entry yet (pre-warmed caches).
* ``retry`` — invocation ``attempt`` failed and the point will re-run
  with a reseeded RNG after ``backoff`` seconds.
* ``quarantine`` / ``release`` — the point exhausted its retry budget
  (flaky), or an operator re-released it (``python -m repro.dse retry``).
* ``total`` — adaptive campaigns grow the planned point count.

Three properties make this safe to write from a long campaign:

* **O(1) appends** — one line per event, never a rewrite of history
  (the legacy format re-dumped the whole journal per point: O(n^2)).
* **Crash tolerance** — a kill mid-append leaves at most one torn final
  line; :func:`read_events` drops it and every fully-written event
  before it survives.  Every event is a last-writer-wins state
  transition, so replaying a journal over a snapshot that already
  includes a prefix of it is idempotent.
* **Bounded replay** — once the log exceeds ``compact_threshold``
  lines, :meth:`JsonlJournal.compact` folds it into an atomic snapshot
  plus a fresh one-line tail, so resume latency stays flat no matter
  how long the campaign has run.

Appends are flushed to the OS per event and ``fsync``-batched (every
``fsync_every`` events, plus on compaction and close) so a power loss
costs at most one fsync window of events — a kill of the process costs
at most the torn final line.
"""

import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.dse import chaos

#: JSONL journal schema version (the legacy atomic-JSON format was 1).
JOURNAL_VERSION = 2

#: Events a journal line may carry (see the module docstring).
EVENT_KINDS = (
    "begin", "started", "done", "failed", "cached",
    "retry", "quarantine", "release", "total",
)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file is removed in a ``finally`` if it still exists,
    so an error mid-write never litters the directory.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    chaos.fire("journal.atomic", path=path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + rename)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, payload: Dict) -> None:
    """Serialise ``payload`` and write it atomically.

    ``json.dumps`` runs *before* the file is opened, so an
    unserialisable payload raises without touching disk at all.
    """
    atomic_write_text(path, json.dumps(payload))


def encode_event(event: Dict) -> str:
    """One journal line (newline-terminated) for an event dict."""
    line = json.dumps(event, separators=(",", ":"), allow_nan=False)
    if "\n" in line:  # json.dumps never emits raw newlines, but be safe
        raise ValueError("journal events must serialise to one line")
    return line + "\n"


def read_events(path: str) -> Tuple[List[Dict], int]:
    """Parse a JSONL journal, tolerating a torn final line.

    Returns:
        ``(events, torn_bytes)`` — every fully-written event in file
        order, and the byte length of a torn (unparseable, typically
        unterminated) final line that was dropped, 0 if none.

    Raises:
        FileNotFoundError: No journal at ``path``.
        ValueError: A *non-final* line is unparseable, or the first
            line is not a ``begin`` event — that is corruption, not a
            torn append, and silently dropping interior history would
            fake completions away.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    events: List[Dict] = []
    lines = raw.split(b"\n")
    # A trailing newline yields one empty final chunk; real content in
    # the final chunk means the last append had no terminator.
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8", errors="replace"))
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError("not an event object")
        except ValueError:
            if position == len(lines) - 1:
                return events, len(line)  # torn final append: drop it
            raise ValueError(
                "corrupt campaign journal: %s (unparseable line %d)"
                % (path, position + 1)
            )
        events.append(event)
    if events and events[0].get("event") != "begin":
        raise ValueError(
            "corrupt campaign journal: %s (first event is %r, not 'begin')"
            % (path, events[0].get("event"))
        )
    return events, 0


def snapshot_path(path: str) -> str:
    """The sidecar snapshot file for a journal at ``path``."""
    return str(path) + ".snapshot"


class JsonlJournal:
    """Append-only JSONL file with fsync batching and compaction.

    Pure mechanics — line encoding, torn-tail truncation, fsync
    cadence, atomic snapshot+tail rewrite.  What the events *mean* is
    the business of :class:`~repro.dse.checkpoint.CampaignState`, which
    also supplies the snapshot payload at compaction time.

    Args:
        path: Journal file path.
        fsync_every: Batch ``fsync`` once per this many appends (1 =
            sync every event; appends are always flushed to the OS).
        compact_threshold: :attr:`wants_compaction` turns true once
            this many lines accumulate (0 disables).
    """

    def __init__(
        self,
        path: str,
        fsync_every: int = 32,
        compact_threshold: int = 4096,
    ):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = str(path)
        self.fsync_every = int(fsync_every)
        self.compact_threshold = int(compact_threshold)
        self._handle = None
        self._unsynced = 0
        self.lines = 0  # lines in the file (maintained by callers on load)

    # -- appending ------------------------------------------------------

    def _open_for_append(self):
        """Open the file for appending, repairing any torn tail first.

        A previous crash may have left a final line without its
        terminator; appending after it would corrupt the *next* event.
        An unparseable torn tail is cut; a complete-but-unterminated
        final event (only its newline was lost) keeps its data and gets
        the terminator restored.
        """
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(self.path) and os.path.getsize(self.path):
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                terminated = handle.read(1) == b"\n"
            if not terminated:
                _, torn = read_events(self.path)
                with open(self.path, "ab") as handle:
                    if torn:
                        handle.truncate(os.path.getsize(self.path) - torn)
                    else:
                        handle.write(b"\n")
        return open(self.path, "a", encoding="utf-8")

    def append(self, event: Dict) -> None:
        """Write one event line; flush always, fsync on the batch cadence.

        Chaos hook sites: ``journal.append`` fires *before* the line is
        written (an ENOSPC there leaves the file untouched — a clean,
        resumable error, never a corrupt journal); ``journal.appended``
        fires after the flush (a torn fault there tears exactly the
        flushed tail, the state a power cut mid-append leaves).
        """
        chaos.fire("journal.append", path=self.path)
        if self._handle is None:
            self._handle = self._open_for_append()
        self._handle.write(encode_event(event))
        self._handle.flush()
        chaos.fire("journal.appended", path=self.path)
        self.lines += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Force buffered events to stable storage."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        """Sync and release the file handle (reopened lazily on append)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    # -- rewriting ------------------------------------------------------

    @property
    def wants_compaction(self) -> bool:
        return bool(self.compact_threshold) and self.lines >= self.compact_threshold

    def compact(self, begin_event: Dict, snapshot: Dict) -> None:
        """Fold the log into ``<path>.snapshot`` + a one-line tail.

        The snapshot lands first (atomically), then the journal is
        atomically replaced by just the ``begin`` line.  A crash
        between the two leaves snapshot *and* full log — replay is
        idempotent, so loading that state is still exact.
        """
        atomic_write_json(snapshot_path(self.path), snapshot)
        self.close()
        atomic_write_text(self.path, encode_event(begin_event))
        self.lines = 1

    def reset(self, begin_event: Dict) -> None:
        """Start a fresh journal: drop any snapshot, write the begin line."""
        self.close()
        try:
            os.unlink(snapshot_path(self.path))
        except OSError:
            pass
        atomic_write_text(self.path, encode_event(begin_event))
        self.lines = 1

    def load_snapshot(self) -> Optional[Dict]:
        """Parse the sidecar snapshot; None if absent or unparseable.

        An unparseable snapshot is ignored rather than fatal: the
        journal rewrite only happens *after* a successful snapshot
        write, so a corrupt snapshot implies the full log still exists.
        """
        try:
            with open(snapshot_path(self.path)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None
