"""Model-based sampling: a TPE-style surrogate over a ParameterSpace.

The successive-halving sampler (:mod:`repro.dse.adaptive`) zooms by
*shrinking the space*; it forgets everything outside the current
window.  :class:`SurrogateSampler` instead keeps every evaluation and
fits a cheap model over the full space each round — the
tree-structured-Parzen-estimator recipe (Bergstra et al.):

1. **split** — sort the scored history and call the best ``gamma``
   fraction *good*, the rest *bad*;
2. **model** — per axis, estimate two categorical densities ``l(v)``
   (over good points) and ``g(v)`` (over bad points) with Laplace
   smoothing, so every value keeps non-zero mass and exploration never
   collapses;
3. **propose** — draw a candidate pool from the good density (or
   enumerate the grid when it is small), rank candidates by the
   acquisition ``sum_axis log l(v) - log g(v)``, and evaluate the top
   ``batch`` not yet seen.

Axes are discrete (every knob in this repository is), so the densities
are plain smoothed histograms — pure numpy, no GP algebra, no scipy.

Determinism and replay-stability: proposals depend only on
``(seed, round index, scored history)``, the history is rebuilt from
the evaluator's answers, and evaluation goes through the normal
job/cache machinery — so re-running (or resuming after a kill) replays
every round from cache and walks the identical proposal path, on every
executor.  Ties in the acquisition break on the canonical JSON key of
the point, never on dict order.

The sampler emits the same :class:`~repro.dse.adaptive.AdaptiveTrace`
the halving sampler does, so campaign plumbing (results, CLI
summaries, journal totals) is shared.
"""

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dse.adaptive import (
    AdaptiveRound,
    AdaptiveTrace,
    BatchEvaluator,
    point_key,
)
from repro.dse.space import Axis, ParameterSpace, plain_value


class SurrogateSampler:
    """TPE-style good/bad density-ratio driver over a ParameterSpace.

    Args:
        space: The full design space to explore.
        batch: Points proposed per round.
        rounds: Maximum model/propose iterations.
        gamma: Fraction of the scored history treated as "good"
            (at least one point always is).
        candidates: Candidate-pool size ranked per model round; when the
            grid itself is no larger, the pool is the whole grid and the
            proposal step is exhaustive.
        smoothing: Laplace count added to every axis value in both
            densities (> 0 keeps unseen values proposable).
        init_rounds: Leading rounds drawn by seeded LHS before the
            model takes over (the model also waits until the history
            holds both a good and a bad point).
        seed: Base RNG seed; round ``r`` derives its streams from
            ``(seed, r)`` so batches differ between rounds but replay
            identically.
    """

    def __init__(
        self,
        space: ParameterSpace,
        batch: int = 8,
        rounds: int = 6,
        gamma: float = 0.25,
        candidates: int = 64,
        smoothing: float = 1.0,
        init_rounds: int = 1,
        seed: int = 0,
    ):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1), got %r" % gamma)
        if candidates < 1:
            raise ValueError("candidates must be >= 1")
        if smoothing <= 0.0:
            raise ValueError("smoothing must be > 0, got %r" % smoothing)
        if init_rounds < 1:
            raise ValueError("init_rounds must be >= 1")
        self.space = space
        self.batch = batch
        self.rounds = rounds
        self.gamma = gamma
        self.candidates = candidates
        self.smoothing = smoothing
        self.init_rounds = init_rounds
        self.seed = seed

    def run(self, evaluate: BatchEvaluator) -> AdaptiveTrace:
        """Drive the model/propose loop; ``evaluate`` scores each batch."""
        trace = AdaptiveTrace()
        seen: Set[str] = set()
        history: List[Tuple[Dict, float]] = []
        for index in range(self.rounds):
            points = self.propose(index, history, seen)
            if not points:  # space fully explored
                break
            scores = list(evaluate(points))
            if len(scores) != len(points):
                raise ValueError(
                    "evaluator returned %d scores for %d points"
                    % (len(scores), len(points))
                )
            trace.evaluations += len(points)
            round_record = AdaptiveRound(
                index=index,
                space_size=self.space.size,
                points=points,
                scores=scores,
            )
            scored = [
                (point, score)
                for point, score in zip(points, scores)
                if score is not None and math.isfinite(score)
            ]
            if scored:
                best_point, best_score = min(scored, key=lambda pair: pair[1])
                round_record.best_point = best_point
                round_record.best_score = best_score
                if trace.best_score is None or best_score < trace.best_score:
                    trace.best_point = best_point
                    trace.best_score = best_score
                history.extend(scored)
            trace.rounds.append(round_record)
        return trace

    # -- proposal -------------------------------------------------------

    def propose(
        self,
        index: int,
        history: Sequence[Tuple[Dict, float]],
        seen: Set[str],
    ) -> List[Dict]:
        """The round's batch of fresh points (marks them ``seen``).

        Pure in its inputs: the same (index, history, seen) always
        yields the same batch — the property the kill/resume tests pin.
        """
        if index < self.init_rounds or len(history) < 2:
            return self._draw_lhs(index, seen)
        good, bad = self._split(history)
        if not bad:
            return self._draw_lhs(index, seen)
        log_ratio, good_density = self._fit(good, bad)
        pool = self._candidate_pool(index, good_density)
        index_maps = [self._index_map(axis) for axis in self.space.axes]
        ranked = []
        pooled = set()
        for point in pool:
            key = point_key(point)
            if key in seen or key in pooled:
                continue
            pooled.add(key)
            acquisition = self._acquisition(point, log_ratio, index_maps)
            ranked.append((-acquisition, key, point))
        ranked.sort(key=lambda item: (item[0], item[1]))
        chosen = [point for _, _, point in ranked[: self.batch]]
        if not chosen:
            # Model pool exhausted (tiny or nearly-explored space):
            # fall back to stratified draws so the budget still spends.
            return self._draw_lhs(index, seen)
        for point in chosen:
            seen.add(point_key(point))
        return chosen

    def _draw_lhs(self, index: int, seen: Set[str]) -> List[Dict]:
        """Seeding rounds: LHS (or the whole grid), minus repeats."""
        space = self.space
        if space.size <= self.batch:
            candidates = list(space.grid())
        else:
            candidates = space.sample(self.batch, seed=self.seed + index)
        fresh = []
        for point in candidates:
            key = point_key(point)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(point)
        return fresh

    def _split(
        self, history: Sequence[Tuple[Dict, float]]
    ) -> Tuple[List[Dict], List[Dict]]:
        """Good/bad partition of the scored history (good = best gamma)."""
        ranked = sorted(history, key=lambda pair: pair[1])
        count = max(1, math.ceil(len(ranked) * self.gamma))
        count = min(count, len(ranked) - 1)  # keep "bad" non-empty
        good = [point for point, _ in ranked[:count]]
        bad = [point for point, _ in ranked[count:]]
        return good, bad

    def _fit(
        self, good: Sequence[Dict], bad: Sequence[Dict]
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Per-axis smoothed densities -> (log l/g ratios, l densities)."""
        log_ratios = []
        densities = []
        for axis in self.space.axes:
            good_counts = self._counts(axis, good)
            bad_counts = self._counts(axis, bad)
            l_density = (good_counts + self.smoothing) / (
                good_counts.sum() + self.smoothing * len(axis)
            )
            g_density = (bad_counts + self.smoothing) / (
                bad_counts.sum() + self.smoothing * len(axis)
            )
            log_ratios.append(np.log(l_density) - np.log(g_density))
            densities.append(l_density)
        return log_ratios, densities

    @staticmethod
    def _index_map(axis: Axis) -> Dict:
        """Plain value -> axis position (first occurrence wins)."""
        index_of: Dict = {}
        for i, value in enumerate(axis.values):
            index_of.setdefault(plain_value(value), i)
        return index_of

    def _counts(self, axis: Axis, points: Sequence[Dict]) -> np.ndarray:
        """Occurrence histogram of an axis's values over points."""
        index_of = self._index_map(axis)
        counts = np.zeros(len(axis), dtype=float)
        for point in points:
            if axis.name not in point:
                continue
            position = index_of.get(plain_value(point[axis.name]))
            if position is not None:
                counts[position] += 1.0
        return counts

    def _candidate_pool(
        self, index: int, good_density: Sequence[np.ndarray]
    ) -> List[Dict]:
        """Candidates to rank: the grid when small, else draws from l."""
        space = self.space
        if space.size <= self.candidates:
            return list(space.grid())
        rng = np.random.default_rng((self.seed, index))
        columns = []
        for axis, density in zip(space.axes, good_density):
            indices = rng.choice(len(axis), size=self.candidates, p=density)
            columns.append([axis.values[i] for i in indices])
        names = [axis.name for axis in space.axes]
        return [dict(zip(names, row)) for row in zip(*columns)]

    def _acquisition(
        self,
        point: Dict,
        log_ratio: Sequence[np.ndarray],
        index_maps: Sequence[Dict],
    ) -> float:
        """sum_axis log l(v)/g(v) of one candidate (higher = better)."""
        total = 0.0
        for axis, ratios, index_of in zip(
            self.space.axes, log_ratio, index_maps
        ):
            position = index_of.get(plain_value(point[axis.name]))
            if position is not None:
                total += float(ratios[position])
        return total


def evaluations_to_target(
    trace: AdaptiveTrace, target: float
) -> Optional[int]:
    """Evaluations spent when the running best first reached ``target``.

    Walks the trace in evaluation order and returns the 1-based count
    of the first point whose score is <= ``target`` (None if the run
    never got there) — the budget-efficiency metric the sampler bench
    and the beats-LHS test compare across samplers.
    """
    spent = 0
    for round_record in trace.rounds:
        for point, score in zip(round_record.points, round_record.scores):
            spent += 1
            if score is not None and math.isfinite(score) and score <= target:
                return spent
    return None
