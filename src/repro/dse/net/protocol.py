"""Wire protocol of `repro.dse.net`: line-delimited JSON over TCP.

Every message — request or reply — is one JSON object on one
``\\n``-terminated line, UTF-8 encoded.  Requests carry an ``op`` field;
replies carry ``ok`` (and ``error`` when ``ok`` is false).  The
protocol is strictly request/reply on one connection, so a plain
blocking socket client with a lock is a complete implementation.

Ops (see ``CampaignServer.handle_message`` for the authoritative
dispatch):

==========  =========================================  ======================
op          request fields                             reply fields
==========  =========================================  ======================
hello       worker, version                            ok, server, version
lease       worker                                     ok, task {task,key,
                                                       target,spec,seed,ttl}
                                                       | tasks [task, ...]
                                                       | idle | stop
heartbeat   worker, task                               ok
result      worker, task, outcome [ok,result,          ok [, stale]
            error, elapsed]
status      —                                          ok, pending, leased,
                                                       results, workers,
                                                       stopping
==========  =========================================  ======================

A ``tasks`` lease reply is a batched lease: the server claimed a whole
chunk (tasks published with a ``"batch"`` hint) in one round trip; the
worker evaluates the chunk together and uploads one ``result`` per
task.  Version 2 added it — v1 workers would reject the unknown reply
op, so the hello version check keeps mixed deployments out.
"""

import json
import re
import socket
import threading
from typing import Dict, Optional, Tuple

PROTOCOL_VERSION = 2

#: Default server port (--port on ``serve``/``worker``/``supervise``).
DEFAULT_PORT = 7741

#: Hard cap on one message line.  A result payload is one evaluated
#: point's record — megabytes would already be pathological; the cap
#: only exists so a corrupt peer cannot balloon server memory.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Worker ids become lease-journal file names on the server; restrict
#: them to a filesystem- and protocol-safe charset.
_WORKER_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


class ProtocolError(ValueError):
    """A malformed message, oversized line, or closed-mid-line peer."""


def valid_worker_id(worker) -> bool:
    return isinstance(worker, str) and bool(_WORKER_ID.match(worker))


def encode_message(message: Dict) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("message exceeds %d bytes" % MAX_LINE_BYTES)
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed message: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("message is not an object")
    return message


def parse_connect(value: str) -> Tuple[str, int]:
    """Parse a ``host:port`` endpoint, with one-line errors.

    Raises:
        ProtocolError: Empty host, missing/non-numeric/out-of-range
            port.  (``[v6::addr]:port`` bracket syntax is accepted.)
    """
    text = str(value).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or not port_text:
        raise ProtocolError(
            "invalid --connect %r: expected host:port" % (value,)
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(
            "invalid --connect %r: port %r is not a number" % (value, port_text)
        )
    if not 1 <= port <= 65535:
        raise ProtocolError(
            "invalid --connect %r: port must be in 1..65535" % (value,)
        )
    return host, port


class Connection:
    """Blocking request/reply client for one server connection.

    Request and reply are paired under a lock, so several threads (the
    worker's main loop and its heartbeat thread) can share one
    connection without interleaving frames.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._lock = threading.Lock()

    def connect(self) -> None:
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def request(self, message: Dict) -> Dict:
        """Send one message, block for its reply.

        Raises:
            ConnectionError: Not connected, or the peer closed before
                replying (a torn reply line counts: a half-received
                reply cannot be acted on).
            ProtocolError: The reply was not a JSON object.
        """
        with self._lock:
            if self._sock is None or self._file is None:
                raise ConnectionError("not connected")
            self._sock.sendall(encode_message(message))
            line = self._file.readline(MAX_LINE_BYTES + 1)
            if not line.endswith(b"\n"):
                raise ConnectionError("server closed the connection")
            return decode_message(line)

    def close(self) -> None:
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._file = None
        self._sock = None
