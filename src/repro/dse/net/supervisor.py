"""The worker fleet supervisor: spawn, respawn, autoscale.

Polls the campaign server's ``status`` op and keeps a fleet of local
``worker --connect`` subprocesses sized to the queue:

    target = clamp(pending, min_workers, max_workers)

where ``pending`` counts unfinished tasks (leased or not) — a queue
with 3 points left should not hold 16 idle workers, and an empty poll
drops back to ``min_workers`` so the fleet is warm for the next batch.
A worker that died (crash, OOM, operator SIGKILL) is detected by
``poll()`` and replaced on the next tick; scale-down terminates the
newest workers first (their expired leases are reclaimed by the
survivors).  When the server reports ``stopping`` — or stops answering
for ``grace`` consecutive ticks after having been reachable — the
supervisor winds the fleet down and exits.
"""

import logging
import os
import subprocess
import sys
import time
from typing import Callable, Dict, Optional, Tuple, Union

from repro.dse.net.protocol import Connection, ProtocolError, parse_connect

logger = logging.getLogger(__name__)


def probe_status(
    connect: Union[str, Tuple[str, int]], timeout: float = 5.0
) -> Dict:
    """One ``status`` round-trip on a fresh connection.

    Raises ``OSError``/:class:`ProtocolError` when the server is
    unreachable or answers garbage — the caller decides how many
    misses to forgive.
    """
    host, port = (
        parse_connect(connect) if isinstance(connect, str) else connect
    )
    conn = Connection(host, port, timeout=timeout)
    conn.connect()
    try:
        reply = conn.request({"op": "status"})
    finally:
        conn.close()
    if not reply.get("ok"):
        raise ProtocolError(str(reply.get("error")))
    return reply


class Supervisor:
    """Keep a local fleet of network workers alive and right-sized.

    ``spawn`` and ``probe`` are injectable so the scaling policy is
    unit-testable with fakes; one :meth:`step` is one supervision tick
    (prune dead, probe, resize), and :meth:`run` loops steps at
    ``interval`` until the campaign ends or the server disappears.
    """

    def __init__(
        self,
        connect: Union[str, Tuple[str, int]],
        min_workers: int = 1,
        max_workers: int = 4,
        interval: float = 1.0,
        worker_poll: float = 0.5,
        grace: int = 5,
        spawn: Optional[Callable[[], "subprocess.Popen"]] = None,
        probe: Optional[Callable[[], Dict]] = None,
    ):
        if min_workers < 0:
            raise ValueError("min_workers must be >= 0")
        if max_workers < max(min_workers, 1):
            raise ValueError("max_workers must be >= max(min_workers, 1)")
        self.address = (
            parse_connect(connect) if isinstance(connect, str) else connect
        )
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.interval = float(interval)
        self.worker_poll = float(worker_poll)
        self.grace = int(grace)
        self._spawn = spawn if spawn is not None else self._spawn_worker
        self._probe = (
            probe if probe is not None else lambda: probe_status(self.address)
        )
        self.procs = []
        self.spawned = 0
        self.respawned = 0
        self._misses = 0
        self._contacted = False

    def _spawn_worker(self) -> "subprocess.Popen":
        import repro

        # Workers must import this very checkout, wherever the
        # supervisor found it.
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        cmd = [
            sys.executable, "-m", "repro.dse", "worker",
            "--connect", "%s:%d" % self.address,
            "--poll", str(self.worker_poll),
        ]
        return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)

    def target_for(self, status: Optional[Dict]) -> int:
        """The fleet size one status observation asks for."""
        if status is None:
            # Server unreachable: keep the current fleet through the
            # grace window (workers may be mid-evaluation and will
            # reconnect on their own), then wind down.
            return len(self.procs) if self._misses < self.grace else 0
        if status.get("stopping"):
            return 0
        return max(self.min_workers, min(self.max_workers,
                                         int(status.get("pending", 0))))

    def step(self) -> Dict:
        """One supervision tick; returns what happened for logging."""
        alive = [proc for proc in self.procs if proc.poll() is None]
        died = len(self.procs) - len(alive)
        self.procs = alive
        try:
            status = self._probe()
            self._misses = 0
            self._contacted = True
        except (OSError, ProtocolError):
            self._misses += 1
            status = None
        target = self.target_for(status)
        started = 0
        while len(self.procs) < target:
            self.procs.append(self._spawn())
            self.spawned += 1
            started += 1
        stopped = 0
        while len(self.procs) > target:
            proc = self.procs.pop()
            proc.terminate()
            stopped += 1
        if died and started:
            self.respawned += min(died, started)
        return {
            "alive": len(self.procs),
            "started": started,
            "stopped": stopped,
            "died": died,
            "server": status is not None,
            "pending": None if status is None else status.get("pending"),
            "stopping": bool(status and status.get("stopping")),
        }

    def run(self, log: Optional[Callable[[str], None]] = None) -> int:
        """Supervise until the campaign stops or the server vanishes.

        Returns 0 after a clean campaign wind-down, 1 if the server
        was never reachable (or vanished without saying ``stopping``).
        """
        clean = False
        try:
            while True:
                info = self.step()
                if log is not None and (
                    info["started"] or info["stopped"] or info["died"]
                ):
                    log(
                        "fleet %d (+%d/-%d, %d died), pending=%s"
                        % (
                            info["alive"], info["started"], info["stopped"],
                            info["died"], info["pending"],
                        )
                    )
                if info["stopping"] and not self.procs:
                    clean = True
                    break
                if self._misses >= self.grace and not self.procs:
                    break
                time.sleep(self.interval)
        finally:
            self.shutdown()
        return 0 if clean else 1

    def shutdown(self, timeout: float = 10.0) -> None:
        """Terminate (then kill) whatever is left of the fleet.

        A worker that survives both the terminate grace window and the
        follow-up SIGKILL (unkillable: stuck in uninterruptible I/O, or
        a ptrace-frozen process) is logged with its pid instead of
        silently leaked — an operator must know the host still carries
        it.
        """
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self.procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    logger.warning(
                        "worker pid %d survived terminate and kill during "
                        "supervisor shutdown; leaking it",
                        proc.pid,
                    )
        del self.procs[:]
