"""The network worker client: lease over TCP, evaluate, stream back.

The network twin of :func:`repro.dse.executors.run_worker`: same
evaluation entry (:func:`repro.dse.runner.execute_batch_tasks`), same
wind-down conditions (server ``stop`` reply, ``idle_timeout``,
``once``, ``max_tasks``) — but every queue interaction is a
request/reply to the campaign server instead of a filesystem
operation, so the worker host needs no shared mount.

Disconnect handling: the connection is retried with decorrelated-jitter
exponential backoff (a SIGKILLed server restarted on the same port is
picked up transparently, and a whole fleet that lost it at the same
instant fans its retries out instead of thundering back in lockstep),
and an evaluated-but-unreported outcome survives the reconnect and is
delivered first — an evaluation is minutes of Monte Carlo; a dropped
socket must not discard it.
"""

import logging
import random
import threading
import time
from typing import Optional, Tuple, Union

from repro.dse.executors import default_worker_id
from repro.dse.net.protocol import (
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    parse_connect,
)
from repro.dse.runner import execute_batch_tasks

logger = logging.getLogger(__name__)


def reconnect_backoff(
    wait: float, base: float, max_backoff: float, rng: "random.Random"
) -> float:
    """Next reconnect delay under decorrelated jitter.

    ``min(max_backoff, uniform(base, wait * 3))``: grows roughly
    exponentially in expectation but never in lockstep — a supervised
    fleet that lost its server at the same instant would otherwise
    retry in synchronised waves (a thundering herd on the restarted
    server).  Always returns a value in ``[base, max_backoff]``.
    """
    return min(float(max_backoff), rng.uniform(base, max(base, wait * 3.0)))


class _NetHeartbeat:
    """Beat leased task(s) over the shared connection while evaluating.

    Requests are lock-paired on the connection, so beats interleave
    safely with nothing (the main thread is busy evaluating).  A beat
    that fails is swallowed: the main loop notices the dead connection
    when it reports the result, and at worst the lease expires — which
    only risks a benign duplicate evaluation, never a lost one.  A
    batch-leasing worker passes its whole chunk; one thread keeps every
    lease in it alive.

    As in the filesystem worker's heartbeat, a positive ``deadline``
    stops the beats once the evaluation has overrun its budget, so the
    server-side lease lawfully expires and survivors reclaim the task.
    """

    def __init__(
        self,
        conn: Connection,
        worker: str,
        task,
        ttl: float,
        deadline: float = 0.0,
    ):
        self._conn = conn
        self._worker = worker
        self._tasks = [task] if isinstance(task, str) else list(task)
        self._messages = [
            {"op": "heartbeat", "worker": worker, "task": tid}
            for tid in self._tasks
        ]
        self._ttl = float(ttl)
        self._deadline = float(deadline or 0.0)
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._ttl / 3.0):
            if (
                self._deadline
                and time.monotonic() - self._started > self._deadline
            ):
                return  # overran the deadline: let the lease expire
            for message in self._messages:
                try:
                    self._conn.request(message)
                except (OSError, ProtocolError):
                    pass

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        if self._thread.is_alive():
            logger.warning(
                "network heartbeat thread %r (worker %s, task(s) %s) did "
                "not stop within 5s; leaking it daemonised",
                self._thread.name,
                self._worker,
                ",".join(self._tasks),
            )


def run_network_worker(
    connect: Union[str, Tuple[str, int]],
    worker_id: Optional[str] = None,
    poll: float = 0.5,
    idle_timeout: Optional[float] = None,
    once: bool = False,
    max_tasks: Optional[int] = None,
    backoff: float = 0.5,
    max_backoff: float = 30.0,
    reconnect_timeout: Optional[float] = None,
) -> int:
    """One network worker: lease, evaluate, report, repeat.

    Args:
        connect: ``"host:port"`` or an ``(host, port)`` pair.
        worker_id: Stable identity for the server-side lease journal;
            default ``<hostname>-<pid>``.
        poll: Seconds between lease requests while the server is idle.
        idle_timeout: Exit after this long without work (None = wait
            for the server's ``stop``).
        once: Exit at the first ``idle`` reply.
        max_tasks: Exit after evaluating this many tasks.
        backoff: Initial reconnect delay; doubles per failed attempt up
            to ``max_backoff``.
        reconnect_timeout: Give up after this many seconds of
            *continuous* disconnection (None = retry forever).

    Returns:
        Number of tasks this worker evaluated.
    """
    host, port = (
        parse_connect(connect) if isinstance(connect, str) else connect
    )
    worker = worker_id if worker_id is not None else default_worker_id()
    conn = Connection(host, port)
    evaluated = 0
    idle_since = time.monotonic()
    unreported = []  # [(tid, outcome), ...] held across reconnects
    disconnected_since: Optional[float] = None
    rng = random.Random()  # per-worker stream: jitter must differ per worker
    wait = backoff
    try:
        while True:
            if not conn.connected:
                try:
                    conn.connect()
                    hello = conn.request({
                        "op": "hello",
                        "worker": worker,
                        "version": PROTOCOL_VERSION,
                    })
                    if not hello.get("ok"):
                        # A version/identity rejection is permanent;
                        # retrying would loop forever.
                        raise ProtocolError(str(hello.get("error")))
                except (OSError, ConnectionError) as exc:
                    conn.close()
                    now = time.monotonic()
                    if disconnected_since is None:
                        disconnected_since = now
                    if (
                        reconnect_timeout is not None
                        and now - disconnected_since >= reconnect_timeout
                    ):
                        raise ConnectionError(
                            "no server at %s:%d for %.0f s: %s"
                            % (host, port, reconnect_timeout, exc)
                        )
                    time.sleep(min(wait, max_backoff))
                    wait = reconnect_backoff(wait, backoff, max_backoff, rng)
                    continue
                disconnected_since = None
                wait = backoff
            try:
                if unreported:
                    # Deliver oldest-first; a drop mid-drain keeps the
                    # undelivered tail for the next (re)connection.
                    while unreported:
                        tid, outcome = unreported[0]
                        conn.request({
                            "op": "result",
                            "worker": worker,
                            "task": tid,
                            "outcome": list(outcome),
                        })
                        unreported.pop(0)
                    continue
                if max_tasks is not None and evaluated >= max_tasks:
                    break
                reply = conn.request({"op": "lease", "worker": worker})
            except (OSError, ConnectionError):
                conn.close()
                continue
            if not reply.get("ok"):
                raise ProtocolError(str(reply.get("error")))
            op = reply.get("op")
            if op == "stop":
                break
            if op == "idle":
                if once:
                    break
                if (
                    idle_timeout is not None
                    and time.monotonic() - idle_since > idle_timeout
                ):
                    break
                time.sleep(poll)
                continue
            if op == "task":
                tasks = [reply["task"]]
            elif op == "tasks":
                # A batched lease: a whole same-chunk of tasks in one
                # round trip (see CampaignServer._op_lease).
                tasks = list(reply["tasks"])
                if not tasks:
                    raise ProtocolError("empty batched lease reply")
            else:
                raise ProtocolError("unexpected lease reply op %r" % (op,))
            idle_since = time.monotonic()
            # The chunk's heartbeat budget is the sum of its members'
            # deadlines (sequential evaluation); a member without one
            # leaves the chunk unbounded, as before.
            deadlines = [float(task.get("deadline") or 0.0) for task in tasks]
            budget = sum(deadlines) if all(d > 0 for d in deadlines) else 0.0
            heartbeat = _NetHeartbeat(
                conn,
                worker,
                [task["task"] for task in tasks],
                float(tasks[0].get("ttl", 30.0)),
                deadline=budget,
            )
            try:
                outcomes = execute_batch_tasks(tasks)
            finally:
                heartbeat.stop()
            evaluated += len(tasks)
            unreported.extend(
                (task["task"], outcome)
                for task, outcome in zip(tasks, outcomes)
            )
    finally:
        conn.close()
    return evaluated
