"""The campaign server: the worker-pull coordinator, served over TCP.

:class:`CampaignServer` owns the campaign's
:class:`~repro.dse.executors.WorkQueue` and performs the claim protocol
*on behalf of* network workers: a ``lease`` request folds the lease
journals, picks a claimable task, appends the claim to that worker's
journal (the server is the journal's single writer — network workers
never touch the filesystem) and returns the task payload.  Heartbeats
and results flow back the same way.  Because every decision lands in
the same claim/outcome journals and result files the filesystem path
uses, a SIGKILLed server restarted on the same campaign directory
resumes exactly — and filesystem workers can drain the same queue
alongside network ones.

The message loop is deliberately synchronous inside one asyncio task
per connection: all queue mutations happen on the event-loop thread,
so two network workers can never race each other's claims (the
fold/claim/confirm dance still guards against *filesystem* workers
racing from other processes).
"""

import asyncio
import sys
import threading
import time
from typing import Collection, Dict, List, Optional, Set, Tuple

from repro.dse import chaos
from repro.dse.cache import ResultCache
from repro.dse.executors import (
    LeaseJournal,
    WorkerPullExecutor,
    WorkQueue,
    _claim_one,
)
from repro.dse.net.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    valid_worker_id,
)


class CampaignServer:
    """Serve leases, heartbeats and results for one campaign directory.

    The synchronous core (:meth:`handle_message`) is the authoritative
    protocol implementation and is unit-testable without sockets; the
    asyncio half (:meth:`start` / :class:`ServerThread`) only frames
    messages in and replies out.
    """

    def __init__(
        self,
        campaign_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl: float = 30.0,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.queue = WorkQueue(campaign_dir)
        self.queue.ensure()
        self.cache = ResultCache(self.queue.cache_dir)
        self.host = str(host)
        self.port = int(port)  # 0 = ephemeral; rewritten once bound
        self.lease_ttl = float(lease_ttl)
        #: When true, every ``lease`` reply is ``stop``: workers wind
        #: down instead of idling (set by the executor at close()).
        self.stopping = False
        self.stats = {
            "leases": 0, "heartbeats": 0, "results": 0, "cache_served": 0,
        }
        self._journals: Dict[str, LeaseJournal] = {}
        self._writers: Set[asyncio.StreamWriter] = set()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- synchronous protocol core --------------------------------------

    def _journal(self, worker: str) -> LeaseJournal:
        journal = self._journals.get(worker)
        if journal is None:
            journal = self._journals[worker] = LeaseJournal(
                self.queue.lease_path(worker), worker
            )
        return journal

    def handle_message(self, message: Dict) -> Dict:
        """Dispatch one request to its op handler; never raises."""
        op = message.get("op")
        handler = {
            "hello": self._op_hello,
            "lease": self._op_lease,
            "heartbeat": self._op_heartbeat,
            "result": self._op_result,
            "status": self._op_status,
        }.get(op)
        if handler is None:
            return {"ok": False, "error": "unknown op %r" % (op,)}
        try:
            return handler(message)
        except ProtocolError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # a bad request must not kill the server
            return {"ok": False, "error": "%s: %s" % (type(exc).__name__, exc)}

    def _worker(self, message: Dict) -> str:
        worker = message.get("worker")
        if not valid_worker_id(worker):
            raise ProtocolError("invalid worker id %r" % (worker,))
        return worker

    def _op_hello(self, message: Dict) -> Dict:
        self._worker(message)
        version = message.get("version")
        if version != PROTOCOL_VERSION:
            return {
                "ok": False,
                "error": "protocol version %r != server's %d"
                % (version, PROTOCOL_VERSION),
            }
        return {"ok": True, "server": "repro.dse", "version": PROTOCOL_VERSION}

    def _claim_next(
        self, journal: LeaseJournal, worker: str, exclude: Collection[str] = ()
    ) -> Optional[Dict]:
        """Claim one task needing evaluation, serving cache hits inline.

        ``exclude`` carries the task ids already leased into the chunk
        being assembled, so a batched lease never hands the same task
        back twice (see :func:`repro.dse.executors._claim_one`).
        """
        while True:
            task = _claim_one(
                self.queue, journal, worker, self.lease_ttl, exclude=exclude
            )
            if task is None:
                return None
            cached = self.cache.get(task["key"])
            if cached is not None and "result" in cached:
                # The point was evaluated durably in a previous life
                # (e.g. this server was SIGKILLed between a worker's
                # result upload landing in the cache and its result
                # file) — serve the record instead of burning a worker
                # on it, and keep looking for real work.
                outcome = (True, cached["result"], None,
                           float(cached.get("elapsed", 0.0)))
                self.queue.publish_result(task["task"], outcome, worker)
                journal.done(task["task"])
                self.stats["cache_served"] += 1
                continue
            return task

    def _op_lease(self, message: Dict) -> Dict:
        worker = self._worker(message)
        if self.stopping:
            return {"ok": True, "op": "stop"}
        journal = self._journal(worker)
        task = self._claim_next(journal, worker)
        if task is None:
            return {"ok": True, "op": "idle"}
        tasks = [task]
        claimed = {task["task"]}
        # A task published with a "batch" hint leases a whole chunk in
        # this one round trip; the worker evaluates it through the
        # target's batch twin and uploads one result per task.
        capacity = int(task.get("batch", 1) or 1)
        while len(tasks) < capacity:
            extra = self._claim_next(journal, worker, exclude=claimed)
            if extra is None:
                break
            tasks.append(extra)
            claimed.add(extra["task"])
        self.stats["leases"] += len(tasks)
        if len(tasks) == 1:
            return {
                "ok": True,
                "op": "task",
                "task": dict(task, ttl=self.lease_ttl),
            }
        return {
            "ok": True,
            "op": "tasks",
            "tasks": [dict(item, ttl=self.lease_ttl) for item in tasks],
        }

    def _op_heartbeat(self, message: Dict) -> Dict:
        worker = self._worker(message)
        tid = message.get("task")
        if not isinstance(tid, str) or not tid:
            raise ProtocolError("heartbeat without a task id")
        self._journal(worker).heartbeat(tid, self.lease_ttl)
        self.stats["heartbeats"] += 1
        return {"ok": True}

    def _op_result(self, message: Dict) -> Dict:
        worker = self._worker(message)
        tid = message.get("task")
        outcome = message.get("outcome")
        if not isinstance(tid, str) or not tid:
            raise ProtocolError("result without a task id")
        if not isinstance(outcome, (list, tuple)) or len(outcome) != 4:
            raise ProtocolError("outcome must be [ok, result, error, elapsed]")
        ok, result, error, elapsed = outcome
        task = self.queue.read_task(tid)
        if task is None:
            # Already consumed by the coordinator (a duplicate upload
            # after a reconnect, or a lease that expired and was served
            # by someone else) — ack so the worker drops it.
            return {"ok": True, "stale": True}
        if ok:
            # Durable store of record first, result file second — the
            # same ordering workers use, so a crash between the two
            # never loses an evaluation.
            self.cache.put(
                task["key"],
                {
                    "target": task["target"],
                    "spec": task["spec"],
                    "result": result,
                    "elapsed": float(elapsed),
                },
            )
        self.queue.publish_result(
            tid, (bool(ok), result, error, float(elapsed)), worker
        )
        self._journal(worker).done(tid)
        self.stats["results"] += 1
        return {"ok": True}

    def _op_status(self, message: Dict) -> Dict:
        pending = self.queue.pending_tasks()
        table = self.queue.lease_table()
        now = time.time()
        leased = sum(1 for tid in pending if table.owner(tid, now))
        return {
            "ok": True,
            "pending": len(pending),
            "leased": leased,
            "results": len(self.queue.available_results()),
            "workers": len(self._journals),
            "stopping": self.stopping,
        }

    # -- asyncio plumbing ------------------------------------------------

    @property
    def connection_count(self) -> int:
        return len(self._writers)

    async def _handle_client(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_message(
                        {"ok": False, "error": "message too long"}
                    ))
                    await writer.drain()
                    break
                except (ConnectionError, OSError):
                    break
                if not line or not line.endswith(b"\n"):
                    break  # peer closed (mid-line counts as closed)
                try:
                    # Chaos seam: a "drop" fault aborts this connection
                    # before the message is processed (the worker's
                    # reconnect/redeliver path owns recovery); a
                    # "delay" fault models a paused/slow server.
                    chaos.fire("server.message", path=self.queue.root)
                    reply = self.handle_message(decode_message(line))
                except chaos.ChaosDrop:
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    break
                except ProtocolError as exc:
                    reply = {"ok": False, "error": str(exc)}
                try:
                    writer.write(encode_message(reply))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES + 2,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.abort_connections()

    def abort_connections(self) -> None:
        """Hard-drop every live connection (fault injection for tests)."""
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()


class ServerThread:
    """Run a :class:`CampaignServer`'s event loop in a daemon thread.

    Lets synchronous code (the executor, tests) host the server without
    owning an event loop; ``start()`` returns once the port is bound.
    """

    def __init__(self, server: CampaignServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="dse-net-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start in 30 s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()

    def drop_connections(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.abort_connections)

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)


class NetworkExecutor(WorkerPullExecutor):
    """Worker-pull aggregation with an embedded campaign server.

    Identical coordinator semantics to
    :class:`~repro.dse.executors.WorkerPullExecutor` — publish task
    files, reopen stale dones, aggregate result files — plus a
    :class:`CampaignServer` thread so workers participate over TCP
    from hosts with *no* shared mount.  ``spawn_workers=N`` launches
    local network workers connected over loopback (the CI/e2e path);
    remote workers connect with
    ``python -m repro.dse worker --connect host:port``.
    """

    def __init__(
        self,
        campaign_dir: str,
        spawn_workers: int = 0,
        lease_ttl: float = 30.0,
        poll: float = 0.05,
        timeout: Optional[float] = None,
        spawn_idle_timeout: float = 300.0,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        super().__init__(
            campaign_dir,
            spawn_workers=spawn_workers,
            lease_ttl=lease_ttl,
            poll=poll,
            timeout=timeout,
            spawn_idle_timeout=spawn_idle_timeout,
        )
        self.server = CampaignServer(
            campaign_dir, host=host, port=port, lease_ttl=lease_ttl
        )
        self.server_thread = ServerThread(self.server)
        self.server_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` workers should connect to."""
        return (self.server.host, self.server.port)

    def drop_connections(self) -> None:
        """Abort every worker connection (fault injection for tests)."""
        self.server_thread.drop_connections()

    def _spawn_command(self) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.dse", "worker",
            "--connect", "%s:%d" % self.address,
            "--poll", str(max(self.poll, 0.01)),
        ]
        if self.spawn_idle_timeout is not None:
            cmd += [
                "--idle-timeout", str(self.spawn_idle_timeout),
                "--reconnect-timeout", str(self.spawn_idle_timeout),
            ]
        return cmd

    def close(self) -> None:
        if self._closed:
            return
        # Flip lease replies to ``stop`` and give connected workers one
        # poll interval to see it, so they exit via the protocol rather
        # than by their reconnect timeout once the server is gone.
        self.server.stopping = True
        deadline = time.monotonic() + 5.0
        while self.server.connection_count and time.monotonic() < deadline:
            time.sleep(0.02)
        try:
            super().close()
        finally:
            self.server_thread.stop()
