"""Campaign-as-a-service: lease server, network workers, supervisor.

The worker-pull protocol without the shared filesystem: a campaign
server (`server.py`) owns the :class:`~repro.dse.executors.WorkQueue`
and serves leases over line-delimited JSON on TCP; network worker
clients (`worker.py`) lease, evaluate and stream results back from
hosts with no shared mount; a supervisor (`supervisor.py`) keeps a
local fleet of worker processes alive and sized to the queue depth.

Every server decision goes through the same claim/outcome journals the
filesystem path uses, so a SIGKILLed server resumes exactly, and
filesystem workers and network workers can even drain the same queue.
"""

from repro.dse.net.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    parse_connect,
)
from repro.dse.net.server import CampaignServer, NetworkExecutor, ServerThread
from repro.dse.net.supervisor import Supervisor, probe_status
from repro.dse.net.worker import run_network_worker

__all__ = [
    "CampaignServer",
    "Connection",
    "DEFAULT_PORT",
    "NetworkExecutor",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "ServerThread",
    "Supervisor",
    "parse_connect",
    "probe_status",
    "run_network_worker",
]
