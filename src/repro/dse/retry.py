"""Budgeted per-point retries with content-derived reseeding.

Long campaigns over Monte-Carlo evaluators meet two kinds of failure:
deterministic ones (an invalid configuration raises every time) and
flaky ones (resource exhaustion, rare numerical corner cases under one
RNG stream).  A :class:`RetryPolicy` gives every point a small
invocation budget:

* each retry re-runs the point with a **reseeded** RNG — the seed is
  derived from the job's content hash *and* the attempt number (see
  :attr:`~repro.dse.jobs.Job.reseed`), so retries are deterministic yet
  decorrelated from the failing stream;
* retries back off exponentially (``backoff * factor**(attempt-1)``,
  capped), and every retry is journaled with its backoff so the
  accounting survives a crash;
* a point that fails its whole budget is **quarantined**: journaled as
  flaky, reported by ``status``, excluded from Pareto ranking, and not
  re-run on resume until ``python -m repro.dse retry`` re-releases it.

Deterministic failures therefore cost ``max_attempts`` invocations once
and then replay from the journal forever; flaky points either recover
on a reseeded attempt or land in quarantine instead of silently
poisoning the campaign.

**Timeouts are a failure class like any other**: an evaluation reaped
at its deadline (see :attr:`~repro.dse.jobs.Job.deadline`) surfaces as
a failed outcome whose error carries the
:data:`~repro.dse.runner.TIMEOUT_ERROR` prefix — it spends the same
budget, retries with the same reseeded streams (a hang under one RNG
stream may converge under another), and quarantines the same way when
the budget runs out.  ``status`` counts these separately as
``timeouts``.
"""

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.dse.jobs import Job


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for failed points.

    Args:
        max_attempts: Total evaluator invocations allowed per point
            (1 = never retry).  The budget spans resumes: attempts
            already journaled count against it.
        backoff: Base delay before the first retry [s]; 0 (the
            default) retries immediately but still journals a zero
            backoff, keeping the accounting uniform.
        backoff_factor: Multiplier per further attempt.
        max_backoff: Upper bound on any single delay [s].
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 60.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    @classmethod
    def from_dict(cls, data: Optional[Dict]) -> Optional["RetryPolicy"]:
        """Build a policy from a spec/settings dict (None passes through).

        Accepts the keyword names of the constructor::

            {"max_attempts": 3, "backoff": 0.5, "backoff_factor": 2.0}
        """
        if data is None:
            return None
        if isinstance(data, RetryPolicy):
            return data
        known = ("max_attempts", "backoff", "backoff_factor", "max_backoff")
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                "unknown retry option(s) %s; known: %s" % (unknown, list(known))
            )
        return cls(**data)

    def should_retry(self, attempts: int) -> bool:
        """True if a point that has run ``attempts`` times may run again."""
        return attempts < self.max_attempts

    def backoff_for(self, attempt: int) -> float:
        """Delay before re-running a point whose ``attempt``-th try failed."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        delay = self.backoff * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.max_backoff)

    def reseed(self, job: Job, attempts: int) -> Job:
        """The job to submit for the invocation after ``attempts`` tries.

        Same target/spec (and therefore the same content key and cache
        address) but a distinct, deterministic RNG stream.  Scheduling
        hints (``batch_size``, ``deadline``) ride along unchanged — a
        timed-out point retries under the same deadline.
        """
        return replace(job, reseed=attempts)
