"""Command-line campaigns: ``python -m repro.dse <subcommand>``.

Subcommands:

* ``describe SPEC``         — summarise a campaign spec without running it;
* ``run SPEC --dir DIR``    — run a resumable campaign with live progress;
* ``resume SPEC --dir DIR`` — shorthand for ``run --resume``;
* ``status --dir DIR``      — report a campaign directory's journal
  (including retry and quarantine counts);
* ``retry --dir DIR``       — re-release quarantined (flaky) points so
  the next ``resume`` re-runs them with a fresh retry budget;
* ``worker DIR``            — evaluate points for a worker-pull
  campaign rooted at DIR (start any number, on any host that mounts
  the directory; each claims points through lease events and exits on
  the coordinator's stop sentinel or ``--idle-timeout``);
* ``merge --dir DIR --workers-dirs D [D...]`` — fold cache/shard
  directories written elsewhere into a campaign's cache (crash-safe,
  idempotent).

``run``/``resume`` select the execution backend with ``--executor
serial|pool|worker-pull``; ``--executor worker-pull --spawn-workers N``
also launches N local workers for the run's duration (multi-host
campaigns instead start ``worker`` processes by hand).

A campaign spec is a JSON file::

    {
      "kind": "memory",
      "axes": {"subarray_rows": [128, 256], "wer_target": [1e-9, 1e-12]},
      "settings": {"num_words": 400, "error_population": 30000},
      "sampler": "grid",                   // or "lhs" / "adaptive"
      "samples": 16,                       // lhs point budget
      "sampler_options": {"batch": 8, "rounds": 4},   // adaptive knobs
      "objectives": ["edp_proxy"]
    }

    {
      "kind": "system",
      "workloads": ["bodytrack", "canneal"],
      "scenarios": ["Full-SRAM", "Full-L2-STT-MRAM"],
      "settings": {"node_nm": 45, "wer_target": 1e-9}
    }

A spec may also carry a ``"retry"`` object (``{"max_attempts": 3,
"backoff": 0.5}``) enabling budgeted retries with flaky-point
quarantine; ``--retries`` / ``--backoff`` override it per run.

``settings`` keys are passed through to :func:`run_memory_campaign` /
:func:`run_system_campaign` verbatim, so everything those accept
(``node_nm``, ``seed``, ``workers``, ...) is spec-addressable.  The
campaign directory holds ``cache/`` and the append-only
``journal.jsonl`` (legacy ``checkpoint.json`` journals are upgraded
transparently); both are written as results arrive, so a killed
``run`` continues with ``resume``.
"""

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.dse.cache import ResultCache
from repro.dse.campaign import (
    SAMPLERS,
    run_memory_campaign,
    run_system_campaign,
)
from repro.dse.checkpoint import CampaignState, journal_path
from repro.dse.executors import (
    CACHE_DIR_NAME,
    EXECUTOR_NAMES,
    WorkerStalled,
    run_worker,
)
from repro.dse.retry import RetryPolicy
from repro.dse.runner import Progress, default_workers
from repro.dse.shard import merge_caches
from repro.dse.space import ParameterSpace


def load_spec(path: str) -> Dict:
    """Read and structurally validate a campaign spec file."""
    try:
        with open(path) as handle:
            spec = json.load(handle)
    except OSError as exc:
        raise SystemExit("cannot read spec %s: %s" % (path, exc))
    except ValueError as exc:
        raise SystemExit("spec %s is not valid JSON: %s" % (path, exc))
    if not isinstance(spec, dict):
        raise SystemExit("spec %s must be a JSON object" % path)
    kind = spec.get("kind")
    if kind not in ("memory", "system"):
        raise SystemExit(
            'spec %s: "kind" must be "memory" or "system", got %r' % (path, kind)
        )
    if kind == "memory" and not isinstance(spec.get("axes"), dict):
        raise SystemExit('spec %s: memory campaigns need an "axes" object' % path)
    sampler = spec.get("sampler", "grid")
    if sampler not in SAMPLERS:
        raise SystemExit(
            "spec %s: unknown sampler %r; known: %s" % (path, sampler, SAMPLERS)
        )
    if kind == "system" and sampler != "grid":
        raise SystemExit(
            'spec %s: resumable system campaigns are grid-only; use the '
            "explore_system API for adaptive cell selection" % path
        )
    if "retry" in spec:
        try:
            RetryPolicy.from_dict(spec["retry"])
        except (TypeError, ValueError) as exc:
            raise SystemExit('spec %s: bad "retry" object: %s' % (path, exc))
    return spec


def _retry_policy(spec: Dict, args) -> Optional[RetryPolicy]:
    """The effective retry policy: spec ``retry`` + CLI overrides."""
    policy = RetryPolicy.from_dict(spec.get("retry"))
    retries = getattr(args, "retries", None)
    backoff = getattr(args, "backoff", None)
    if retries is None and backoff is None:
        return policy
    base = policy if policy is not None else RetryPolicy()
    try:
        return RetryPolicy(
            max_attempts=retries if retries is not None else base.max_attempts,
            backoff=backoff if backoff is not None else base.backoff,
            backoff_factor=base.backoff_factor,
            max_backoff=base.max_backoff,
        )
    except ValueError as exc:
        raise SystemExit("invalid --retries/--backoff: %s" % exc)


def _memory_space(spec: Dict) -> ParameterSpace:
    space = ParameterSpace()
    for name, values in spec["axes"].items():
        space.add(name, values)
    return space


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return "%d:%02d:%02d" % (seconds // 3600, seconds % 3600 // 60, seconds % 60)
    return "%02d:%02d" % (seconds // 60, seconds % 60)


def progress_printer(stream=None):
    """A progress callback rendering a one-line live status."""
    stream = stream if stream is not None else sys.stderr

    def show(event: Progress) -> None:
        line = "\r%4d/%d done  %d cached  %d failed  eta %s" % (
            event.done,
            event.total,
            event.cached,
            event.failed,
            _format_eta(event.eta),
        )
        stream.write(line)
        if event.done == event.total:
            stream.write("\n")
        stream.flush()

    return show


# -- subcommands --------------------------------------------------------


def cmd_describe(args) -> int:
    spec = load_spec(args.spec)
    sampler = spec.get("sampler", "grid")
    settings = spec.get("settings", {})
    print("kind:      %s" % spec["kind"])
    print("sampler:   %s" % sampler)
    if spec["kind"] == "memory":
        space = _memory_space(spec)
        for axis in space.axes:
            print("axis:      %s = %s" % (axis.name, list(axis.values)))
        print("grid size: %d" % space.size)
        if sampler == "lhs":
            print("lhs jobs:  %s" % spec.get("samples", "(samples missing)"))
        elif sampler == "adaptive":
            options = spec.get("sampler_options", {})
            batch = options.get("batch", 8)
            rounds = options.get("rounds", 4)
            print(
                "adaptive:  <= %d jobs (%d rounds x %d batch), objectives %s"
                % (
                    batch * rounds,
                    rounds,
                    batch,
                    spec.get("objectives", ["edp_proxy"]),
                )
            )
    else:
        workloads = spec.get("workloads")
        scenarios = spec.get("scenarios")
        from repro.archsim.workloads import PARSEC_KERNELS
        from repro.magpie.scenarios import Scenario

        names = workloads if workloads is not None else sorted(PARSEC_KERNELS)
        chosen = scenarios if scenarios is not None else [s.value for s in Scenario]
        print("workloads: %s" % list(names))
        print("scenarios: %s" % list(chosen))
        print("grid size: %d" % (len(names) * len(chosen)))
    for key in sorted(settings):
        print("setting:   %s = %r" % (key, settings[key]))
    print("workers:   %d (default; REPRO_DSE_WORKERS overrides)" % default_workers())
    return 0


def _executor_options(args) -> Optional[Dict]:
    """Keyword options for a named executor, from the CLI flags."""
    options = {}
    if getattr(args, "spawn_workers", None):
        options["spawn_workers"] = args.spawn_workers
    if getattr(args, "lease_ttl", None) is not None:
        options["lease_ttl"] = args.lease_ttl
    if getattr(args, "stall_timeout", None) is not None:
        options["timeout"] = args.stall_timeout
    if options and getattr(args, "executor", None) != "worker-pull":
        raise SystemExit(
            "--spawn-workers/--lease-ttl/--stall-timeout apply only to "
            "--executor worker-pull"
        )
    return options or None


def _run_campaign(spec: Dict, args, resume: bool):
    settings = dict(spec.get("settings", {}))
    if args.workers is not None:
        settings["workers"] = args.workers
    workers_dirs = getattr(args, "workers_dirs", None)
    if workers_dirs:
        # A typo or an unmounted share must not silently merge nothing
        # and re-evaluate every remotely-computed point.
        missing = [d for d in workers_dirs if not os.path.isdir(d)]
        if missing:
            raise SystemExit(
                "--workers-dirs: not a directory: %s" % ", ".join(missing)
            )
    progress = None if args.quiet else progress_printer()
    common = dict(
        campaign_dir=args.dir,
        resume=resume,
        retry_failed=args.retry_failed,
        retry=_retry_policy(spec, args),
        progress=progress,
        executor=getattr(args, "executor", None),
        executor_options=_executor_options(args),
        workers_dirs=workers_dirs,
        **settings,
    )
    if spec["kind"] == "memory":
        return run_memory_campaign(
            _memory_space(spec),
            sampler=spec.get("sampler", "grid"),
            samples=spec.get("samples"),
            sampler_options=spec.get("sampler_options"),
            objectives=tuple(spec.get("objectives", ("edp_proxy",))),
            **common,
        )
    return run_system_campaign(
        workloads=spec.get("workloads"),
        scenarios=spec.get("scenarios"),
        **common,
    )


def _summarise(result, campaign_dir: str, elapsed: float) -> None:
    records = result.records()
    print("campaign finished in %.1f s" % elapsed)
    print("  points:   %d" % len(result.outcomes if hasattr(result, "outcomes")
                                 else result.results))
    if hasattr(result, "errors"):
        print("  feasible: %d   errors: %d   infeasible: %d"
              % (len(records), len(result.errors()), result.infeasible()))
    if result.cache_stats is not None:
        print("  cache:    %(hits)d hits / %(misses)d misses / %(writes)d writes"
              % result.cache_stats)
    front = result.pareto()
    print("  pareto:   %d non-dominated" % len(front))
    if result.adaptive is not None:
        print("  adaptive: %d rounds, %d evaluations, best score %s"
              % (
                  len(result.adaptive.rounds),
                  result.adaptive.evaluations,
                  result.adaptive.best_score,
              ))
    if getattr(result, "quarantined", None):
        print("  flaky:    %d quarantined (python -m repro.dse retry --dir %s)"
              % (len(result.quarantined), campaign_dir))
    print("  journal:  %s" % journal_path(campaign_dir))


def cmd_run(args, resume: bool = False) -> int:
    spec = load_spec(args.spec)
    start = time.perf_counter()
    try:
        result = _run_campaign(spec, args, resume=resume or args.resume)
    except WorkerStalled as exc:
        print("campaign stalled: %s" % exc, file=sys.stderr)
        print(
            "start workers with: python -m repro.dse worker %s" % args.dir,
            file=sys.stderr,
        )
        return 3
    _summarise(result, args.dir, time.perf_counter() - start)
    return 0


def cmd_resume(args) -> int:
    return cmd_run(args, resume=True)


def cmd_status(args) -> int:
    path = journal_path(args.dir)
    try:
        state = CampaignState.load(path)
    except FileNotFoundError:
        print("no campaign journal at %s" % path, file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    status = state.status()
    percent = (
        100.0 * status["done"] / status["total"] if status["total"] else 0.0
    )
    print("campaign:  %s..." % status["campaign_key"][:16])
    print("progress:  %d/%d done (%.1f%%), %d failed, %d remaining"
          % (
              status["done"],
              status["total"],
              percent,
              status["failed"],
              status["remaining"],
          ))
    print("retries:   %d point(s) retried (%d extra runs), %d quarantined"
          % (status["retried"], status["retries"], status["quarantined"]))
    if status["quarantined"]:
        print("flaky:     release with: python -m repro.dse retry --dir %s"
              % args.dir)
    print("updated:   %s" % time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(status["updated"])
    ))
    cache = ResultCache(os.path.join(args.dir, CACHE_DIR_NAME))
    print("cache:     %d entries" % len(cache))
    meta = status.get("meta") or {}
    if meta.get("kind"):
        print("kind:      %s" % meta["kind"])
    if meta.get("sampler"):
        print("sampler:   %s" % meta["sampler"])
    if args.json:
        print(json.dumps(status, indent=2))
    return 0


def cmd_retry(args) -> int:
    """Re-release quarantined points so ``resume`` re-runs them."""
    path = journal_path(args.dir)
    try:
        state = CampaignState.load(path)
    except FileNotFoundError:
        print("no campaign journal at %s" % path, file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.key:
        unknown = [key for key in args.key if key not in state.quarantined]
        if unknown:
            print(
                "not quarantined: %s" % ", ".join(unknown), file=sys.stderr
            )
            return 2
        keys = args.key
    else:
        keys = None
    try:
        released = state.release(keys)
        state.close()
    except OSError as exc:
        print("cannot update journal: %s" % exc, file=sys.stderr)
        return 2
    print("released %d quarantined point(s)" % len(released))
    if released:
        print("re-run them with: python -m repro.dse resume SPEC --dir %s"
              % args.dir)
    return 0


def cmd_worker(args) -> int:
    """Evaluate points for a worker-pull campaign until stopped."""
    try:
        evaluated = run_worker(
            args.dir,
            worker_id=args.id,
            lease_ttl=args.ttl,
            poll=args.poll,
            idle_timeout=args.idle_timeout,
            once=args.once,
            max_tasks=args.max_tasks,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print("worker done: evaluated %d task(s)" % evaluated)
    return 0


def cmd_merge(args) -> int:
    """Fold worker cache/shard directories into a campaign's cache."""
    missing = [d for d in args.workers_dirs if not os.path.isdir(d)]
    if missing:
        print("not a directory: %s" % ", ".join(missing), file=sys.stderr)
        return 2
    dest = os.path.join(args.dir, CACHE_DIR_NAME)
    counts = merge_caches(dest, args.workers_dirs)
    print(
        "merged %(merged)d record(s) (%(skipped)d already present, "
        "%(corrupt)d corrupt skipped)" % counts
    )
    print("cache:     %d entries" % len(ResultCache(dest)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Resumable design-space-exploration campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="summarise a campaign spec")
    describe.add_argument("spec", help="campaign spec JSON file")
    describe.set_defaults(func=cmd_describe)

    def add_run_arguments(command):
        command.add_argument("spec", help="campaign spec JSON file")
        command.add_argument(
            "--dir", required=True,
            help="campaign directory (cache/ + journal.jsonl)",
        )
        command.add_argument(
            "--workers", type=int, default=None,
            help="pool size (default: REPRO_DSE_WORKERS or CPU count)",
        )
        command.add_argument(
            "--retry-failed", action="store_true",
            help="re-run points the journal marks failed "
                 "(releases quarantined points first)",
        )
        command.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="retry budget per point (total attempts; enables "
                 "reseeded retries + flaky-point quarantine)",
        )
        command.add_argument(
            "--backoff", type=float, default=None, metavar="SECONDS",
            help="base exponential backoff between attempts",
        )
        command.add_argument(
            "--quiet", action="store_true", help="suppress live progress"
        )
        command.add_argument(
            "--executor", choices=EXECUTOR_NAMES, default=None,
            help="execution backend (default: in-process pool; "
                 "worker-pull leases points to `worker` processes)",
        )
        command.add_argument(
            "--spawn-workers", type=int, default=0, metavar="N",
            help="with --executor worker-pull: launch N local worker "
                 "processes for the run's duration",
        )
        command.add_argument(
            "--lease-ttl", type=float, default=None, metavar="SECONDS",
            help="with --executor worker-pull: lease time-to-live "
                 "(a dead worker's points reclaim after this long)",
        )
        command.add_argument(
            "--stall-timeout", type=float, default=None, metavar="SECONDS",
            help="with --executor worker-pull: abort when no result "
                 "arrives for this long (default: wait forever for "
                 "workers to show up)",
        )
        command.add_argument(
            "--workers-dirs", nargs="+", default=None, metavar="DIR",
            help="cache/shard directories written elsewhere to merge "
                 "into the campaign cache before running",
        )

    run = sub.add_parser("run", help="run a campaign (resumably)")
    add_run_arguments(run)
    run.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of starting fresh",
    )
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser("resume", help="continue a killed campaign")
    add_run_arguments(resume)
    resume.set_defaults(func=cmd_resume, resume=True)

    status = sub.add_parser("status", help="report a campaign directory")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--json", action="store_true", help="also dump the raw journal status"
    )
    status.set_defaults(func=cmd_status)

    retry = sub.add_parser(
        "retry", help="re-release quarantined (flaky) points"
    )
    retry.add_argument("--dir", required=True, help="campaign directory")
    retry.add_argument(
        "--key", action="append", default=None, metavar="JOB_KEY",
        help="release only this job key (repeatable; default: all)",
    )
    retry.set_defaults(func=cmd_retry)

    worker = sub.add_parser(
        "worker", help="evaluate points for a worker-pull campaign"
    )
    worker.add_argument("dir", help="campaign directory (the coordinator's --dir)")
    worker.add_argument(
        "--id", default=None,
        help="worker identity for lease journals (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--ttl", type=float, default=30.0, metavar="SECONDS",
        help="lease time-to-live without a heartbeat (default: 30)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="queue scan interval when idle (default: 0.2)",
    )
    worker.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="exit after this long with nothing claimable "
             "(default: wait for the stop sentinel)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="exit as soon as a scan finds nothing claimable",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after evaluating N tasks",
    )
    worker.set_defaults(func=cmd_worker)

    merge = sub.add_parser(
        "merge", help="fold worker cache/shard directories into a campaign"
    )
    merge.add_argument("--dir", required=True, help="campaign directory")
    merge.add_argument(
        "--workers-dirs", nargs="+", required=True, metavar="DIR",
        help="cache/shard directories to merge into the campaign cache",
    )
    merge.set_defaults(func=cmd_merge)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
