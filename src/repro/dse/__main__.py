"""Command-line campaigns: ``python -m repro.dse <subcommand>``.

Subcommands:

* ``describe SPEC``         — summarise a campaign spec without running it;
* ``run SPEC --dir DIR``    — run a resumable campaign with live progress;
* ``resume SPEC --dir DIR`` — shorthand for ``run --resume``;
* ``status --dir DIR``      — report a campaign directory's journal
  (including retry and quarantine counts);
* ``analyze DIR``           — replay the campaign's journals into a
  read-only analytics report: evaluation-latency percentiles, worker
  utilization, cache-hit/retry/timeout rates, and Pareto-front
  evolution (``--json`` for the machine-readable payload);
* ``retry --dir DIR``       — re-release quarantined (flaky) points so
  the next ``resume`` re-runs them with a fresh retry budget;
* ``worker DIR``            — evaluate points for a worker-pull
  campaign rooted at DIR (start any number, on any host that mounts
  the directory; each claims points through lease events and exits on
  the coordinator's stop sentinel or ``--idle-timeout``);
* ``worker --connect HOST:PORT`` — evaluate points for a *served*
  campaign over TCP (no shared mount; retries with backoff on
  disconnect);
* ``serve SPEC --dir DIR --port N`` — run a campaign whose points are
  leased to network workers by an embedded campaign server;
* ``supervise --connect HOST:PORT --min A --max B`` — keep a local
  fleet of network workers alive, respawning dead ones and autoscaling
  between A and B against the server's queue depth;
* ``merge --dir DIR --workers-dirs D [D...]`` — fold cache/shard
  directories written elsewhere into a campaign's cache (crash-safe,
  idempotent).

``run``/``resume`` select the execution backend with ``--executor
serial|pool|worker-pull|network``; ``--executor worker-pull
--spawn-workers N`` also launches N local workers for the run's
duration (multi-host campaigns instead start ``worker`` processes by
hand, and ``serve`` is sugar for ``run --executor network``).

A campaign spec is a JSON file::

    {
      "kind": "memory",
      "axes": {"subarray_rows": [128, 256], "wer_target": [1e-9, 1e-12]},
      "settings": {"num_words": 400, "error_population": 30000},
      "sampler": "grid",            // or "lhs" / "adaptive" / "surrogate"
      "samples": 16,                       // lhs point budget
      "sampler_options": {"batch": 8, "rounds": 4},   // sampler knobs
      "objectives": ["edp_proxy"],
      "fidelity": "ladder",                // or "high" (default) / "low"
      "promote_ranks": 1                   // ladder promotion depth
    }

    {
      "kind": "system",
      "workloads": ["bodytrack", "canneal"],
      "scenarios": ["Full-SRAM", "Full-L2-STT-MRAM"],
      "settings": {"node_nm": 45, "wer_target": 1e-9}
    }

A spec may also carry a ``"retry"`` object (``{"max_attempts": 3,
"backoff": 0.5}``) enabling budgeted retries with flaky-point
quarantine; ``--retries`` / ``--backoff`` override it per run.  A
top-level ``"batch": N`` evaluates up to N points per worker
invocation through the batched evaluator (``--batch-size`` overrides
it per run); batching is a scheduling hint — results and the campaign
signature are identical to unbatched runs.  A top-level
``"deadline": SECONDS`` bounds every evaluation's wall clock
(``--deadline`` overrides it per run): a point still running past it
is reaped and journaled as a timeout failure, retryable and
quarantinable like any other failure, and counted by ``status``.

``settings`` keys are passed through to :func:`run_memory_campaign` /
:func:`run_system_campaign` verbatim, so everything those accept
(``node_nm``, ``seed``, ``workers``, ...) is spec-addressable.  The
campaign directory holds ``cache/`` and the append-only
``journal.jsonl`` (legacy ``checkpoint.json`` journals are upgraded
transparently); both are written as results arrive, so a killed
``run`` continues with ``resume``.
"""

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.dse.cache import ResultCache
from repro.dse.campaign import (
    MODEL_SAMPLERS,
    SAMPLERS,
    run_memory_campaign,
    run_system_campaign,
)
from repro.dse.fidelity import FIDELITY_MODES
from repro.dse.checkpoint import CampaignState, journal_path
from repro.dse.executors import (
    CACHE_DIR_NAME,
    EXECUTOR_NAMES,
    WorkerStalled,
    run_worker,
)
from repro.dse.retry import RetryPolicy
from repro.dse.runner import Progress, default_workers
from repro.dse.shard import merge_caches
from repro.dse.space import ParameterSpace


def _positive_int(text: str) -> int:
    """Argparse type: an integer >= 1, rejected with a one-line error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1, got %d" % value)
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0, got %d" % value)
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not a number" % text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0, got %s" % text)
    return value


def _objective_arg(text: str):
    """Argparse type: ``KEY`` or ``KEY:min`` / ``KEY:max``."""
    if ":" in text:
        key, _, sense = text.rpartition(":")
        if not key or sense not in ("min", "max"):
            raise argparse.ArgumentTypeError(
                "objective must be KEY or KEY:min / KEY:max, got %r" % text
            )
        return (key, sense)
    return text


def _connect_endpoint(text: str) -> str:
    """Argparse type: validate ``host:port`` at parse time."""
    from repro.dse.net.protocol import ProtocolError, parse_connect

    try:
        parse_connect(text)
    except ProtocolError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def load_spec(path: str) -> Dict:
    """Read and structurally validate a campaign spec file."""
    try:
        with open(path) as handle:
            spec = json.load(handle)
    except OSError as exc:
        raise SystemExit("cannot read spec %s: %s" % (path, exc))
    except ValueError as exc:
        raise SystemExit("spec %s is not valid JSON: %s" % (path, exc))
    if not isinstance(spec, dict):
        raise SystemExit("spec %s must be a JSON object" % path)
    kind = spec.get("kind")
    if kind not in ("memory", "system"):
        raise SystemExit(
            'spec %s: "kind" must be "memory" or "system", got %r' % (path, kind)
        )
    if kind == "memory" and not isinstance(spec.get("axes"), dict):
        raise SystemExit('spec %s: memory campaigns need an "axes" object' % path)
    sampler = spec.get("sampler", "grid")
    if sampler not in SAMPLERS:
        raise SystemExit(
            "spec %s: unknown sampler %r; known: %s" % (path, sampler, SAMPLERS)
        )
    if kind == "system" and sampler != "grid":
        raise SystemExit(
            'spec %s: resumable system campaigns are grid-only; use the '
            "explore_system API for adaptive cell selection" % path
        )
    fidelity = spec.get("fidelity", "high")
    if fidelity not in FIDELITY_MODES:
        raise SystemExit(
            "spec %s: unknown fidelity %r; known: %s"
            % (path, fidelity, FIDELITY_MODES)
        )
    if fidelity != "high":
        if kind != "memory":
            raise SystemExit(
                'spec %s: "fidelity" applies to memory campaigns only' % path
            )
        if sampler in MODEL_SAMPLERS:
            raise SystemExit(
                'spec %s: fidelity %r requires a static sampler '
                '("grid"/"lhs")' % (path, fidelity)
            )
    if "promote_ranks" in spec:
        ranks = spec["promote_ranks"]
        if not isinstance(ranks, int) or isinstance(ranks, bool) or ranks < 0:
            raise SystemExit(
                'spec %s: "promote_ranks" must be a non-negative integer, '
                "got %r" % (path, ranks)
            )
    if "retry" in spec:
        try:
            RetryPolicy.from_dict(spec["retry"])
        except (TypeError, ValueError) as exc:
            raise SystemExit('spec %s: bad "retry" object: %s' % (path, exc))
    if "batch" in spec:
        batch = spec["batch"]
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise SystemExit(
                'spec %s: "batch" must be a positive integer, got %r'
                % (path, batch)
            )
    if "deadline" in spec:
        deadline = spec["deadline"]
        if (
            not isinstance(deadline, (int, float))
            or isinstance(deadline, bool)
            or deadline <= 0
        ):
            raise SystemExit(
                'spec %s: "deadline" must be a positive number of seconds, '
                "got %r" % (path, deadline)
            )
    return spec


def _retry_policy(spec: Dict, args) -> Optional[RetryPolicy]:
    """The effective retry policy: spec ``retry`` + CLI overrides."""
    policy = RetryPolicy.from_dict(spec.get("retry"))
    retries = getattr(args, "retries", None)
    backoff = getattr(args, "backoff", None)
    if retries is None and backoff is None:
        return policy
    base = policy if policy is not None else RetryPolicy()
    try:
        return RetryPolicy(
            max_attempts=retries if retries is not None else base.max_attempts,
            backoff=backoff if backoff is not None else base.backoff,
            backoff_factor=base.backoff_factor,
            max_backoff=base.max_backoff,
        )
    except ValueError as exc:
        raise SystemExit("invalid --retries/--backoff: %s" % exc)


def _memory_space(spec: Dict) -> ParameterSpace:
    space = ParameterSpace()
    for name, values in spec["axes"].items():
        space.add(name, values)
    return space


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return "%d:%02d:%02d" % (seconds // 3600, seconds % 3600 // 60, seconds % 60)
    return "%02d:%02d" % (seconds // 60, seconds % 60)


def progress_printer(stream=None):
    """A progress callback rendering a one-line live status."""
    stream = stream if stream is not None else sys.stderr

    def show(event: Progress) -> None:
        line = "\r%4d/%d done  %d cached  %d failed  eta %s" % (
            event.done,
            event.total,
            event.cached,
            event.failed,
            _format_eta(event.eta),
        )
        stream.write(line)
        if event.done == event.total:
            stream.write("\n")
        stream.flush()

    return show


# -- subcommands --------------------------------------------------------


def cmd_describe(args) -> int:
    spec = load_spec(args.spec)
    sampler = spec.get("sampler", "grid")
    settings = spec.get("settings", {})
    print("kind:      %s" % spec["kind"])
    print("sampler:   %s" % sampler)
    if spec["kind"] == "memory":
        space = _memory_space(spec)
        for axis in space.axes:
            print("axis:      %s = %s" % (axis.name, list(axis.values)))
        print("grid size: %d" % space.size)
        if sampler == "lhs":
            print("lhs jobs:  %s" % spec.get("samples", "(samples missing)"))
        elif sampler == "adaptive":
            options = spec.get("sampler_options", {})
            batch = options.get("batch", 8)
            rounds = options.get("rounds", 4)
            print(
                "adaptive:  <= %d jobs (%d rounds x %d batch), objectives %s"
                % (
                    batch * rounds,
                    rounds,
                    batch,
                    spec.get("objectives", ["edp_proxy"]),
                )
            )
        elif sampler == "surrogate":
            options = spec.get("sampler_options", {})
            batch = options.get("batch", 8)
            rounds = options.get("rounds", 6)
            print(
                "surrogate: <= %d jobs (%d rounds x %d batch), objectives %s"
                % (
                    batch * rounds,
                    rounds,
                    batch,
                    spec.get("objectives", ["edp_proxy"]),
                )
            )
        fidelity = spec.get("fidelity", "high")
        if fidelity != "high":
            print(
                "fidelity:  %s (promote_ranks %d)"
                % (fidelity, spec.get("promote_ranks", 1))
            )
    else:
        workloads = spec.get("workloads")
        scenarios = spec.get("scenarios")
        from repro.archsim.workloads import PARSEC_KERNELS
        from repro.magpie.scenarios import Scenario

        names = workloads if workloads is not None else sorted(PARSEC_KERNELS)
        chosen = scenarios if scenarios is not None else [s.value for s in Scenario]
        print("workloads: %s" % list(names))
        print("scenarios: %s" % list(chosen))
        print("grid size: %d" % (len(names) * len(chosen)))
    for key in sorted(settings):
        print("setting:   %s = %r" % (key, settings[key]))
    print("workers:   %d (default; REPRO_DSE_WORKERS overrides)" % default_workers())
    return 0


def _executor_options(args) -> Optional[Dict]:
    """Keyword options for a named executor, from the CLI flags."""
    executor = getattr(args, "executor", None)
    options = {}
    if getattr(args, "spawn_workers", None):
        options["spawn_workers"] = args.spawn_workers
    if getattr(args, "lease_ttl", None) is not None:
        options["lease_ttl"] = args.lease_ttl
    if getattr(args, "stall_timeout", None) is not None:
        options["timeout"] = args.stall_timeout
    if options and executor not in ("worker-pull", "network"):
        raise SystemExit(
            "--spawn-workers/--lease-ttl/--stall-timeout apply only to "
            "--executor worker-pull or network"
        )
    if getattr(args, "bind", None) is not None or getattr(args, "port", None) is not None:
        if executor != "network":
            raise SystemExit("--bind/--port apply only to --executor network")
    if executor == "network":
        if getattr(args, "port", None) is None:
            raise SystemExit(
                "--executor network needs --port (workers must be told "
                "where to connect)"
            )
        options["port"] = args.port
        if getattr(args, "bind", None) is not None:
            options["host"] = args.bind
    return options or None


def _run_campaign(spec: Dict, args, resume: bool):
    settings = dict(spec.get("settings", {}))
    if args.workers is not None:
        settings["workers"] = args.workers
    # Batch size: spec-level "batch" is the campaign's default chunk,
    # --batch-size overrides it per run (it is a scheduling hint, not
    # part of the campaign signature, so changing it on resume is fine).
    if spec.get("batch") is not None:
        settings.setdefault("batch_size", spec["batch"])
    if getattr(args, "batch_size", None) is not None:
        settings["batch_size"] = args.batch_size
    # Deadline: same shape — spec-level "deadline" is the campaign's
    # default per-evaluation budget, --deadline overrides it per run.
    if spec.get("deadline") is not None:
        settings.setdefault("deadline", spec["deadline"])
    if getattr(args, "deadline", None) is not None:
        settings["deadline"] = args.deadline
    workers_dirs = getattr(args, "workers_dirs", None)
    if workers_dirs:
        # A typo or an unmounted share must not silently merge nothing
        # and re-evaluate every remotely-computed point.
        missing = [d for d in workers_dirs if not os.path.isdir(d)]
        if missing:
            raise SystemExit(
                "--workers-dirs: not a directory: %s" % ", ".join(missing)
            )
    progress = None if args.quiet else progress_printer()
    common = dict(
        campaign_dir=args.dir,
        resume=resume,
        retry_failed=args.retry_failed,
        retry=_retry_policy(spec, args),
        progress=progress,
        executor=getattr(args, "executor", None),
        executor_options=_executor_options(args),
        workers_dirs=workers_dirs,
        **settings,
    )
    if spec["kind"] == "memory":
        return run_memory_campaign(
            _memory_space(spec),
            sampler=spec.get("sampler", "grid"),
            samples=spec.get("samples"),
            sampler_options=spec.get("sampler_options"),
            objectives=tuple(spec.get("objectives", ("edp_proxy",))),
            fidelity=spec.get("fidelity", "high"),
            promote_ranks=spec.get("promote_ranks", 1),
            **common,
        )
    return run_system_campaign(
        workloads=spec.get("workloads"),
        scenarios=spec.get("scenarios"),
        **common,
    )


def _summarise(result, campaign_dir: str, elapsed: float) -> None:
    records = result.records()
    print("campaign finished in %.1f s" % elapsed)
    print("  points:   %d" % len(result.outcomes if hasattr(result, "outcomes")
                                 else result.results))
    if hasattr(result, "errors"):
        print("  feasible: %d   errors: %d   infeasible: %d"
              % (len(records), len(result.errors()), result.infeasible()))
    if result.cache_stats is not None:
        print("  cache:    %(hits)d hits / %(misses)d misses / %(writes)d writes"
              % result.cache_stats)
    front = result.pareto()
    print("  pareto:   %d non-dominated" % len(front))
    if result.adaptive is not None:
        print("  adaptive: %d rounds, %d evaluations, best score %s"
              % (
                  len(result.adaptive.rounds),
                  result.adaptive.evaluations,
                  result.adaptive.best_score,
              ))
    if getattr(result, "fidelity", None) is not None:
        print("  fidelity: %d screened -> %d promoted to Monte-Carlo"
              % (result.fidelity.screened, result.fidelity.promoted))
    if getattr(result, "quarantined", None):
        print("  flaky:    %d quarantined (python -m repro.dse retry --dir %s)"
              % (len(result.quarantined), campaign_dir))
    print("  journal:  %s" % journal_path(campaign_dir))


def cmd_run(args, resume: bool = False) -> int:
    spec = load_spec(args.spec)
    start = time.perf_counter()
    try:
        result = _run_campaign(spec, args, resume=resume or args.resume)
    except WorkerStalled as exc:
        print("campaign stalled: %s" % exc, file=sys.stderr)
        if getattr(args, "executor", None) == "network":
            print(
                "connect workers with: python -m repro.dse worker "
                "--connect <host>:%s" % getattr(args, "port", "PORT"),
                file=sys.stderr,
            )
        else:
            print(
                "start workers with: python -m repro.dse worker %s" % args.dir,
                file=sys.stderr,
            )
        return 3
    _summarise(result, args.dir, time.perf_counter() - start)
    return 0


def cmd_resume(args) -> int:
    return cmd_run(args, resume=True)


def _leased_count(campaign_dir: str) -> int:
    """Unexpired leases on still-pending tasks of the work queue."""
    from repro.dse.executors import WorkQueue

    queue = WorkQueue(campaign_dir)
    pending = queue.pending_tasks()
    if not pending:
        return 0
    table = queue.lease_table()
    now = time.time()
    return sum(1 for tid in pending if table.owner(tid, now))


def cmd_status(args) -> int:
    path = journal_path(args.dir)
    try:
        state = CampaignState.load(path)
    except FileNotFoundError:
        print("no campaign journal at %s" % path, file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    status = state.status()
    if args.json:
        # Machine-readable contract (supervisors, CI): exactly one JSON
        # object on stdout, nothing else.
        payload = dict(status)
        payload["cache_entries"] = len(
            ResultCache(os.path.join(args.dir, CACHE_DIR_NAME))
        )
        payload["leased"] = _leased_count(args.dir)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    percent = (
        100.0 * status["done"] / status["total"] if status["total"] else 0.0
    )
    print("campaign:  %s..." % status["campaign_key"][:16])
    print("progress:  %d/%d done (%.1f%%), %d failed (%d timed out), "
          "%d remaining"
          % (
              status["done"],
              status["total"],
              percent,
              status["failed"],
              status["timeouts"],
              status["remaining"],
          ))
    print("retries:   %d point(s) retried (%d extra runs), %d quarantined"
          % (status["retried"], status["retries"], status["quarantined"]))
    if status["quarantined"]:
        print("flaky:     release with: python -m repro.dse retry --dir %s"
              % args.dir)
    print("updated:   %s" % time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(status["updated"])
    ))
    cache = ResultCache(os.path.join(args.dir, CACHE_DIR_NAME))
    print("cache:     %d entries" % len(cache))
    meta = status.get("meta") or {}
    if meta.get("kind"):
        print("kind:      %s" % meta["kind"])
    if meta.get("sampler"):
        print("sampler:   %s" % meta["sampler"])
    return 0


def cmd_analyze(args) -> int:
    """Replay a campaign's journals into a latency/utilization report."""
    from repro.dse.analytics import build_report

    try:
        report = build_report(
            args.dir,
            objectives=args.objectives,
            pareto_samples=args.samples,
        )
    except FileNotFoundError:
        print(
            "no campaign journal at %s" % journal_path(args.dir),
            file=sys.stderr,
        )
        return 2
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        # Machine-readable contract (CI artefacts, dashboards): exactly
        # one JSON object on stdout, nothing else.
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    status = report.status
    print("campaign:   %s..." % status["campaign_key"][:16])
    print("progress:   %d/%d done, %d failed (%d timed out), "
          "%d remaining, %d quarantined"
          % (
              status["done"],
              status["total"],
              status["failed"],
              status["timeouts"],
              status["remaining"],
              status["quarantined"],
          ))
    if not report.accounting_consistent:
        print("WARNING:    accounting inconsistent "
              "(done + remaining + quarantined != total)")
    torn = (
        " (torn tail: %d bytes dropped)" % report.torn_bytes
        if report.torn_bytes
        else ""
    )
    print("journal:    %d events over %.1fs%s"
          % (report.events, report.duration_s, torn))
    print("throughput: %.3f points/s (%d evaluated completions)"
          % (report.throughput, report.completions))
    if report.latency is not None:
        print("latency:    p50 %.3fs  p90 %.3fs  p99 %.3fs  "
              "(mean %.3fs over %d points)"
              % (
                  report.latency["p50"],
                  report.latency["p90"],
                  report.latency["p99"],
                  report.latency["mean"],
                  report.latency["count"],
              ))
    else:
        print("latency:    no evaluated completions in the journal tail")
    print("rates:      cache-hit %.1f%%  retry %.1f%%  timeout %.1f%%"
          % (
              100.0 * report.rates.get("cache_hit", 0.0),
              100.0 * report.rates.get("retry", 0.0),
              100.0 * report.rates.get("timeout", 0.0),
          ))
    for fold in report.workers:
        print("worker:     %-20s %3d task(s)  busy %7.1fs / %7.1fs  "
              "(%.0f%% utilized)"
              % (
                  fold.worker,
                  fold.tasks,
                  fold.busy_s,
                  fold.span_s,
                  100.0 * fold.utilization,
              ))
    if report.pareto:
        names = ", ".join(
            "%s:%s" % tuple(o) if isinstance(o, (list, tuple)) else str(o)
            for o in report.objectives
        )
        print("pareto:     objectives [%s]" % names)
        for sample in report.pareto:
            print("pareto:     after %4d completed: front %3d, "
                  "hypervolume %.4f"
                  % (sample.completed, sample.front_size, sample.hypervolume))
    return 0


def cmd_retry(args) -> int:
    """Re-release quarantined points so ``resume`` re-runs them."""
    path = journal_path(args.dir)
    try:
        state = CampaignState.load(path)
    except FileNotFoundError:
        print("no campaign journal at %s" % path, file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.key:
        unknown = [key for key in args.key if key not in state.quarantined]
        if unknown:
            print(
                "not quarantined: %s" % ", ".join(unknown), file=sys.stderr
            )
            return 2
        keys = args.key
    else:
        keys = None
    try:
        released = state.release(keys)
        state.close()
    except OSError as exc:
        print("cannot update journal: %s" % exc, file=sys.stderr)
        return 2
    print("released %d quarantined point(s)" % len(released))
    if released:
        print("re-run them with: python -m repro.dse resume SPEC --dir %s"
              % args.dir)
    return 0


def cmd_worker(args) -> int:
    """Evaluate points for a worker-pull or served campaign."""
    if (args.dir is None) == (args.connect is None):
        print(
            "worker needs exactly one of DIR (shared filesystem) or "
            "--connect host:port (campaign server)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.connect is not None:
            from repro.dse.net import run_network_worker

            evaluated = run_network_worker(
                args.connect,
                worker_id=args.id,
                poll=args.poll,
                idle_timeout=args.idle_timeout,
                once=args.once,
                max_tasks=args.max_tasks,
                backoff=args.reconnect_backoff,
                reconnect_timeout=args.reconnect_timeout,
            )
        else:
            evaluated = run_worker(
                args.dir,
                worker_id=args.id,
                lease_ttl=args.ttl,
                poll=args.poll,
                idle_timeout=args.idle_timeout,
                once=args.once,
                max_tasks=args.max_tasks,
            )
    except (ValueError, ConnectionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print("worker done: evaluated %d task(s)" % evaluated)
    return 0


def cmd_serve(args) -> int:
    """Run a campaign served to network workers over TCP."""
    if args.executor not in (None, "network"):
        raise SystemExit("serve implies --executor network, not %r" % args.executor)
    args.executor = "network"
    if args.port is None:
        raise SystemExit(
            "serve needs --port (workers must be told where to connect)"
        )
    host = args.bind or "127.0.0.1"
    print(
        "serving campaign on %s:%d — connect workers with: "
        "python -m repro.dse worker --connect %s:%d"
        % (host, args.port, host, args.port),
        file=sys.stderr,
    )
    return cmd_run(args, resume=args.resume)


def cmd_supervise(args) -> int:
    """Supervise a local fleet of network workers."""
    from repro.dse.net import Supervisor

    try:
        supervisor = Supervisor(
            args.connect,
            min_workers=args.min,
            max_workers=args.max,
            interval=args.interval,
            worker_poll=args.worker_poll,
            grace=args.grace,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        code = supervisor.run(
            log=None if args.quiet
            else lambda line: print(line, file=sys.stderr)
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        supervisor.shutdown()
        print("supervisor interrupted", file=sys.stderr)
        return 130
    print(
        "supervisor done: %d worker(s) started, %d respawned"
        % (supervisor.spawned, supervisor.respawned)
    )
    return code


def cmd_merge(args) -> int:
    """Fold worker cache/shard directories into a campaign's cache."""
    missing = [d for d in args.workers_dirs if not os.path.isdir(d)]
    if missing:
        print("not a directory: %s" % ", ".join(missing), file=sys.stderr)
        return 2
    dest = os.path.join(args.dir, CACHE_DIR_NAME)
    counts = merge_caches(dest, args.workers_dirs)
    print(
        "merged %(merged)d record(s) (%(skipped)d already present, "
        "%(corrupt)d corrupt skipped)" % counts
    )
    print("cache:     %d entries" % len(ResultCache(dest)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Resumable design-space-exploration campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="summarise a campaign spec")
    describe.add_argument("spec", help="campaign spec JSON file")
    describe.set_defaults(func=cmd_describe)

    def add_run_arguments(command):
        command.add_argument("spec", help="campaign spec JSON file")
        command.add_argument(
            "--dir", required=True,
            help="campaign directory (cache/ + journal.jsonl)",
        )
        command.add_argument(
            "--workers", type=int, default=None,
            help="pool size (default: REPRO_DSE_WORKERS or CPU count)",
        )
        command.add_argument(
            "--retry-failed", action="store_true",
            help="re-run points the journal marks failed "
                 "(releases quarantined points first)",
        )
        command.add_argument(
            "--retries", type=_positive_int, default=None, metavar="N",
            help="retry budget per point (total attempts; enables "
                 "reseeded retries + flaky-point quarantine)",
        )
        command.add_argument(
            "--backoff", type=float, default=None, metavar="SECONDS",
            help="base exponential backoff between attempts",
        )
        command.add_argument(
            "--quiet", action="store_true", help="suppress live progress"
        )
        command.add_argument(
            "--executor", choices=EXECUTOR_NAMES, default=None,
            help="execution backend (default: in-process pool; "
                 "worker-pull leases points to `worker` processes)",
        )
        command.add_argument(
            "--spawn-workers", type=_nonnegative_int, default=0, metavar="N",
            help="with --executor worker-pull/network: launch N local "
                 "worker processes for the run's duration",
        )
        command.add_argument(
            "--lease-ttl", type=_positive_float, default=None,
            metavar="SECONDS",
            help="with --executor worker-pull/network: lease "
                 "time-to-live (a dead worker's points reclaim after "
                 "this long)",
        )
        command.add_argument(
            "--stall-timeout", type=_positive_float, default=None,
            metavar="SECONDS",
            help="with --executor worker-pull/network: abort when no "
                 "result arrives for this long (default: wait forever "
                 "for workers to show up)",
        )
        command.add_argument(
            "--bind", default=None, metavar="HOST",
            help="with --executor network: server bind address "
                 "(default: 127.0.0.1)",
        )
        command.add_argument(
            "--port", type=_positive_int, default=None, metavar="PORT",
            help="with --executor network: server TCP port",
        )
        command.add_argument(
            "--workers-dirs", nargs="+", default=None, metavar="DIR",
            help="cache/shard directories written elsewhere to merge "
                 "into the campaign cache before running",
        )
        command.add_argument(
            "--batch-size", type=_positive_int, default=None, metavar="N",
            help="evaluate up to N points per worker invocation "
                 "(overrides the spec's \"batch\"; results are "
                 "identical to unbatched runs)",
        )
        command.add_argument(
            "--deadline", type=_positive_float, default=None,
            metavar="SECONDS",
            help="per-evaluation wall-clock budget (overrides the "
                 "spec's \"deadline\"); a point still running past it "
                 "is reaped and recorded as a timeout failure",
        )

    run = sub.add_parser("run", help="run a campaign (resumably)")
    add_run_arguments(run)
    run.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of starting fresh",
    )
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser("resume", help="continue a killed campaign")
    add_run_arguments(resume)
    resume.set_defaults(func=cmd_resume, resume=True)

    serve = sub.add_parser(
        "serve",
        help="run a campaign served to network workers over TCP",
    )
    add_run_arguments(serve)
    serve.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of starting fresh",
    )
    serve.set_defaults(func=cmd_serve)

    status = sub.add_parser("status", help="report a campaign directory")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--json", action="store_true",
        help="print exactly one machine-readable JSON object "
             "(journal counts + leased + cache_entries) instead of text",
    )
    status.set_defaults(func=cmd_status)

    analyze = sub.add_parser(
        "analyze",
        help="replay a campaign's journals into a latency/utilization/"
             "Pareto report",
    )
    analyze.add_argument("dir", help="campaign directory")
    analyze.add_argument(
        "--json", action="store_true",
        help="print exactly one machine-readable JSON object instead "
             "of text (the CampaignReport payload)",
    )
    analyze.add_argument(
        "--samples", type=_positive_int, default=16, metavar="N",
        help="Pareto-evolution samples along the completion sequence "
             "(default: 16)",
    )
    analyze.add_argument(
        "--objectives", nargs="+", default=None, metavar="KEY[:min|:max]",
        type=_objective_arg,
        help="override the journaled Pareto objectives "
             "(default sense: min)",
    )
    analyze.set_defaults(func=cmd_analyze)

    retry = sub.add_parser(
        "retry", help="re-release quarantined (flaky) points"
    )
    retry.add_argument("--dir", required=True, help="campaign directory")
    retry.add_argument(
        "--key", action="append", default=None, metavar="JOB_KEY",
        help="release only this job key (repeatable; default: all)",
    )
    retry.set_defaults(func=cmd_retry)

    worker = sub.add_parser(
        "worker",
        help="evaluate points for a worker-pull or served campaign",
    )
    worker.add_argument(
        "dir", nargs="?", default=None,
        help="campaign directory (the coordinator's --dir); omit when "
             "connecting to a campaign server with --connect",
    )
    worker.add_argument(
        "--connect", type=_connect_endpoint, default=None,
        metavar="HOST:PORT",
        help="lease points from a campaign server over TCP instead of "
             "a shared filesystem",
    )
    worker.add_argument(
        "--id", default=None,
        help="worker identity for lease journals (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--ttl", type=_positive_float, default=30.0, metavar="SECONDS",
        help="lease time-to-live without a heartbeat (default: 30; "
             "--connect workers use the server's TTL instead)",
    )
    worker.add_argument(
        "--poll", type=_positive_float, default=0.2, metavar="SECONDS",
        help="queue scan interval when idle (default: 0.2)",
    )
    worker.add_argument(
        "--idle-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="exit after this long with nothing claimable "
             "(default: wait for the coordinator's stop)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="exit as soon as a scan finds nothing claimable",
    )
    worker.add_argument(
        "--max-tasks", type=_positive_int, default=None, metavar="N",
        help="exit after evaluating N tasks",
    )
    worker.add_argument(
        "--reconnect-backoff", type=_positive_float, default=0.5,
        metavar="SECONDS",
        help="with --connect: initial reconnect delay, doubling per "
             "failed attempt (default: 0.5)",
    )
    worker.add_argument(
        "--reconnect-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="with --connect: give up after this long continuously "
             "disconnected (default: retry forever)",
    )
    worker.set_defaults(func=cmd_worker)

    supervise = sub.add_parser(
        "supervise",
        help="keep a fleet of network workers alive and autoscaled",
    )
    supervise.add_argument(
        "--connect", type=_connect_endpoint, required=True,
        metavar="HOST:PORT", help="the campaign server to size against",
    )
    supervise.add_argument(
        "--min", type=_nonnegative_int, default=1, metavar="N",
        help="fleet floor while the server is up (default: 1)",
    )
    supervise.add_argument(
        "--max", type=_positive_int, default=4, metavar="N",
        help="fleet ceiling (default: 4)",
    )
    supervise.add_argument(
        "--interval", type=_positive_float, default=1.0, metavar="SECONDS",
        help="seconds between supervision ticks (default: 1)",
    )
    supervise.add_argument(
        "--worker-poll", type=_positive_float, default=0.5,
        metavar="SECONDS",
        help="--poll handed to spawned workers (default: 0.5)",
    )
    supervise.add_argument(
        "--grace", type=_positive_int, default=5, metavar="TICKS",
        help="unreachable-server ticks tolerated before winding down "
             "(default: 5)",
    )
    supervise.add_argument(
        "--quiet", action="store_true", help="suppress fleet-change logs"
    )
    supervise.set_defaults(func=cmd_supervise)

    merge = sub.add_parser(
        "merge", help="fold worker cache/shard directories into a campaign"
    )
    merge.add_argument("--dir", required=True, help="campaign directory")
    merge.add_argument(
        "--workers-dirs", nargs="+", required=True, metavar="DIR",
        help="cache/shard directories to merge into the campaign cache",
    )
    merge.set_defaults(func=cmd_merge)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
