"""Campaign journals: resume a killed campaign where it stopped.

A :class:`CampaignState` is an atomic JSON file living alongside the
:class:`~repro.dse.cache.ResultCache` that records, per job key, whether
the point completed and how.  It is written as results *arrive* (the
runner streams them), so a campaign killed after N of M points leaves a
journal with those N points and :func:`run_checkpointed` can finish the
remaining M-N without re-evaluating anything:

* successful points replay from the result cache (the journal never
  duplicates result payloads — the cache is the store of record);
* failed points replay their journaled error instead of re-raising the
  evaluator (pass ``retry_failed=True`` to re-run them);
* a journal written by a *different* campaign (other axes, other
  settings — detected via the campaign signature hash) refuses to
  resume rather than silently mixing results.

The journal and the cache may disagree by at most the in-flight point
when a campaign dies (the cache write lands just before the journal
record); resumption handles both orders, because a journaled-ok point
whose cache entry vanished simply re-evaluates.
"""

import json
import os
import tempfile
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.dse.jobs import Job, JobResult, content_key
from repro.dse.runner import CampaignRunner, Progress

#: Journal schema version (bump on incompatible layout changes).
JOURNAL_VERSION = 1

#: Default journal file name inside a campaign directory.
JOURNAL_NAME = "checkpoint.json"


def campaign_key(signature: Dict) -> str:
    """Stable hash identifying a campaign by its full configuration.

    Args:
        signature: JSON-ready dict of everything that determines the
            job list (axes, settings, sampler).  Two campaigns share a
            journal only if their signatures hash identically.
    """
    return content_key("campaign", signature)


class CampaignState:
    """Atomic on-disk journal of a campaign's completed points.

    Args:
        path: Journal file path (conventionally
            ``<campaign_dir>/checkpoint.json``).
        key: Campaign signature hash (see :func:`campaign_key`).
        total: Planned point count (advisory; adaptive campaigns grow
            it round by round).
        meta: Optional JSON-ready context stored for ``status`` display.
    """

    def __init__(
        self,
        path: str,
        key: str,
        total: int = 0,
        meta: Optional[Dict] = None,
    ):
        self.path = str(path)
        self.key = key
        self.total = int(total)
        self.meta = dict(meta) if meta else {}
        #: job key -> {"ok": bool, "error": str|None, "elapsed": float}
        self.completed: Dict[str, Dict] = {}
        self.created = time.time()
        self.updated = self.created

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "CampaignState":
        """Read a journal back.

        Raises:
            FileNotFoundError: No journal at ``path``.
            ValueError: Corrupt or incompatible journal.
        """
        with open(path) as handle:
            try:
                data = json.load(handle)
            except ValueError:
                raise ValueError("corrupt campaign journal: %s" % path)
        if not isinstance(data, dict) or "campaign_key" not in data:
            raise ValueError("not a campaign journal: %s" % path)
        if data.get("version") != JOURNAL_VERSION:
            raise ValueError(
                "journal %s has version %r, this build reads %d"
                % (path, data.get("version"), JOURNAL_VERSION)
            )
        state = cls(
            path,
            data["campaign_key"],
            total=data.get("total", 0),
            meta=data.get("meta"),
        )
        state.completed = dict(data.get("completed", {}))
        state.created = data.get("created", state.created)
        state.updated = data.get("updated", state.updated)
        return state

    @classmethod
    def open(
        cls,
        path: str,
        key: str,
        total: int,
        resume: bool = False,
        meta: Optional[Dict] = None,
    ) -> "CampaignState":
        """Create a fresh journal, or on ``resume`` reopen an existing one.

        A fresh open overwrites any stale journal at ``path``; a resume
        validates that the journal belongs to this campaign.

        Raises:
            ValueError: Resuming a journal written by a different
                campaign (signature hash mismatch), or a corrupt one.
        """
        if resume and os.path.exists(path):
            state = cls.load(path)
            if state.key != key:
                raise ValueError(
                    "journal %s belongs to a different campaign "
                    "(key %s..., expected %s...); refusing to resume"
                    % (path, state.key[:12], key[:12])
                )
            if total > state.total:
                state.total = total
            return state
        state = cls(path, key, total=total, meta=meta)
        state.save()
        return state

    def save(self) -> None:
        """Write the journal atomically (write + rename)."""
        self.updated = time.time()
        payload = {
            "version": JOURNAL_VERSION,
            "campaign_key": self.key,
            "total": self.total,
            "meta": self.meta,
            "created": self.created,
            "updated": self.updated,
            "completed": self.completed,
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- recording ------------------------------------------------------

    def record(self, outcome: JobResult) -> None:
        """Journal one completed point and persist immediately.

        Cache-served completions whose journaled status already matches
        are skipped — a resume that replays N finished points performs
        zero journal writes for them, keeping total journal I/O
        proportional to fresh evaluations.
        """
        existing = self.completed.get(outcome.job.key)
        if outcome.from_cache and existing is not None:
            if existing.get("ok") == outcome.ok:
                return
        entry = {
            "ok": outcome.ok,
            "error": outcome.error,
            "elapsed": outcome.elapsed,
        }
        if existing == entry:
            return
        self.completed[outcome.job.key] = entry
        self.save()

    def entry(self, key: str) -> Optional[Dict]:
        """The journaled record for a job key, or None."""
        return self.completed.get(key)

    # -- reporting ------------------------------------------------------

    @property
    def done(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return sum(1 for entry in self.completed.values() if not entry["ok"])

    def status(self) -> Dict:
        """JSON-ready progress summary (the CLI ``status`` payload)."""
        return {
            "campaign_key": self.key,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "remaining": max(0, self.total - self.done),
            "created": self.created,
            "updated": self.updated,
            "meta": self.meta,
        }


def run_checkpointed(
    jobs: Sequence[Job],
    runner: CampaignRunner,
    state: CampaignState,
    retry_failed: bool = False,
    progress: Optional[Callable[[Progress], None]] = None,
) -> List[JobResult]:
    """Run jobs with every completion journaled as it arrives.

    Points the journal marks failed replay their recorded error without
    touching an evaluator (unless ``retry_failed``); points it marks ok
    are submitted normally and served by the runner's result cache — so
    resuming a killed campaign re-evaluates nothing that finished.

    Results align with the input order, exactly like
    :meth:`CampaignRunner.run`.  If the consumer (or a progress
    callback) raises mid-run, everything journaled so far survives for
    the next resume.
    """
    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)

    submitted: List[Job] = []
    slots: Dict[str, deque] = {}
    for index, job in enumerate(jobs):
        entry = state.entry(job.key)
        if entry is not None and not entry["ok"] and not retry_failed:
            results[index] = JobResult(
                job=job,
                ok=False,
                error=entry["error"],
                elapsed=entry.get("elapsed", 0.0),
                from_cache=True,
            )
            continue
        slots.setdefault(job.key, deque()).append(index)
        submitted.append(job)

    for outcome in runner.run_iter(submitted, progress=progress):
        state.record(outcome)
        results[slots[outcome.job.key].popleft()] = outcome
    return results  # type: ignore[return-value]
