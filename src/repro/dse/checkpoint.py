"""Campaign journals: resume a killed campaign where it stopped.

A :class:`CampaignState` is an append-only JSONL journal (see
:mod:`repro.dse.journal` for the on-disk format) living alongside the
:class:`~repro.dse.cache.ResultCache` that records, per job key, whether
the point completed and how.  Events are appended as results *arrive*
(the runner streams them), so a campaign killed after N of M points
leaves a journal with those N points and :func:`run_checkpointed` can
finish the remaining M-N without re-evaluating anything:

* successful points replay from the result cache (the journal never
  duplicates result payloads — the cache is the store of record);
* failed points replay their journaled error instead of re-raising the
  evaluator (pass ``retry_failed=True`` to re-run them);
* with a :class:`~repro.dse.retry.RetryPolicy`, failed points re-run
  with reseeded RNG streams until their budget is spent — the budget
  is journaled, so it spans resumes — and budget-exhausted (flaky)
  points land in a **quarantine** that ``status`` reports, Pareto
  ranking excludes, and ``python -m repro.dse retry`` re-releases;
* a journal written by a *different* campaign (other axes, other
  settings — detected via the campaign signature hash) refuses to
  resume rather than silently mixing results.

Appending one event per point keeps journal I/O O(1) per point (the
legacy atomic-JSON format rewrote the whole file per point — O(n^2)
over a campaign) and a kill at *any* byte offset costs at most the torn
final line: every fully-written event survives.  Once the log grows
past a threshold it is compacted into a snapshot + one-line tail, so
resume latency stays flat.

Migration: :meth:`CampaignState.load` transparently upgrades a legacy
version-1 atomic-JSON journal (``checkpoint.json``) to JSONL — the
upgraded journal reports the identical ``status()`` and resumes with
zero re-evaluation, exactly as the legacy file would have.

The journal and the cache may disagree by at most the in-flight point
when a campaign dies (the cache write lands just before the journal
record); resumption handles both orders, because a journaled-ok point
whose cache entry vanished simply re-evaluates.
"""

import json
import os
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.dse.jobs import Job, JobResult, content_key
from repro.dse.journal import (
    JOURNAL_VERSION,
    JsonlJournal,
    atomic_write_text,
    encode_event,
    read_events,
)
from repro.dse.retry import RetryPolicy
from repro.dse.runner import CampaignRunner, Progress, is_timeout_error

#: Journal schema version read/written by this build (see journal.py).
#: Version 1 (legacy atomic-JSON) is read once and upgraded in flight.
LEGACY_JOURNAL_VERSION = 1

#: Default journal file name inside a campaign directory.
JOURNAL_NAME = "journal.jsonl"

#: Pre-JSONL journal name (read + upgraded, never written).
LEGACY_JOURNAL_NAME = "checkpoint.json"


def campaign_key(signature: Dict) -> str:
    """Stable hash identifying a campaign by its full configuration.

    Args:
        signature: JSON-ready dict of everything that determines the
            job list (axes, settings, sampler).  Two campaigns share a
            journal only if their signatures hash identically.  Retry
            policies are deliberately *not* part of the signature —
            they change how failures are handled, not which points the
            campaign evaluates.
    """
    return content_key("campaign", signature)


def journal_path(campaign_dir: str, prefer_existing: bool = True) -> str:
    """The journal file to use for a campaign directory.

    With ``prefer_existing`` (reads, resumes): the JSONL journal if
    present, else a legacy ``checkpoint.json`` (which
    :meth:`CampaignState.load` upgrades on first contact), else the
    JSONL name.  Without it (fresh runs): always the JSONL name — a
    fresh campaign must not adopt a stale legacy path.
    """
    new = os.path.join(campaign_dir, JOURNAL_NAME)
    if not prefer_existing or os.path.exists(new):
        return new
    legacy = os.path.join(campaign_dir, LEGACY_JOURNAL_NAME)
    if os.path.exists(legacy):
        return legacy
    return new


class CampaignState:
    """Append-only on-disk journal of a campaign's completed points.

    Args:
        path: Journal file path (conventionally
            ``<campaign_dir>/journal.jsonl``).
        key: Campaign signature hash (see :func:`campaign_key`).
        total: Planned point count (advisory; adaptive campaigns grow
            it round by round).
        meta: Optional JSON-ready context stored for ``status`` display.
        fsync_every: Batch ``fsync`` once per this many journal
            appends (appends are always flushed to the OS).
        compact_threshold: Compact to snapshot + tail once the log
            holds this many lines (0 disables auto-compaction).
    """

    def __init__(
        self,
        path: str,
        key: str,
        total: int = 0,
        meta: Optional[Dict] = None,
        fsync_every: int = 32,
        compact_threshold: int = 4096,
    ):
        self.path = str(path)
        self.key = key
        self._total = int(total)
        self.meta = dict(meta) if meta else {}
        #: job key -> {"ok": bool, "error": str|None, "elapsed": float}
        self.completed: Dict[str, Dict] = {}
        #: job key -> evaluator invocations journaled so far.
        self.attempts: Dict[str, int] = {}
        #: job keys whose retry budget is exhausted (flaky points).
        self.quarantined: Set[str] = set()
        #: job keys journaled as submitted (crash forensics).
        self.started: Set[str] = set()
        self.created = time.time()
        self.updated = self.created
        # High-water mark of journaled event stamps: appends clamp to
        # it so ``t`` is monotone non-decreasing per journal even when
        # the wall clock steps backwards (NTP) mid-campaign.
        self._last_t = 0.0
        #: Bytes of torn final line dropped by the last load (0 = clean).
        self.recovered_torn_bytes = 0
        self._journal = JsonlJournal(
            self.path,
            fsync_every=fsync_every,
            compact_threshold=compact_threshold,
        )
        self._ready = False  # True once a begin line is on disk

    # -- totals ---------------------------------------------------------

    @property
    def total(self) -> int:
        return self._total

    @total.setter
    def total(self, value: int) -> None:
        """Growing the plan journals a ``total`` event (adaptive rounds)."""
        value = int(value)
        if value == self._total:
            return
        self._total = value
        if self._ready:
            self._append({"event": "total", "total": value})

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "CampaignState":
        """Read a journal back (either format, upgrading legacy files).

        A version-1 atomic-JSON journal is converted to JSONL on the
        spot: the upgraded journal lands next to the legacy file (as
        ``journal.jsonl`` when the legacy file carries the
        conventional ``checkpoint.json`` name, in place otherwise) and
        the returned state appends there from now on.  ``status()`` and
        resume behaviour are identical before and after the upgrade.

        Raises:
            FileNotFoundError: No journal at ``path``.
            ValueError: Corrupt or incompatible journal.
        """
        path = str(path)
        with open(path, "rb") as handle:
            first_line = handle.readline()
        try:
            probe = json.loads(first_line.decode("utf-8", errors="replace"))
        except ValueError:
            probe = None
        if isinstance(probe, dict) and "event" in probe:
            return cls._load_jsonl(path)
        # Not an event line: legacy single-document JSON (usually one
        # line, but tolerate pretty-printed files), or garbage.
        with open(path, "rb") as handle:
            raw = handle.read()
        try:
            data = json.loads(raw.decode("utf-8", errors="replace"))
        except ValueError:
            raise ValueError("corrupt campaign journal: %s" % path)
        if not isinstance(data, dict) or "campaign_key" not in data:
            raise ValueError("not a campaign journal: %s" % path)
        if data.get("version") != LEGACY_JOURNAL_VERSION:
            raise ValueError(
                "journal %s has version %r, this build reads %d (JSONL) "
                "and upgrades %d (legacy)"
                % (path, data.get("version"), JOURNAL_VERSION,
                   LEGACY_JOURNAL_VERSION)
            )
        return cls._upgrade_legacy(path, data)

    @classmethod
    def _load_jsonl(cls, path: str) -> "CampaignState":
        """Replay snapshot + events; tolerate a torn final line."""
        events, torn = read_events(path)
        if not events:
            raise ValueError("corrupt campaign journal: %s" % path)
        begin = events[0]
        if begin.get("version") != JOURNAL_VERSION:
            raise ValueError(
                "journal %s has version %r, this build reads %d"
                % (path, begin.get("version"), JOURNAL_VERSION)
            )
        if "campaign_key" not in begin:
            raise ValueError("not a campaign journal: %s" % path)
        state = cls(
            path,
            begin["campaign_key"],
            total=begin.get("total", 0),
            meta=begin.get("meta"),
        )
        state.created = begin.get("created", state.created)
        state.updated = begin.get("updated", state.created)
        snapshot = state._journal.load_snapshot()
        if snapshot is not None and snapshot.get("campaign_key") == state.key:
            state.completed = dict(snapshot.get("completed", {}))
            state.attempts = {
                k: int(v) for k, v in snapshot.get("attempts", {}).items()
            }
            state.quarantined = set(snapshot.get("quarantined", []))
            state._total = max(state._total, int(snapshot.get("total", 0)))
            state.created = snapshot.get("created", state.created)
            state.updated = max(state.updated, snapshot.get("updated", 0.0))
        for event in events[1:]:
            state._apply(event)
        # Snapshot-folded history carried stamps up to ``updated``; new
        # appends must stay past them even though the events are gone.
        state._last_t = max(state._last_t, float(state.updated or 0.0))
        state._journal.lines = len(events)
        state.recovered_torn_bytes = torn
        state._ready = True
        return state

    @classmethod
    def _upgrade_legacy(cls, path: str, data: Dict) -> "CampaignState":
        """Convert a legacy atomic-JSON journal to JSONL, atomically."""
        directory = os.path.dirname(path) or "."
        if os.path.basename(path) == LEGACY_JOURNAL_NAME:
            target = os.path.join(directory, JOURNAL_NAME)
        else:
            target = path
        state = cls(
            target,
            data["campaign_key"],
            total=data.get("total", 0),
            meta=data.get("meta"),
        )
        state.created = data.get("created", state.created)
        state.updated = data.get("updated", state.updated)
        state.completed = dict(data.get("completed", {}))
        lines = [encode_event(state._begin_event())]
        for key, entry in state.completed.items():
            event = {
                "key": key,
                "elapsed": entry.get("elapsed", 0.0),
                "t": state.updated,
            }
            if entry.get("ok"):
                event["event"] = "done"
            else:
                event["event"] = "failed"
                event["error"] = entry.get("error")
            lines.append(encode_event(event))
        try:
            atomic_write_text(target, "".join(lines))
        except OSError:
            # Read-only campaign directory (archived runs): the loaded
            # state is complete in memory, so inspection still works;
            # the persistent upgrade simply happens on the next load
            # from a writable location.  Appending would fail anyway.
            pass
        state._journal.lines = len(lines)
        state._ready = True
        return state

    @classmethod
    def open(
        cls,
        path: str,
        key: str,
        total: int,
        resume: bool = False,
        meta: Optional[Dict] = None,
        fsync_every: int = 32,
        compact_threshold: int = 4096,
    ) -> "CampaignState":
        """Create a fresh journal, or on ``resume`` reopen an existing one.

        A fresh open overwrites any stale journal (and snapshot) at
        ``path``; a resume validates that the journal belongs to this
        campaign.

        Raises:
            ValueError: Resuming a journal written by a different
                campaign (signature hash mismatch), or a corrupt one.
        """
        if resume and os.path.exists(path):
            state = cls.load(path)
            if state.key != key:
                raise ValueError(
                    "journal %s belongs to a different campaign "
                    "(key %s..., expected %s...); refusing to resume"
                    % (path, state.key[:12], key[:12])
                )
            # load() builds the journal with defaults; honour the
            # caller's durability/compaction settings on resume too.
            if fsync_every < 1:
                raise ValueError("fsync_every must be >= 1")
            state._journal.fsync_every = int(fsync_every)
            state._journal.compact_threshold = int(compact_threshold)
            if total > state.total:
                state.total = total
            return state
        state = cls(
            path, key, total=total, meta=meta,
            fsync_every=fsync_every, compact_threshold=compact_threshold,
        )
        state._reset()
        return state

    def _begin_event(self) -> Dict:
        return {
            "event": "begin",
            "version": JOURNAL_VERSION,
            "campaign_key": self.key,
            "total": self._total,
            "meta": self.meta,
            "created": self.created,
            "updated": self.updated,
        }

    def _reset(self) -> None:
        """Start the journal fresh: begin line only, no snapshot."""
        self._journal.reset(self._begin_event())
        self._ready = True

    def _append(self, event: Dict) -> None:
        """Append one event (stamped with wall-clock) and maybe compact.

        The stamp never regresses below the previous event's ``t``:
        read-side analytics and the chaos :class:`InvariantChecker`
        rely on every journal being monotone non-decreasing in ``t``,
        which a backwards wall-clock step (NTP) would otherwise break.
        """
        if not self._ready:
            self._reset()
        stamp = float(event.setdefault("t", time.time()))
        if stamp < self._last_t:
            stamp = self._last_t
            event["t"] = stamp
        self._last_t = stamp
        self.updated = max(self.updated, stamp)
        self._journal.append(event)
        if self._journal.wants_compaction:
            self.save()

    def save(self) -> None:
        """Compact now: fold the journal into snapshot + one-line tail.

        Also the explicit durability point — everything journaled so
        far is fsynced.  Serialisation failures (say, an unserialisable
        ``meta``) raise *before* any file is replaced and leave no
        temporary files behind; the existing journal stays intact.
        """
        if not self._ready:
            self._reset()
        self.updated = time.time()
        self._journal.compact(self._begin_event(), self._snapshot_payload())

    def sync(self) -> None:
        """Force journaled events to stable storage (fsync)."""
        self._journal.sync()

    def close(self) -> None:
        """Sync and release the journal file handle."""
        self._journal.close()

    def _snapshot_payload(self) -> Dict:
        return {
            "version": JOURNAL_VERSION,
            "campaign_key": self.key,
            "total": self._total,
            "meta": self.meta,
            "created": self.created,
            "updated": self.updated,
            "completed": self.completed,
            "attempts": self.attempts,
            "quarantined": sorted(self.quarantined),
        }

    # -- event replay ---------------------------------------------------

    def _apply(self, event: Dict) -> None:
        """Fold one journal event into the in-memory state.

        Every event is last-writer-wins on its key, so replaying a
        journal over a snapshot that already contains a prefix of it
        (the crash window between snapshot and tail rewrite) converges
        to the same state as a clean replay.
        """
        kind = event.get("event")
        stamp = event.get("t")
        if isinstance(stamp, (int, float)):
            self.updated = max(self.updated, stamp)
            self._last_t = max(self._last_t, float(stamp))
        key = event.get("key")
        if kind in ("done", "failed"):
            self.completed[key] = {
                "ok": kind == "done",
                "error": event.get("error"),
                "elapsed": event.get("elapsed", 0.0),
            }
            self._bump_attempts(key, event.get("attempts", 1))
            if kind == "done":
                self.quarantined.discard(key)
        elif kind == "cached":
            self.completed[key] = {
                "ok": event.get("ok", True),
                "error": event.get("error"),
                "elapsed": event.get("elapsed", 0.0),
            }
        elif kind == "started":
            self.started.add(key)
        elif kind == "retry":
            self._bump_attempts(key, event.get("attempt", 1))
        elif kind == "quarantine":
            self.quarantined.add(key)
            self._bump_attempts(key, event.get("attempts", 1))
        elif kind == "release":
            self.quarantined.discard(key)
            self.attempts.pop(key, None)
            entry = self.completed.get(key)
            if entry is not None and not entry.get("ok"):
                self.completed.pop(key)
        elif kind == "total":
            self._total = int(event.get("total", self._total))
        # Unknown kinds are skipped: forward compatibility within v2.

    def _bump_attempts(self, key: str, count: int) -> None:
        if count > self.attempts.get(key, 0):
            self.attempts[key] = int(count)

    # -- recording ------------------------------------------------------

    def record(self, outcome: JobResult) -> None:
        """Journal one completed point (one appended line).

        Cache-served completions whose journaled status already matches
        are skipped — a resume that replays N finished points performs
        zero journal writes for them, keeping total journal I/O
        proportional to fresh evaluations.
        """
        key = outcome.job.key
        existing = self.completed.get(key)
        if outcome.from_cache and existing is not None:
            if existing.get("ok") == outcome.ok:
                return
        entry = {
            "ok": outcome.ok,
            "error": outcome.error,
            "elapsed": outcome.elapsed,
        }
        if existing == entry:
            return
        self.completed[key] = entry
        self._bump_attempts(key, outcome.attempts)
        if outcome.ok:
            self.quarantined.discard(key)
        if outcome.from_cache:
            event = {"event": "cached", "key": key, "ok": outcome.ok}
            if outcome.elapsed:
                # The original evaluation's wall-clock, carried through
                # the cache record: analytics can separate "free" cache
                # hits from the latency the point once cost, and never
                # mistakes a hit for a zero-latency evaluation.
                event["elapsed"] = float(outcome.elapsed)
            if outcome.error is not None:
                event["error"] = outcome.error
        else:
            event = {
                "event": "done" if outcome.ok else "failed",
                "key": key,
                "elapsed": outcome.elapsed,
            }
            if not outcome.ok:
                event["error"] = outcome.error
                if is_timeout_error(outcome.error):
                    # Redundant with the error prefix, but greppable:
                    # reaped points stand out in the raw journal.
                    event["timeout"] = True
            if outcome.attempts > 1:
                event["attempts"] = outcome.attempts
        self._append(event)

    def record_started(self, keys: Iterable[str]) -> None:
        """Journal that points were submitted for evaluation."""
        for key in keys:
            if key not in self.started:
                self.started.add(key)
                self._append({"event": "started", "key": key})

    def record_retry(
        self, key: str, attempt: int, error: Optional[str], backoff: float
    ) -> None:
        """Journal one failed invocation that will be retried."""
        self._bump_attempts(key, attempt)
        event = {"event": "retry", "key": key, "attempt": int(attempt),
                 "backoff": float(backoff)}
        if error is not None:
            # One line per event: keep the first line of the traceback.
            event["error"] = str(error).splitlines()[0] if error else error
        self._append(event)

    def quarantine(self, key: str, attempts: int) -> None:
        """Mark a point flaky: budget exhausted, excluded until released."""
        if key in self.quarantined:
            return
        self.quarantined.add(key)
        self._bump_attempts(key, attempts)
        self._append(
            {"event": "quarantine", "key": key, "attempts": int(attempts)}
        )

    def release(self, keys: Optional[Iterable[str]] = None) -> List[str]:
        """Re-release quarantined points (default: all of them).

        Released points lose their failed entry and attempt count, so
        the next resume re-runs them with a fresh retry budget.

        Returns:
            The keys actually released (unknown keys are ignored).
        """
        chosen = sorted(self.quarantined) if keys is None else list(keys)
        released = []
        for key in chosen:
            if key not in self.quarantined:
                continue
            self.quarantined.discard(key)
            self.attempts.pop(key, None)
            entry = self.completed.get(key)
            if entry is not None and not entry.get("ok"):
                self.completed.pop(key)
            self._append({"event": "release", "key": key})
            released.append(key)
        return released

    def entry(self, key: str) -> Optional[Dict]:
        """The journaled record for a job key, or None."""
        return self.completed.get(key)

    # -- reporting ------------------------------------------------------

    @property
    def done(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return sum(1 for entry in self.completed.values() if not entry["ok"])

    @property
    def timeouts(self) -> int:
        """Failed points whose final attempt was reaped at its deadline.

        Derived from the journaled error string, so journals written
        before deadlines existed (and snapshots without the redundant
        ``timeout`` event flag) count correctly.
        """
        return sum(
            1
            for entry in self.completed.values()
            if not entry["ok"] and is_timeout_error(entry.get("error"))
        )

    @property
    def retried(self) -> int:
        """Points that needed at least one retry."""
        return sum(1 for count in self.attempts.values() if count > 1)

    @property
    def retries(self) -> int:
        """Total extra evaluator invocations spent on retries."""
        return sum(count - 1 for count in self.attempts.values() if count > 1)

    def status(self) -> Dict:
        """JSON-ready progress summary (the CLI ``status`` payload).

        The progress buckets are disjoint — ``done`` counts completed
        points that are *not* quarantined, ``quarantined`` the flaky
        points parked by the retry policy, ``remaining`` what is still
        runnable — so ``done + remaining + quarantined == total``
        always holds (the accounting invariant analytics and the chaos
        checker assert).  The historic ``remaining = total - done``
        silently counted quarantined points as still-runnable: a
        campaign that had given up on a point forever reported it as
        pending work.  ``failed``/``timeouts`` stay raw diagnostic
        counts over every journaled completion (a quarantined point's
        final failure is journaled before its quarantine line, so a
        quarantined timeout still shows up as a timeout).
        """
        done = sum(
            1 for key in self.completed if key not in self.quarantined
        )
        return {
            "campaign_key": self.key,
            "total": self.total,
            "done": done,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "remaining": max(0, self.total - done - len(self.quarantined)),
            "retried": self.retried,
            "retries": self.retries,
            "quarantined": len(self.quarantined),
            "quarantine": sorted(self.quarantined),
            "created": self.created,
            "updated": self.updated,
            "meta": self.meta,
        }


def run_checkpointed(
    jobs: Sequence[Job],
    runner: CampaignRunner,
    state: CampaignState,
    retry_failed: bool = False,
    retry: Optional[RetryPolicy] = None,
    progress: Optional[Callable[[Progress], None]] = None,
    executor=None,
) -> List[JobResult]:
    """Run jobs with every completion journaled as it arrives.

    Points the journal marks failed replay their recorded error without
    touching an evaluator (unless ``retry_failed``, or a ``retry``
    policy with remaining budget for that point); points it marks ok
    are submitted normally and served by the runner's result cache — so
    resuming a killed campaign re-evaluates nothing that finished.

    With a :class:`~repro.dse.retry.RetryPolicy`:

    * each retry is journaled (``retry`` event with attempt number and
      backoff), so the per-point budget survives kills and resumes;
    * a point that exhausts its budget is quarantined — journaled,
      replayed as a failure on later resumes, and left alone until
      ``retry_failed=True`` or an explicit release
      (``python -m repro.dse retry``) clears it.

    Results align with the input order, exactly like
    :meth:`CampaignRunner.run`.  If the consumer (or a progress
    callback) raises mid-run, everything journaled so far survives for
    the next resume.

    An ``executor`` (an :class:`~repro.dse.executors.Executor`
    instance) overrides the runner's execution backend for this run;
    journal events, retry budgets and results are identical under
    every executor.
    """
    if executor is not None:
        runner = runner.with_executor(executor)
    jobs = list(jobs)
    results: List[Optional[JobResult]] = [None] * len(jobs)

    submitted: List[Job] = []
    slots: Dict[str, deque] = {}
    offsets: Dict[str, int] = {}
    for index, job in enumerate(jobs):
        entry = state.entry(job.key)
        in_quarantine = job.key in state.quarantined
        if entry is not None and not entry["ok"]:
            spent = max(1, state.attempts.get(job.key, 1))
            budget_left = retry is not None and retry.should_retry(spent)
            if retry_failed:
                if in_quarantine:
                    state.release([job.key])
            elif budget_left and not in_quarantine:
                offsets[job.key] = spent  # journal-aware budget
            else:
                if retry is not None and not in_quarantine:
                    # Budget exhausted but the quarantine event was
                    # lost to a crash: restore the invariant.
                    state.quarantine(job.key, spent)
                results[index] = JobResult(
                    job=job,
                    ok=False,
                    error=entry["error"],
                    elapsed=entry.get("elapsed", 0.0),
                    from_cache=True,
                    attempts=spent,
                )
                continue
        elif entry is None and state.attempts.get(job.key):
            # Crash mid-retries: continue the budget, don't restart it.
            offsets[job.key] = state.attempts[job.key]
        slots.setdefault(job.key, deque()).append(index)
        submitted.append(job)

    fresh = {
        job.key for job in submitted
        if state.entry(job.key) is None or not state.entry(job.key)["ok"]
    }
    state.record_started(fresh)

    on_retry = None
    if retry is not None:
        def on_retry(job, attempt, error, backoff):
            state.record_retry(job.key, attempt, error, backoff)

    for outcome in runner.run_iter(
        submitted,
        progress=progress,
        retry=retry,
        retry_offsets=offsets,
        on_retry=on_retry,
    ):
        state.record(outcome)
        if (
            retry is not None
            and not outcome.ok
            and not outcome.from_cache
            and not retry.should_retry(outcome.attempts)
        ):
            state.quarantine(outcome.job.key, outcome.attempts)
        results[slots[outcome.job.key].popleft()] = outcome
    return results  # type: ignore[return-value]
