"""Tests for the MOSFET and MTJ circuit elements."""

import pytest

from repro.core.compact import BehavioralMTJModel
from repro.core.material import MSS_BARRIER, MSS_FREE_LAYER
from repro.core.geometry import PillarGeometry
from repro.pdk import ProcessDesignKit
from repro.spice import (
    Circuit,
    DC,
    MOSFET,
    MTJElement,
    Pulse,
    Resistor,
    VoltageSource,
    dc_operating_point,
    transient,
)
from repro.spice.behavioral import BehavioralVoltage


@pytest.fixture
def pdk():
    return ProcessDesignKit.for_node(45)


class TestMOSFETElement:
    def build_inverter(self, pdk, vin):
        circuit = Circuit("inv")
        vdd = pdk.tech.vdd
        circuit.add(VoltageSource("vdd", "vdd", "0", DC(vdd)))
        circuit.add(VoltageSource("vin", "in", "0", DC(vin)))
        circuit.add(MOSFET("mp", "out", "in", "vdd", pdk.pmos(0.26)))
        circuit.add(MOSFET("mn", "out", "in", "0", pdk.nmos(0.13)))
        return circuit

    def test_inverter_logic_low_in(self, pdk):
        system = dc_operating_point(self.build_inverter(pdk, 0.0))
        assert system.voltage("out") == pytest.approx(pdk.tech.vdd, abs=0.02)

    def test_inverter_logic_high_in(self, pdk):
        system = dc_operating_point(self.build_inverter(pdk, pdk.tech.vdd))
        assert system.voltage("out") == pytest.approx(0.0, abs=0.02)

    def test_inverter_transition_region(self, pdk):
        system = dc_operating_point(self.build_inverter(pdk, 0.5 * pdk.tech.vdd))
        out = system.voltage("out")
        assert 0.1 * pdk.tech.vdd < out < 0.9 * pdk.tech.vdd

    def test_pass_transistor_conducts_both_ways(self, pdk):
        # Source/drain symmetry: same |current| when terminals swap roles.
        def current_through(v_left, v_right):
            circuit = Circuit("pass")
            vdd = pdk.tech.vdd
            circuit.add(VoltageSource("vg", "g", "0", DC(vdd)))
            circuit.add(VoltageSource("vl", "l", "0", DC(v_left)))
            circuit.add(VoltageSource("vr", "r", "0", DC(v_right)))
            mosfet = MOSFET("m", "l", "g", "r", pdk.nmos(0.13))
            circuit.add(mosfet)
            system = dc_operating_point(circuit)
            return mosfet.drain_current(system)

        forward = current_through(0.3, 0.0)
        backward = current_through(0.0, 0.3)
        assert forward == pytest.approx(-backward, rel=1e-6)
        assert forward > 0.0

    def test_off_transistor_blocks(self, pdk):
        circuit = Circuit("off")
        circuit.add(VoltageSource("vd", "d", "0", DC(1.0)))
        mosfet = MOSFET("m", "d", "0", "0", pdk.nmos(0.13))
        circuit.add(mosfet)
        system = dc_operating_point(circuit)
        assert abs(mosfet.drain_current(system)) < 1e-6


class TestMTJElement:
    def make_cell(self, initial_ap, drive_voltage):
        model = BehavioralMTJModel(
            MSS_FREE_LAYER,
            PillarGeometry(diameter=45e-9),
            MSS_BARRIER,
            initial_antiparallel=initial_ap,
        )
        circuit = Circuit("mtj-cell")
        circuit.add(
            VoltageSource(
                "vdrive", "top", "0",
                Pulse(0.0, drive_voltage, 0.2e-9, 2e-11, 2e-11, 8e-9),
            )
        )
        mtj = MTJElement("mtj", "top", "mid", model)
        circuit.add(mtj)
        circuit.add(Resistor("rser", "mid", "0", 500.0))
        return circuit, mtj

    def test_positive_drive_switches_ap_to_p(self):
        circuit, mtj = self.make_cell(initial_ap=True, drive_voltage=0.9)
        transient(circuit, stop_time=10e-9, timestep=2e-11)
        assert not mtj.is_antiparallel
        assert len(mtj.switch_log) == 1
        assert mtj.switch_log[0][1] is False

    def test_negative_drive_switches_p_to_ap(self):
        circuit, mtj = self.make_cell(initial_ap=False, drive_voltage=-0.9)
        transient(circuit, stop_time=10e-9, timestep=2e-11)
        assert mtj.is_antiparallel

    def test_small_read_voltage_disturbs_nothing(self):
        circuit, mtj = self.make_cell(initial_ap=True, drive_voltage=0.08)
        transient(circuit, stop_time=10e-9, timestep=2e-11)
        assert mtj.is_antiparallel
        assert mtj.switch_log == []

    def test_resistance_steps_at_switch(self):
        circuit, mtj = self.make_cell(initial_ap=True, drive_voltage=0.9)
        result = transient(
            circuit, stop_time=10e-9, timestep=2e-11, record_currents_of=["vdrive"]
        )
        i = result.waveforms.trace("i(vdrive)")
        # After the AP->P switch the loop resistance drops, so the
        # magnitude of the supply current increases mid-pulse.
        early = abs(i.at(0.5e-9))
        late = abs(i.at(7e-9))
        assert late > 1.2 * early


class TestBehavioralVoltage:
    def test_follows_function(self):
        circuit = Circuit("bv")
        circuit.add(VoltageSource("vin", "a", "0", DC(0.4)))
        circuit.add(
            BehavioralVoltage("x", "out", "0", ["a"], lambda v: 2.0 * v["a"] + 0.1)
        )
        circuit.add(Resistor("rl", "out", "0", 1e6))
        system = dc_operating_point(circuit)
        assert system.voltage("out") == pytest.approx(0.9, rel=1e-6)

    def test_nonlinear_function_converges(self):
        import math

        circuit = Circuit("bv2")
        circuit.add(VoltageSource("vin", "a", "0", DC(0.2)))
        circuit.add(
            BehavioralVoltage(
                "x", "out", "0", ["a"], lambda v: math.tanh(10.0 * v["a"])
            )
        )
        circuit.add(Resistor("rl", "out", "0", 1e6))
        system = dc_operating_point(circuit)
        assert system.voltage("out") == pytest.approx(math.tanh(2.0), rel=1e-4)
