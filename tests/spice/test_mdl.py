"""Tests for the MDL measurement layer."""

import math

import numpy as np
import pytest

from repro.spice import (
    CrossEvent,
    Delay,
    Energy,
    Expression,
    Extreme,
    Integral,
    MeasurementScript,
    WaveformSet,
    When,
)


@pytest.fixture
def waveforms():
    times = np.linspace(0.0, 1.0, 1001)
    ws = WaveformSet(times)
    ws.add("v(a)", np.sin(2.0 * math.pi * times))        # 1 Hz sine
    ws.add("v(b)", times)                                  # ramp
    ws.add("i(vdd)", -1e-3 * np.ones_like(times))          # constant draw
    return ws


class TestTraceOperations:
    def test_crossings_rise_fall(self, waveforms):
        trace = waveforms.trace("v(a)")
        rises = trace.crossings(0.5, "rise")
        falls = trace.crossings(0.0, "fall")
        assert len(rises) >= 1 and len(falls) >= 1
        assert falls[0] == pytest.approx(0.5, abs=1e-3)
        assert rises[0] == pytest.approx(1.0 / 12.0, abs=2e-3)

    def test_missing_trace_lists_available(self, waveforms):
        with pytest.raises(KeyError, match="v\\(a\\)"):
            waveforms.trace("nope")

    def test_window_statistics(self, waveforms):
        trace = waveforms.trace("v(a)")
        assert trace.maximum() == pytest.approx(1.0, abs=1e-4)
        assert trace.minimum() == pytest.approx(-1.0, abs=1e-4)
        assert trace.average(0.0, 1.0) == pytest.approx(0.0, abs=1e-6)

    def test_integral_of_ramp(self, waveforms):
        assert waveforms.trace("v(b)").integral() == pytest.approx(0.5, rel=1e-4)

    def test_length_mismatch_rejected(self):
        ws = WaveformSet([0.0, 1.0])
        with pytest.raises(ValueError):
            ws.add("x", [1.0])


class TestMeasurements:
    def test_when(self, waveforms):
        event = CrossEvent("v(b)", 0.25, "rise")
        assert When("t", event).evaluate(waveforms) == pytest.approx(0.25, abs=1e-3)

    def test_delay(self, waveforms):
        measurement = Delay(
            "d",
            CrossEvent("v(b)", 0.25, "rise"),
            CrossEvent("v(b)", 0.75, "rise"),
        )
        assert measurement.evaluate(waveforms) == pytest.approx(0.5, abs=1e-3)

    def test_occurrence_selection(self, waveforms):
        second_rise = CrossEvent("v(a)", 0.5, "rise", occurrence=1)
        t = second_rise.locate(waveforms)
        assert t == pytest.approx(1.0 / 12.0, abs=2e-3)  # asin(0.5)/2pi

    def test_last_occurrence(self, waveforms):
        event = CrossEvent("v(a)", 0.0, "either", occurrence=-1)
        assert event.locate(waveforms) > 0.4

    def test_missing_crossing_raises(self, waveforms):
        event = CrossEvent("v(b)", 5.0, "rise")
        with pytest.raises(ValueError):
            event.locate(waveforms)

    def test_extreme_kinds(self, waveforms):
        assert Extreme("m", "v(a)", "pp").evaluate(waveforms) == pytest.approx(
            2.0, abs=1e-3
        )
        with pytest.raises(ValueError):
            Extreme("m", "v(a)", "median")

    def test_integral_scaled(self, waveforms):
        measurement = Integral("q", "v(b)", scale=2.0)
        assert measurement.evaluate(waveforms) == pytest.approx(1.0, rel=1e-4)

    def test_energy_sign_convention(self, waveforms):
        # Negative branch current = delivered power; energy is positive.
        measurement = Energy("e", "i(vdd)", supply_voltage=1.1)
        assert measurement.evaluate(waveforms) == pytest.approx(1.1e-3, rel=1e-6)

    def test_expression(self, waveforms):
        measurement = Expression("x", lambda w: w.trace("v(b)").at(0.5) * 4.0)
        assert measurement.evaluate(waveforms) == pytest.approx(2.0)


class TestMeasurementScript:
    def test_run_collects_all(self, waveforms):
        script = MeasurementScript(
            [
                Extreme("vmax", "v(a)", "max"),
                Integral("area", "v(b)"),
            ]
        )
        results = script.run(waveforms)
        assert set(results) == {"vmax", "area"}

    def test_failed_measurement_is_nan(self, waveforms):
        script = MeasurementScript([When("t", CrossEvent("v(b)", 9.0, "rise"))])
        results = script.run(waveforms)
        assert math.isnan(results["t"])

    def test_output_file_roundtrip(self, waveforms):
        script = MeasurementScript([Extreme("vmax", "v(a)", "max")])
        results = script.run(waveforms)
        text = MeasurementScript.render_output_file(results)
        parsed = MeasurementScript.parse_output_file(text)
        assert parsed["vmax"] == pytest.approx(results["vmax"], rel=1e-5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            MeasurementScript.parse_output_file("not a measurement")

    def test_chaining(self, waveforms):
        script = MeasurementScript().add(Extreme("a", "v(a)", "max")).add(
            Extreme("b", "v(b)", "max")
        )
        assert len(script.measurements) == 2
