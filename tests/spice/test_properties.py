"""Property-based tests on the circuit-simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.archsim import SRAM_L2_45NM, STT_L2_45NM
from repro.spice import (
    Circuit,
    DC,
    PWL,
    Resistor,
    VoltageSource,
    dc_operating_point,
)


class TestResistiveNetworkProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.floats(min_value=10.0, max_value=1e6),
            ),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_passivity(self, edges, source_voltage):
        """In a resistive network with one source, every node voltage
        lies within the source range [min(0, V), max(0, V)]."""
        circuit = Circuit("random-resistive")
        circuit.add(VoltageSource("v", "n0", "0", DC(source_voltage)))
        used = False
        for index, (a, b, resistance) in enumerate(edges):
            if a == b:
                continue
            used = True
            circuit.add(
                Resistor("r%d" % index, "n%d" % a, "n%d" % b, resistance)
            )
        if not used:
            return
        # Tie every mentioned node weakly to ground so nothing floats
        # beyond gmin conditioning.
        mentioned = {n for a, b, _ in edges for n in (a, b)}
        for n in mentioned:
            circuit.add(Resistor("rg%d" % n, "n%d" % n, "0", 1e9))
        system = dc_operating_point(circuit)
        lo = min(0.0, source_voltage) - 1e-6
        hi = max(0.0, source_voltage) + 1e-6
        for node in circuit.node_names():
            assert lo <= system.voltage(node) <= hi

    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(min_value=10.0, max_value=1e5),
        st.floats(min_value=10.0, max_value=1e5),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_divider_ratio(self, r1, r2, voltage):
        circuit = Circuit("div")
        circuit.add(VoltageSource("v", "a", "0", DC(voltage)))
        circuit.add(Resistor("r1", "a", "b", r1))
        circuit.add(Resistor("r2", "b", "0", r2))
        system = dc_operating_point(circuit)
        assert system.voltage("b") == pytest.approx(
            voltage * r2 / (r1 + r2), rel=1e-6
        )


class TestPWLProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=-10.0, max_value=10.0),
            ),
            min_size=2,
            max_size=10,
            unique_by=lambda p: round(p[0], 6),
        )
    )
    def test_pwl_bounded_by_points(self, points):
        points = sorted(points)
        if any(b[0] - a[0] < 1e-9 for a, b in zip(points, points[1:])):
            return
        wave = PWL(points)
        values = [p[1] for p in points]
        lo, hi = min(values), max(values)
        for t in np.linspace(points[0][0] - 1.0, points[-1][0] + 1.0, 37):
            assert lo - 1e-9 <= wave.value(float(t)) <= hi + 1e-9


class TestMemoryTechnologyRecord:
    def test_capacity_scaling_slows_sram(self):
        small = SRAM_L2_45NM.scaled_for_capacity(0.5)
        large = SRAM_L2_45NM.scaled_for_capacity(8.0)
        assert large.read_latency > small.read_latency
        assert large.write_latency > small.write_latency

    def test_stt_write_latency_capacity_independent(self):
        # STT write time is device-limited, not wire-limited.
        small = STT_L2_45NM.scaled_for_capacity(0.5)
        large = STT_L2_45NM.scaled_for_capacity(8.0)
        assert large.write_latency == pytest.approx(small.write_latency)
        assert large.read_latency > small.read_latency
