"""Tests for source waveforms and transient integration accuracy."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    Capacitor,
    Circuit,
    DC,
    Pulse,
    PWL,
    Resistor,
    VoltageSource,
    transient,
)


class TestWaveforms:
    def test_dc_constant(self):
        assert DC(1.5).value(0.0) == 1.5
        assert DC(1.5).value(1e9) == 1.5

    def test_pulse_phases(self):
        pulse = Pulse(0.0, 1.0, delay=1.0, rise=0.2, fall=0.2, width=1.0)
        assert pulse.value(0.5) == 0.0
        assert pulse.value(1.1) == pytest.approx(0.5)
        assert pulse.value(1.5) == 1.0
        assert pulse.value(2.3) == pytest.approx(0.5)
        assert pulse.value(3.0) == 0.0

    def test_pulse_periodic(self):
        pulse = Pulse(0.0, 1.0, delay=0.0, rise=1e-4, fall=1e-4, width=0.5, period=2.0)
        assert pulse.value(0.25) == 1.0
        assert pulse.value(2.25) == 1.0
        assert pulse.value(1.5) == 0.0

    def test_pulse_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            Pulse(0.0, 1.0, 0.0, -1.0, 0.0, 1.0)

    def test_pwl_interpolation(self):
        wave = PWL([(0.0, 0.0), (1.0, 2.0), (3.0, 0.0)])
        assert wave.value(-1.0) == 0.0
        assert wave.value(0.5) == pytest.approx(1.0)
        assert wave.value(2.0) == pytest.approx(1.0)
        assert wave.value(5.0) == 0.0

    def test_pwl_requires_increasing_times(self):
        with pytest.raises(ValueError):
            PWL([(0.0, 0.0), (0.0, 1.0)])

    def test_pwl_needs_two_points(self):
        with pytest.raises(ValueError):
            PWL([(0.0, 1.0)])


class TestTransientAccuracy:
    def build_rc(self, resistance, capacitance):
        circuit = Circuit("rc")
        circuit.add(
            VoltageSource(
                "vin", "in", "0", Pulse(0.0, 1.0, 0.0, 1e-13, 1e-13, 1.0)
            )
        )
        circuit.add(Resistor("r", "in", "out", resistance))
        circuit.add(Capacitor("c", "out", "0", capacitance))
        return circuit

    @settings(deadline=None, max_examples=8)
    @given(
        st.floats(min_value=100.0, max_value=1e5),
        st.floats(min_value=1e-13, max_value=1e-11),
    )
    def test_rc_charge_matches_analytic(self, resistance, capacitance):
        tau = resistance * capacitance
        circuit = self.build_rc(resistance, capacitance)
        result = transient(
            circuit, stop_time=3.0 * tau, timestep=tau / 400.0, use_dc_initial=False
        )
        v = result.waveforms.trace("v(out)")
        expected = 1.0 - math.exp(-1.0)
        assert v.at(tau) == pytest.approx(expected, abs=0.01)

    def test_rc_discharge(self):
        circuit = Circuit("rc-dis")
        circuit.add(
            VoltageSource("vin", "in", "0", Pulse(1.0, 0.0, 1e-9, 1e-13, 1e-13, 1.0))
        )
        circuit.add(Resistor("r", "in", "out", 1000.0))
        circuit.add(Capacitor("c", "out", "0", 1e-12))
        result = transient(circuit, stop_time=4e-9, timestep=2e-12)
        v = result.waveforms.trace("v(out)")
        assert v.at(0.5e-9) == pytest.approx(1.0, abs=1e-3)
        assert v.at(1e-9 + 1e-9) == pytest.approx(math.exp(-1.0), abs=0.02)

    def test_source_current_recorded(self):
        circuit = self.build_rc(1000.0, 1e-12)
        result = transient(
            circuit,
            stop_time=5e-9,
            timestep=5e-12,
            record_currents_of=["vin"],
            use_dc_initial=False,
        )
        i = result.waveforms.trace("i(vin)")
        # Initial inrush ~ -V/R (current out of the source).
        assert i.minimum() == pytest.approx(-1e-3, rel=0.1)

    def test_rejects_bad_times(self):
        circuit = self.build_rc(1000.0, 1e-12)
        with pytest.raises(ValueError):
            transient(circuit, stop_time=0.0, timestep=1e-12)

    def test_rejects_current_recording_of_resistor(self):
        circuit = self.build_rc(1000.0, 1e-12)
        with pytest.raises(TypeError):
            transient(
                circuit, stop_time=1e-9, timestep=1e-12, record_currents_of=["r"]
            )

    def test_capacitor_initial_condition(self):
        circuit = Circuit("ic")
        circuit.add(Resistor("r", "out", "0", 1000.0))
        cap = Capacitor("c", "out", "0", 1e-12, initial_voltage=1.0)
        circuit.add(cap)
        result = transient(circuit, stop_time=3e-9, timestep=2e-12, use_dc_initial=False)
        v = result.waveforms.trace("v(out)")
        assert v.values[1] == pytest.approx(1.0, abs=0.05)
        assert v.values[-1] < 0.1
