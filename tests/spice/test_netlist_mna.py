"""Tests for netlist bookkeeping and the MNA solver on linear circuits."""

import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    DC,
    MNASystem,
    Resistor,
    VoltageSource,
    dc_operating_point,
    solve_nonlinear,
)


class TestCircuitBookkeeping:
    def test_ground_aliases_excluded(self):
        circuit = Circuit()
        circuit.add(Resistor("r1", "a", "0", 1.0))
        circuit.add(Resistor("r2", "b", "gnd", 1.0))
        assert set(circuit.node_index) == {"a", "b"}

    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(ValueError):
            circuit.add(Resistor("r1", "b", "0", 1.0))

    def test_element_lookup(self):
        circuit = Circuit()
        r = circuit.add(Resistor("r1", "a", "0", 1.0))
        assert circuit.element("r1") is r
        with pytest.raises(KeyError):
            circuit.element("zz")

    def test_branch_indices_after_nodes(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", DC(1.0)))
        circuit.add(Resistor("r1", "a", "b", 1.0))
        circuit.add(Resistor("r2", "b", "0", 1.0))
        assert circuit.size == 3  # two nodes + one branch
        assert circuit.branch_index(circuit.element("v1")) == 2

    def test_branch_index_rejects_branchless(self):
        circuit = Circuit()
        r = circuit.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(ValueError):
            circuit.branch_index(r)


class TestLinearSolves:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add(VoltageSource("vin", "in", "0", DC(2.0)))
        circuit.add(Resistor("r1", "in", "mid", 3000.0))
        circuit.add(Resistor("r2", "mid", "0", 1000.0))
        system = dc_operating_point(circuit)
        assert system.voltage("mid") == pytest.approx(0.5, rel=1e-6)

    def test_source_current_through_divider(self):
        circuit = Circuit()
        source = VoltageSource("vin", "in", "0", DC(2.0))
        circuit.add(source)
        circuit.add(Resistor("r1", "in", "0", 1000.0))
        system = dc_operating_point(circuit)
        # Branch current enters the positive terminal: -2 mA delivered.
        assert source.current(system) == pytest.approx(-2e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add(CurrentSource("i1", "0", "out", DC(1e-3)))
        circuit.add(Resistor("r1", "out", "0", 2000.0))
        system = dc_operating_point(circuit)
        assert system.voltage("out") == pytest.approx(2.0, rel=1e-6)

    def test_superposition(self):
        def solve(v, i):
            circuit = Circuit()
            circuit.add(VoltageSource("v1", "a", "0", DC(v)))
            circuit.add(Resistor("r1", "a", "b", 1000.0))
            circuit.add(CurrentSource("i1", "0", "b", DC(i)))
            circuit.add(Resistor("r2", "b", "0", 1000.0))
            return dc_operating_point(circuit).voltage("b")

        both = solve(1.0, 1e-3)
        only_v = solve(1.0, 0.0)
        only_i = solve(0.0, 1e-3)
        assert both == pytest.approx(only_v + only_i, rel=1e-9)

    def test_capacitor_open_in_dc(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", DC(1.0)))
        circuit.add(Resistor("r1", "a", "b", 1000.0))
        circuit.add(Capacitor("c1", "b", "0", 1e-12))
        system = dc_operating_point(circuit)
        # No DC path to ground except gmin: node floats to the source.
        assert system.voltage("b") == pytest.approx(1.0, rel=1e-3)

    def test_two_sources_mesh(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", DC(5.0)))
        circuit.add(VoltageSource("v2", "b", "0", DC(3.0)))
        circuit.add(Resistor("r", "a", "b", 100.0))
        system = dc_operating_point(circuit)
        r_current = (system.voltage("a") - system.voltage("b")) / 100.0
        assert r_current == pytest.approx(0.02, rel=1e-9)

    def test_solver_damping_validation(self):
        circuit = Circuit()
        circuit.add(Resistor("r", "a", "0", 1.0))
        system = MNASystem(circuit)
        with pytest.raises(ValueError):
            solve_nonlinear(system, damping=0.0)
