"""Tests for the NVSim-class memory estimator."""

import pytest

from repro.nvsim import (
    CellKind,
    MemoryConfig,
    NVSimEstimator,
    PAPER_ARRAY,
    SubarrayModel,
    WireSegment,
    decoder_estimate,
    driver_resistance,
    local_wire,
    sense_amp_estimate,
)
from repro.pdk import ProcessDesignKit, TECH_45NM, TECH_65NM


@pytest.fixture(scope="module")
def pdk45():
    return ProcessDesignKit.for_node(45)


@pytest.fixture(scope="module")
def pdk65():
    return ProcessDesignKit.for_node(65)


@pytest.fixture(scope="module")
def table1_config():
    return MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )


class TestMemoryConfig:
    def test_defaults_valid(self):
        assert PAPER_ARRAY.capacity_bits == 1024 * 1024

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            MemoryConfig(rows=1000)

    def test_rejects_oversized_subarray(self):
        with pytest.raises(ValueError):
            MemoryConfig(rows=256, subarray_rows=512)

    def test_rejects_word_wider_than_array(self):
        with pytest.raises(ValueError):
            MemoryConfig(cols=256, word_bits=512, subarray_cols=256)

    def test_subarray_count(self, table1_config):
        assert table1_config.subarrays_per_bank == 16

    def test_address_bits(self):
        config = MemoryConfig(rows=1024, cols=1024, word_bits=64)
        assert config.address_bits == 10 + 4

    def test_with_word_bits(self, table1_config):
        changed = table1_config.with_word_bits(128)
        assert changed.word_bits == 128
        assert table1_config.word_bits == 1024


class TestWireModels:
    def test_elmore_grows_quadratically(self):
        short = local_wire(TECH_45NM, 50.0)
        long = local_wire(TECH_45NM, 200.0)
        d_short = short.elmore_delay(0.0, 0.0) if False else short.elmore_delay(1.0, 0.0)
        d_long = long.elmore_delay(1.0, 0.0)
        # With negligible driver resistance the RC term dominates: 16x.
        assert d_long / d_short > 10.0

    def test_driver_resistance_decreases_with_width(self):
        assert driver_resistance(TECH_45NM, 0.5) < driver_resistance(TECH_45NM, 0.1)

    def test_switching_energy_cv2(self):
        wire = WireSegment(100.0, 1.0, 0.2e-15)
        assert wire.switching_energy(1.0) == pytest.approx(100.0 * 0.2e-15)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            WireSegment(-1.0, 1.0, 1e-15)

    def test_45nm_wires_more_resistive(self):
        assert (
            local_wire(TECH_45NM, 100.0).resistance
            > local_wire(TECH_65NM, 100.0).resistance
        )


class TestDecoder:
    def test_delay_grows_with_load(self):
        small = decoder_estimate(TECH_45NM, 10, 10e-15)
        large = decoder_estimate(TECH_45NM, 10, 500e-15)
        assert large.delay > small.delay

    def test_energy_grows_with_bits(self):
        few = decoder_estimate(TECH_45NM, 6, 50e-15)
        many = decoder_estimate(TECH_45NM, 14, 50e-15)
        assert many.energy > few.energy

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            decoder_estimate(TECH_45NM, 0, 1e-15)
        with pytest.raises(ValueError):
            decoder_estimate(TECH_45NM, 8, 0.0)


class TestSenseAmp:
    def test_delay_decreases_with_signal(self):
        weak = sense_amp_estimate(TECH_45NM, 20e-15, 0.5e-6)
        strong = sense_amp_estimate(TECH_45NM, 20e-15, 5e-6)
        assert strong.delay < weak.delay

    def test_delay_increases_with_capacitance(self):
        small = sense_amp_estimate(TECH_45NM, 10e-15, 1e-6)
        big = sense_amp_estimate(TECH_45NM, 40e-15, 1e-6)
        assert big.delay > small.delay

    def test_rejects_nonpositive_signal(self):
        with pytest.raises(ValueError):
            sense_amp_estimate(TECH_45NM, 10e-15, 0.0)


class TestSubarray:
    def test_mram_write_slower_than_read(self, pdk45, table1_config):
        timing = SubarrayModel(pdk45, table1_config).timing()
        assert timing.write_latency > timing.read_latency

    def test_write_current_above_critical(self, pdk45, table1_config):
        model = SubarrayModel(pdk45, table1_config)
        assert model.write_current() > pdk45.switching_model().critical_current

    def test_read_current_below_write(self, pdk45, table1_config):
        model = SubarrayModel(pdk45, table1_config)
        assert model.read_current() < 0.5 * model.write_current()

    def test_sram_write_fast(self, pdk45, table1_config):
        import dataclasses

        sram_config = dataclasses.replace(table1_config, cell=CellKind.SRAM)
        sram = SubarrayModel(pdk45, sram_config).timing()
        mram = SubarrayModel(pdk45, table1_config).timing()
        assert sram.write_pulse < 0.1 * mram.write_pulse

    def test_sram_leaks_more(self, pdk45, table1_config):
        import dataclasses

        sram_config = dataclasses.replace(table1_config, cell=CellKind.SRAM)
        assert (
            SubarrayModel(pdk45, sram_config).leakage_power()
            > SubarrayModel(pdk45, table1_config).leakage_power()
        )

    def test_sram_array_larger(self, pdk45, table1_config):
        import dataclasses

        sram_config = dataclasses.replace(table1_config, cell=CellKind.SRAM)
        assert (
            SubarrayModel(pdk45, sram_config).area()
            > 2.0 * SubarrayModel(pdk45, table1_config).area()
        )


class TestEstimator:
    def test_write_slower_than_read(self, pdk45, table1_config):
        estimate = NVSimEstimator(pdk45, table1_config).estimate()
        assert estimate.write_latency > 2.0 * estimate.read_latency

    def test_write_energy_dominates(self, pdk45, table1_config):
        estimate = NVSimEstimator(pdk45, table1_config).estimate()
        assert estimate.write_energy > 5.0 * estimate.read_energy

    def test_table1_nominal_ballpark(self, pdk45, table1_config):
        # Paper Table 1, 45 nm nominal: write 4.9 ns, read 1.2 ns,
        # write 159 pJ, read 3.4 pJ.  Substrate tolerance: within ~3x.
        estimate = NVSimEstimator(pdk45, table1_config).estimate()
        assert 2e-9 < estimate.write_latency < 10e-9
        assert 0.4e-9 < estimate.read_latency < 3e-9
        assert 60e-12 < estimate.write_energy < 500e-12
        assert 1e-12 < estimate.read_energy < 15e-12

    def test_smaller_node_lower_energy(self, pdk45, pdk65, table1_config):
        # The paper: "using a smaller technology node helps with both
        # read and write energy reduction".
        e45 = NVSimEstimator(pdk45, table1_config).estimate()
        e65 = NVSimEstimator(pdk65, table1_config).estimate()
        assert e45.write_energy < e65.write_energy
        assert e45.read_energy < e65.read_energy

    def test_smaller_node_smaller_area(self, pdk45, pdk65, table1_config):
        e45 = NVSimEstimator(pdk45, table1_config).estimate()
        e65 = NVSimEstimator(pdk65, table1_config).estimate()
        assert e45.area < e65.area

    def test_narrow_word_cheaper(self, pdk45, table1_config):
        wide = NVSimEstimator(pdk45, table1_config).estimate()
        narrow = NVSimEstimator(pdk45, table1_config.with_word_bits(64)).estimate()
        assert narrow.write_energy < wide.write_energy

    def test_render_contains_metrics(self, pdk45, table1_config):
        text = NVSimEstimator(pdk45, table1_config).estimate().render()
        assert "write latency" in text and "area" in text
