"""Tests for the IoT duty-cycle study."""

import math

import pytest

from repro.magpie import IoTNodeStudy, MagpieFlow


@pytest.fixture(scope="module")
def study():
    return IoTNodeStudy(MagpieFlow(node_nm=45))


class TestDutyCycle:
    def test_stt_wins_at_low_duty_cycle(self, study):
        point = study.evaluate(100.0)  # ~ every 15 minutes
        assert point.stt_daily_energy < point.sram_daily_energy
        assert point.savings > 0.5

    def test_savings_shrink_with_activity(self, study):
        sparse = study.evaluate(10.0)
        busy = study.evaluate(50_000.0)
        assert sparse.savings > busy.savings

    def test_sram_sleep_floor_dominates_when_idle(self, study):
        idle = study.evaluate(1.0)
        # With one wake-up a day the SRAM ledger is almost all standby.
        active_fraction = idle.stt_daily_energy / idle.sram_daily_energy
        assert active_fraction < 0.1

    def test_crossover_exists_or_stt_always_wins(self, study):
        crossover = study.crossover_wakeups_per_day()
        if math.isinf(crossover):
            point = study.evaluate(86400.0 * 10.0)
            assert point.stt_daily_energy <= point.sram_daily_energy
        else:
            below = study.evaluate(crossover * 0.5)
            assert below.stt_daily_energy < below.sram_daily_energy

    def test_sweep(self, study):
        points = study.sweep([10.0, 1000.0])
        assert len(points) == 2
        assert points[0].wakeups_per_day == 10.0

    def test_rejects_zero_wakeups(self, study):
        with pytest.raises(ValueError):
            study.evaluate(0.0)

    def test_paper_5_to_10x_claim(self, study):
        """Sec. I: NVM co-integration should cut the memory/sensor
        block power '5x or 10x' — the duty-cycled ledger delivers it."""
        point = study.evaluate(1000.0)
        assert point.sram_daily_energy / point.stt_daily_energy > 5.0
