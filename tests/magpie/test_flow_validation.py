"""MagpieFlow input validation and memory-record cache keying."""

import pytest

from repro.magpie import MagpieFlow, Scenario


@pytest.fixture(scope="module")
def flow():
    return MagpieFlow(node_nm=45)


class TestScenarioValidation:
    def test_unknown_scenario_raises_keyerror(self, flow):
        with pytest.raises(KeyError, match="unknown scenario"):
            flow.run(workloads=["bodytrack"], scenarios=["Half-SRAM"])

    def test_unknown_scenario_message_lists_options(self, flow):
        with pytest.raises(KeyError, match="Full-SRAM"):
            flow.run(workloads=["bodytrack"], scenarios=[object()])

    def test_unknown_kernel_still_raises(self, flow):
        with pytest.raises(KeyError, match="unknown kernel"):
            flow.run(workloads=["doom"], scenarios=[Scenario.FULL_SRAM])

    def test_validation_happens_before_any_simulation(self, flow):
        # A bad scenario late in the list must abort the whole grid
        # up front, not after simulating earlier cells.
        with pytest.raises(KeyError):
            flow.run(
                workloads=["bodytrack"],
                scenarios=[Scenario.FULL_SRAM, "bogus"],
            )

    @pytest.mark.slow
    def test_string_values_coerce(self, flow):
        results = flow.run(workloads=["bodytrack"], scenarios=["Full-SRAM"])
        assert ("bodytrack", Scenario.FULL_SRAM) in results


class TestMemoryRecordCache:
    @pytest.mark.slow
    def test_wer_target_reconfiguration_not_stale(self):
        flow = MagpieFlow(node_nm=45, wer_target=1e-6)
        _, loose = flow.memory_records()
        flow.wer_target = 1e-15
        _, tight = flow.memory_records()
        # Stale cache would return the loose record unchanged.
        assert tight.write_latency > loose.write_latency
        # Flipping back serves the original record from cache.
        flow.wer_target = 1e-6
        assert flow.memory_records()[1] == loose
