"""Tests for the McPAT roll-up and the MAGPIE cross-layer flow."""

import pytest

from repro.archsim import SoCConfig, simulate, PARSEC_KERNELS
from repro.magpie import (
    MagpieFlow,
    Scenario,
    build_scenario,
    fig11_breakdown,
    fig12_relative,
)
from repro.mcpat import Component, estimate_energy, render_breakdown, render_summary


@pytest.fixture(scope="module")
def flow():
    return MagpieFlow(node_nm=45)


@pytest.fixture(scope="module")
def records(flow):
    return flow.memory_records()


@pytest.fixture(scope="module")
def grid(flow):
    kernels = ["bodytrack", "canneal", "swaptions"]
    return flow.run(workloads=kernels), kernels


class TestMcPAT:
    def test_breakdown_components_complete(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        breakdown = estimate_energy(SoCConfig.full_sram(), report)
        for component in Component:
            assert breakdown.component_total(component) > 0.0

    def test_total_is_sum_of_components(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        breakdown = estimate_energy(SoCConfig.full_sram(), report)
        total = sum(breakdown.component_total(c) for c in Component)
        assert breakdown.total_energy == pytest.approx(total)

    def test_edp_definition(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        breakdown = estimate_energy(SoCConfig.full_sram(), report)
        assert breakdown.edp == pytest.approx(
            breakdown.total_energy * breakdown.exec_time
        )

    def test_render_helpers(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        breakdown = estimate_energy(SoCConfig.full_sram(), report)
        assert "dram" in render_breakdown([breakdown], "t")
        assert "bodytrack" in render_summary([breakdown], "t")


class TestMemoryRecords:
    def test_stt_writes_slower(self, records):
        sram, stt = records
        assert stt.write_latency > 3.0 * sram.write_latency

    def test_stt_leaks_less(self, records):
        sram, stt = records
        assert stt.leakage_per_mb < 0.3 * sram.leakage_per_mb

    def test_stt_denser(self, records):
        sram, stt = records
        assert sram.area_per_mb / stt.area_per_mb > 2.0

    def test_stt_write_energy_higher(self, records):
        sram, stt = records
        assert stt.write_energy > sram.write_energy

    def test_records_cached(self, flow):
        assert flow.memory_records() is flow.memory_records()


class TestScenarios:
    def test_scenario_tech_assignment(self, records):
        sram, stt = records
        soc = build_scenario(Scenario.LITTLE_L2_STT, sram, stt)
        assert soc.little.l2_tech.label == "stt-mram"
        assert soc.big.l2_tech.label == "sram"

    def test_full_sram_reference(self, records):
        sram, stt = records
        soc = build_scenario(Scenario.FULL_SRAM, sram, stt)
        assert soc.big.l2_tech.label == "sram"
        assert soc.little.l2_tech.label == "sram"

    def test_iso_area_capacity_boost(self, records):
        sram, stt = records
        reference = build_scenario(Scenario.FULL_SRAM, sram, stt)
        swapped = build_scenario(Scenario.FULL_L2_STT, sram, stt)
        assert swapped.big.l2_mb >= 3.0 * reference.big.l2_mb
        assert swapped.little.l2_mb >= 3.0 * reference.little.l2_mb


class TestPaperClaims:
    def test_energy_improves_in_all_stt_scenarios(self, grid):
        # "the overall energy consumption is improved in all scenarios".
        results, kernels = grid
        for kernel in kernels:
            reference = results[(kernel, Scenario.FULL_SRAM)].energy.total_energy
            for scenario in (
                Scenario.LITTLE_L2_STT,
                Scenario.BIG_L2_STT,
                Scenario.FULL_L2_STT,
            ):
                assert results[(kernel, scenario)].energy.total_energy < reference

    def test_energy_saving_reaches_17_percent(self, grid):
        # "... at least up to 17%".
        results, kernels = grid
        best = min(
            results[(k, Scenario.FULL_L2_STT)].energy.total_energy
            / results[(k, Scenario.FULL_SRAM)].energy.total_energy
            for k in kernels
        )
        assert best < 0.83

    def test_little_l2_stt_reduces_exec_time(self, grid):
        # "Only the scenario with STT-MRAM in the L2 cache of the LITTLE
        # cluster reduces the execution time, up to 50%": the memory-
        # bound kernels speed up substantially; compute-bound ones may
        # sit at parity (within ~2%), never far worse.
        results, kernels = grid
        ratios = {}
        for kernel in kernels:
            reference = results[(kernel, Scenario.FULL_SRAM)].energy.exec_time
            little = results[(kernel, Scenario.LITTLE_L2_STT)].energy.exec_time
            ratios[kernel] = little / reference
        assert min(ratios.values()) < 0.85  # substantial best-case win
        assert all(ratio < 1.03 for ratio in ratios.values())

    def test_big_l2_stt_does_not_speed_up_much(self, grid):
        results, kernels = grid
        for kernel in kernels:
            reference = results[(kernel, Scenario.FULL_SRAM)].energy.exec_time
            big = results[(kernel, Scenario.BIG_L2_STT)].energy.exec_time
            assert big > 0.95 * reference

    def test_edp_favours_stt(self, grid):
        # "the penalty observed on the execution time ... is compensated
        # by the enabled energy savings" — EDP improves.
        results, kernels = grid
        for kernel in kernels:
            reference = results[(kernel, Scenario.FULL_SRAM)].energy.edp
            full = results[(kernel, Scenario.FULL_L2_STT)].energy.edp
            assert full < reference

    def test_leakage_shift_visible_in_breakdown(self, grid):
        # The L2 component shrinks when swapped to STT-MRAM (Fig. 11).
        results, _ = grid
        sram_l2 = results[("bodytrack", Scenario.FULL_SRAM)].energy.component_total(
            Component.L2_BIG
        )
        stt_l2 = results[("bodytrack", Scenario.BIG_L2_STT)].energy.component_total(
            Component.L2_BIG
        )
        assert stt_l2 < sram_l2


class TestReports:
    def test_fig11_table(self, grid):
        results, _ = grid
        table = fig11_breakdown(results, "bodytrack")
        text = table.render()
        assert "Full-SRAM" in text and "dram" in text

    def test_fig12_table(self, grid):
        results, kernels = grid
        text = fig12_relative(results, kernels).render()
        assert "EDP ratio" in text
        assert "canneal" in text

    def test_unknown_kernel_raises(self, flow):
        with pytest.raises(KeyError):
            flow.run(workloads=["doom"])
