"""Tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.archsim import Cache


class TestCacheGeometry:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Cache("c", 1000, assoc=4)

    def test_set_count(self):
        cache = Cache("c", 32 * 1024, assoc=4, line_bytes=64)
        assert cache.num_sets == 128


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache("c", 4096, assoc=2)
        assert cache.access(0x1000, False) is False
        assert cache.access(0x1000, False) is True
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = Cache("c", 4096, assoc=2, line_bytes=64)
        cache.access(0x100, False)
        assert cache.access(0x13F, False) is True

    def test_lru_eviction_order(self):
        # Direct conflict set: 2-way, three lines mapping to one set.
        cache = Cache("c", 2 * 64, assoc=2, line_bytes=64)
        a, b, c = 0x0, 0x40 * cache.num_sets, 2 * 0x40 * cache.num_sets
        cache.access(a, False)
        cache.access(b, False)
        cache.access(a, False)      # a is now MRU
        cache.access(c, False)      # evicts b (LRU)
        assert cache.access(a, False) is True
        assert cache.access(b, False) is False

    def test_writeback_on_dirty_eviction(self):
        backing = Cache("l2", 64 * 1024, assoc=8)
        cache = Cache("l1", 2 * 64, assoc=2, line_bytes=64, next_level=backing)
        a, b, c = 0x0, 0x40 * cache.num_sets, 2 * 0x40 * cache.num_sets
        cache.access(a, True)       # dirty
        cache.access(b, False)
        cache.access(c, False)      # evicts dirty a -> writeback
        assert cache.stats.writebacks == 1
        assert backing.stats.writes >= 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache("c", 2 * 64, assoc=2, line_bytes=64)
        a, b, c = 0x0, 0x40 * cache.num_sets, 2 * 0x40 * cache.num_sets
        for address in (a, b, c):
            cache.access(address, False)
        assert cache.stats.writebacks == 0

    def test_miss_recurses_to_next_level(self):
        backing = Cache("l2", 64 * 1024, assoc=8)
        cache = Cache("l1", 4096, assoc=2, next_level=backing)
        cache.access(0x5000, False)
        assert backing.stats.accesses == 1

    def test_flush_dirty(self):
        backing = Cache("l2", 64 * 1024, assoc=8)
        cache = Cache("l1", 4096, assoc=2, next_level=backing)
        cache.access(0x0, True)
        cache.access(0x40, True)
        flushed = cache.flush_dirty()
        assert flushed == 2
        # Flushing twice is a no-op.
        assert cache.flush_dirty() == 0

    def test_reset_stats_preserves_contents(self):
        cache = Cache("c", 4096, assoc=2)
        cache.access(0x0, False)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(0x0, False) is True

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), max_size=300))
    def test_accounting_invariants(self, events):
        cache = Cache("c", 8192, assoc=4)
        for address, is_write in events:
            cache.access(address, is_write)
        stats = cache.stats
        assert stats.accesses == len(events)
        assert stats.hits if False else True
        assert stats.read_hits + stats.read_misses == stats.reads
        assert stats.write_hits + stats.write_misses == stats.writes
        assert stats.misses == stats.fills
        assert 0.0 <= stats.miss_rate <= 1.0

    def test_capacity_sweep_reduces_misses(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 16, size=4000) * 64
        miss_rates = []
        for size_kb in (4, 16, 64, 256):
            cache = Cache("c", size_kb * 1024, assoc=8)
            for address in addresses:
                cache.access(int(address), False)
            miss_rates.append(cache.stats.miss_rate)
        assert miss_rates == sorted(miss_rates, reverse=True)
