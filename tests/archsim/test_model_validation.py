"""Cross-validation: analytic reuse-distance model vs detailed LRU cache.

The MAGPIE flow runs on the closed-form miss model; its licence to do
so is this test, which drives the *detailed* set-associative simulator
with synthetic traces drawn from the same descriptor and checks that
the measured miss rates track the analytic survival function.
"""

import pytest

from repro.archsim import Cache, TraceGenerator, WorkloadDescriptor
from repro.archsim.simulator import CAPACITY_EFFICIENCY, LINE_BYTES


def measured_miss_rate(workload, cache_kb, events=40_000, warmup=8_000, seed=3):
    cache = Cache("c", cache_kb * 1024, assoc=8, line_bytes=LINE_BYTES)
    generator = TraceGenerator(workload, seed=seed)
    for i, (address, is_write) in enumerate(generator.events(events)):
        if i == warmup:
            cache.reset_stats()
        cache.access(address, is_write)
    return cache.stats.miss_rate


def analytic_miss_rate(workload, cache_kb):
    lines = CAPACITY_EFFICIENCY * cache_kb * 1024 / LINE_BYTES
    return workload.reuse_distance_survival(lines)


@pytest.fixture(scope="module")
def medium_workload():
    return WorkloadDescriptor(
        "medium", 1_000_000, 0.3, 0.25, 512.0, 2.0, 0.03, 1.0, 0.9
    )


class TestAnalyticVsDetailed:
    @pytest.mark.parametrize("cache_kb", [16, 64, 256])
    def test_miss_rates_track(self, medium_workload, cache_kb):
        measured = measured_miss_rate(medium_workload, cache_kb)
        analytic = analytic_miss_rate(medium_workload, cache_kb)
        # The LRU-stack generator realises the sampled distances almost
        # exactly; associativity effects account for the residual gap.
        assert measured == pytest.approx(analytic, rel=0.25, abs=0.02)

    def test_capacity_ordering_agrees(self, medium_workload):
        sizes = [16, 64, 256]
        measured = [measured_miss_rate(medium_workload, kb) for kb in sizes]
        analytic = [analytic_miss_rate(medium_workload, kb) for kb in sizes]
        assert measured == sorted(measured, reverse=True)
        assert analytic == sorted(analytic, reverse=True)

    def test_streaming_floor_agrees(self):
        streaming = WorkloadDescriptor(
            "stream", 1_000_000, 0.3, 0.1, 256.0, 1.5, 0.25, 1.0, 0.9
        )
        measured = measured_miss_rate(streaming, 1024)
        # A cache far larger than the working set still misses at the
        # streaming fraction.
        assert measured == pytest.approx(streaming.streaming_fraction, rel=0.5)
