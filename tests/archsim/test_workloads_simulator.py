"""Tests for workload descriptors and the big.LITTLE simulator."""

import dataclasses

import numpy as np
import pytest

from repro.archsim import (
    Cache,
    PARSEC_KERNELS,
    MIBENCH_KERNELS,
    SoCConfig,
    SRAM_L2_45NM,
    STT_L2_45NM,
    TraceGenerator,
    WorkloadDescriptor,
    simulate,
    simulate_trace_driven,
)
from repro.archsim.stats import ActivityReport


class TestWorkloadDescriptors:
    def test_parsec_suite_complete(self):
        assert "bodytrack" in PARSEC_KERNELS
        assert len(PARSEC_KERNELS) >= 10

    def test_mibench_present(self):
        assert len(MIBENCH_KERNELS) >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadDescriptor("bad", 1000, 1.5, 0.2, 64.0, 2.0, 0.01, 1.0, 0.9)

    def test_survival_decreasing_in_capacity(self):
        workload = PARSEC_KERNELS["bodytrack"]
        survivals = [workload.reuse_distance_survival(lines) for lines in (10, 1e3, 1e5)]
        assert survivals[0] > survivals[1] > survivals[2]

    def test_survival_floors_at_streaming_fraction(self):
        workload = PARSEC_KERNELS["streamcluster"]
        assert workload.reuse_distance_survival(1e12) == pytest.approx(
            workload.streaming_fraction, rel=1e-6
        )

    def test_memory_accesses_consistent(self):
        workload = PARSEC_KERNELS["canneal"]
        assert workload.memory_accesses == int(
            workload.instructions * workload.memory_fraction
        )


class TestTraceGenerator:
    def test_write_fraction_respected(self):
        workload = PARSEC_KERNELS["bodytrack"]
        generator = TraceGenerator(workload, seed=1)
        events = list(generator.events(20_000))
        write_fraction = np.mean([w for _, w in events])
        assert write_fraction == pytest.approx(workload.write_fraction, abs=0.02)

    def test_reproducible_with_seed(self):
        workload = PARSEC_KERNELS["dedup"]
        a = list(TraceGenerator(workload, seed=5).events(500))
        b = list(TraceGenerator(workload, seed=5).events(500))
        assert a == b

    def test_locality_visible_to_cache(self):
        # The synthetic trace must produce far fewer misses than random
        # accesses over the same footprint.
        workload = PARSEC_KERNELS["blackscholes"]
        cache = Cache("c", 64 * 1024, assoc=8)
        for address, is_write in TraceGenerator(workload, seed=2).events(20_000):
            cache.access(address, is_write)
        assert cache.stats.miss_rate < 0.3


class TestAnalyticSimulator:
    def test_report_consistency(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        for cluster in (report.big, report.little):
            assert cluster.l2_reads == pytest.approx(cluster.l1_misses)
            assert cluster.l2_misses <= cluster.l2_reads
            assert cluster.dram_reads == pytest.approx(cluster.l2_misses)
        assert report.exec_time > 0.0

    def test_little_cluster_is_critical_path(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["bodytrack"])
        assert report.little.busy_time >= report.big.busy_time * 0.8

    def test_bigger_l2_fewer_misses(self):
        soc = SoCConfig.full_sram()
        big_l2 = dataclasses.replace(
            soc, little=soc.little.with_l2(2.0, SRAM_L2_45NM)
        )
        base = simulate(soc, PARSEC_KERNELS["canneal"])
        improved = simulate(big_l2, PARSEC_KERNELS["canneal"])
        assert improved.little.l2_misses < base.little.l2_misses
        assert improved.exec_time < base.exec_time

    def test_stt_same_capacity_is_slower(self):
        # Without the density bonus, STT's write latency is a pure tax.
        soc = SoCConfig.full_sram()
        stt = dataclasses.replace(
            soc, little=soc.little.with_l2(soc.little.l2_mb, STT_L2_45NM)
        )
        base = simulate(soc, PARSEC_KERNELS["bodytrack"])
        taxed = simulate(stt, PARSEC_KERNELS["bodytrack"])
        assert taxed.exec_time > base.exec_time

    def test_compute_bound_kernel_insensitive_to_l2(self):
        soc = SoCConfig.full_sram()
        bigger = dataclasses.replace(
            soc, little=soc.little.with_l2(2.0, SRAM_L2_45NM)
        )
        base = simulate(soc, PARSEC_KERNELS["swaptions"])
        improved = simulate(bigger, PARSEC_KERNELS["swaptions"])
        speedup = base.exec_time / improved.exec_time
        assert speedup < 1.35

    def test_stats_roundtrip(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["ferret"])
        parsed = ActivityReport.parse(report.render())
        assert parsed.exec_time == pytest.approx(report.exec_time)
        assert parsed.big.l2_reads == pytest.approx(report.big.l2_reads)
        assert parsed.workload == "ferret"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            ActivityReport.parse("garbage text")

    def test_ipc_positive(self):
        report = simulate(SoCConfig.full_sram(), PARSEC_KERNELS["x264"])
        assert 0.0 < report.big.ipc < 4.0
        assert 0.0 < report.little.ipc < 1.5


class TestTraceDrivenMode:
    def test_runs_and_reports(self):
        report = simulate_trace_driven(
            SoCConfig.full_sram(), PARSEC_KERNELS["blackscholes"], num_events=20_000
        )
        assert report.exec_time > 0.0
        assert report.big.l1_misses > 0.0

    def test_capacity_effect_matches_analytic_direction(self):
        soc = SoCConfig.full_sram()
        bigger = dataclasses.replace(
            soc, little=soc.little.with_l2(2.0, SRAM_L2_45NM)
        )
        workload = PARSEC_KERNELS["canneal"]
        base = simulate_trace_driven(soc, workload, num_events=30_000)
        improved = simulate_trace_driven(bigger, workload, num_events=30_000)
        assert improved.little.l2_misses <= base.little.l2_misses
