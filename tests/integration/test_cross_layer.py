"""Cross-layer integration tests: PDK -> SPICE -> cells -> VAET -> MAGPIE.

These are the paper's Fig. 10 arrows, executed for real: each stage's
*output artefact* feeds the next stage's input.
"""

import pytest

from repro.cells import characterize_cell, CellConfig
from repro.magpie import MagpieFlow, Scenario
from repro.nvsim import MemoryConfig, NVSimEstimator
from repro.pdk import ProcessDesignKit
from repro.vaet import VAETSTT

pytestmark = pytest.mark.slow  # full cross-layer Monte Carlo chains


@pytest.fixture(scope="module")
def pdk():
    return ProcessDesignKit.for_node(45)


@pytest.fixture(scope="module")
def cell_config(pdk):
    return characterize_cell(pdk)


@pytest.fixture(scope="module")
def array_config():
    return MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )


class TestCircuitToMemoryHandoff:
    def test_cell_config_text_feeds_nvsim(self, pdk, cell_config, array_config):
        # The flow exchanges the cell config as a *file*; parse it back
        # and drive the array model with the parsed copy.
        parsed = CellConfig.parse(cell_config.render())
        estimator = NVSimEstimator(pdk, array_config, cell_config=parsed)
        estimate = estimator.estimate()
        assert 1e-9 < estimate.write_latency < 30e-9

    def test_characterized_vs_analytic_cell_agree(self, pdk, cell_config, array_config):
        with_cell = NVSimEstimator(pdk, array_config, cell_config=cell_config).estimate()
        analytic = NVSimEstimator(pdk, array_config).estimate()
        ratio = with_cell.write_latency / analytic.write_latency
        assert 0.3 < ratio < 3.0

    def test_vaet_on_characterized_cell(self, pdk, cell_config, array_config):
        tool = VAETSTT(pdk, array_config, cell_config=cell_config)
        estimate = tool.estimate(num_words=500)
        assert estimate.write_latency.mean > estimate.nominal.write_latency


class TestMemoryToSystemHandoff:
    def test_magpie_consumes_vaet_records(self):
        flow = MagpieFlow(node_nm=45)
        sram, stt = flow.memory_records()
        soc = flow.build_soc(Scenario.FULL_L2_STT)
        assert soc.big.l2_tech is stt
        result = flow.run_one(
            __import__("repro.archsim", fromlist=["PARSEC_KERNELS"]).PARSEC_KERNELS[
                "bodytrack"
            ],
            Scenario.FULL_L2_STT,
        )
        assert result.energy.total_energy > 0.0

    def test_wer_target_propagates_to_system(self):
        # A tighter reliability target lengthens the L2 write latency
        # and (slightly) the system execution time: the cross-layer
        # trade the whole framework exists to expose.
        loose = MagpieFlow(node_nm=45, wer_target=1e-6)
        tight = MagpieFlow(node_nm=45, wer_target=1e-15)
        _, stt_loose = loose.memory_records()
        _, stt_tight = tight.memory_records()
        assert stt_tight.write_latency > stt_loose.write_latency
        from repro.archsim import PARSEC_KERNELS

        time_loose = loose.run_one(
            PARSEC_KERNELS["bodytrack"], Scenario.FULL_L2_STT
        ).energy.exec_time
        time_tight = tight.run_one(
            PARSEC_KERNELS["bodytrack"], Scenario.FULL_L2_STT
        ).energy.exec_time
        assert time_tight >= time_loose


class TestNodePortability:
    def test_full_stack_at_65nm(self):
        flow = MagpieFlow(node_nm=65)
        from repro.archsim import PARSEC_KERNELS

        result = flow.run_one(PARSEC_KERNELS["bodytrack"], Scenario.LITTLE_L2_STT)
        reference = flow.run_one(PARSEC_KERNELS["bodytrack"], Scenario.FULL_SRAM)
        assert result.energy.total_energy < reference.energy.total_energy
