"""Tests for the process design kit: nodes, transistors, corners, variation."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pdk import (
    CMOS_CORNERS,
    CMOSVariation,
    CornerName,
    MAGNETIC_CORNERS,
    MagneticCornerName,
    MTJVariation,
    ProcessDesignKit,
    TECH_45NM,
    TECH_65NM,
    TECHNOLOGY_NODES,
    TransistorParams,
    technology_for_node,
    variation_for_node,
)
from repro.core.material import MSS_BARRIER, MSS_FREE_LAYER
from repro.core.geometry import PillarGeometry


class TestTechnology:
    def test_both_nodes_shipped(self):
        assert set(TECHNOLOGY_NODES) == {45, 65}

    def test_lookup(self):
        assert technology_for_node(45) is TECH_45NM

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            technology_for_node(28)

    def test_smaller_node_faster_gates(self):
        assert TECH_45NM.gate_delay_fo4 < TECH_65NM.gate_delay_fo4

    def test_smaller_node_lower_vdd(self):
        assert TECH_45NM.vdd < TECH_65NM.vdd

    def test_mram_denser_than_sram(self):
        for tech in TECHNOLOGY_NODES.values():
            assert tech.mram_cell_area() < tech.sram_cell_area()

    def test_cell_areas_scale_with_node(self):
        assert TECH_45NM.sram_cell_area() < TECH_65NM.sram_cell_area()

    def test_on_current_scales_with_width(self):
        assert TECH_45NM.on_current(0.2) == pytest.approx(
            2.0 * TECH_45NM.on_current(0.1)
        )


class TestTransistor:
    def test_factories(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        pmos = TransistorParams.pmos(TECH_45NM, 0.26)
        assert nmos.is_nmos and not pmos.is_nmos
        assert nmos.length_um == pytest.approx(0.045)

    def test_cutoff_current_small(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        off = nmos.drain_current(0.0, TECH_45NM.vdd)
        on = nmos.drain_current(TECH_45NM.vdd, TECH_45NM.vdd)
        assert off < 1e-3 * on

    def test_saturation_region_flatish(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        vgs = TECH_45NM.vdd
        i1 = nmos.drain_current(vgs, 0.8)
        i2 = nmos.drain_current(vgs, 1.0)
        assert i2 > i1
        assert (i2 - i1) / i1 < 0.05  # only channel-length modulation

    def test_linear_region_rises_with_vds(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        i1 = nmos.drain_current(1.0, 0.05)
        i2 = nmos.drain_current(1.0, 0.15)
        assert i2 > 2.0 * i1

    def test_current_odd_in_vds(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        assert nmos.drain_current(1.0, -0.3) == pytest.approx(
            -nmos.drain_current(1.0, 0.3)
        )

    @given(st.floats(min_value=0.0, max_value=1.1))
    def test_monotone_in_vgs(self, vgs):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        assert nmos.drain_current(vgs + 0.05, 0.6) >= nmos.drain_current(vgs, 0.6)

    def test_transconductance_positive_when_on(self):
        nmos = TransistorParams.nmos(TECH_45NM, 0.13)
        assert nmos.transconductance(0.8, 0.6) > 0.0

    def test_capacitances_scale_with_width(self):
        narrow = TransistorParams.nmos(TECH_45NM, 0.1)
        wide = TransistorParams.nmos(TECH_45NM, 0.4)
        assert wide.gate_capacitance(TECH_45NM) == pytest.approx(
            4.0 * narrow.gate_capacitance(TECH_45NM)
        )

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TransistorParams(True, 0.0, 0.045, 0.3, 4e-4, 1.35)


class TestCorners:
    def test_tt_is_identity(self):
        shifted = CMOS_CORNERS[CornerName.TT].apply(TECH_45NM)
        assert shifted.vth_n == TECH_45NM.vth_n
        assert shifted.k_prime_n == TECH_45NM.k_prime_n

    def test_ff_faster_than_ss(self):
        ff = CMOS_CORNERS[CornerName.FF].apply(TECH_45NM)
        ss = CMOS_CORNERS[CornerName.SS].apply(TECH_45NM)
        assert ff.on_current(0.13) > ss.on_current(0.13)

    def test_skewed_corners_split_polarities(self):
        fs = CMOS_CORNERS[CornerName.FS].apply(TECH_45NM)
        assert fs.vth_n < TECH_45NM.vth_n
        assert fs.vth_p > TECH_45NM.vth_p

    def test_magnetic_corner_scales_barrier(self):
        corner = MAGNETIC_CORNERS[MagneticCornerName.HIGH_RA]
        barrier = corner.apply_barrier(MSS_BARRIER)
        assert barrier.resistance_area_product == pytest.approx(
            1.2 * MSS_BARRIER.resistance_area_product
        )

    def test_magnetic_corner_scales_pma(self):
        corner = MAGNETIC_CORNERS[MagneticCornerName.WEAK_PMA]
        layer = corner.apply_free_layer(MSS_FREE_LAYER)
        assert layer.interfacial_anisotropy < MSS_FREE_LAYER.interfacial_anisotropy


class TestVariation:
    def test_pelgrom_scaling(self):
        variation = CMOSVariation()
        small = variation.vth_sigma(0.1, 0.045)
        large = variation.vth_sigma(0.4, 0.045)
        assert small == pytest.approx(2.0 * large)

    def test_vth_sigma_rejects_bad_area(self):
        with pytest.raises(ValueError):
            CMOSVariation().vth_sigma(0.0, 0.045)

    def test_node_scaling_45_noisier(self):
        v45 = variation_for_node(TECH_45NM)
        v65 = variation_for_node(TECH_65NM)
        assert v45.mtj.diameter_sigma_rel > v65.mtj.diameter_sigma_rel
        assert v45.cmos.k_prime_sigma_rel > v65.cmos.k_prime_sigma_rel

    def test_geometry_sampling_positive(self):
        rng = np.random.default_rng(0)
        variation = MTJVariation(diameter_sigma_rel=0.3)
        for _ in range(50):
            geometry = variation.sample_geometry(PillarGeometry(), rng)
            assert geometry.diameter > 0.0

    def test_resistance_scale_lognormal_mean(self):
        rng = np.random.default_rng(1)
        variation = MTJVariation()
        scales = variation.sample_resistance_scale(rng, size=20000)
        sigma_ln = variation.ra_thickness_sensitivity * variation.mgo_thickness_sigma_rel
        assert np.median(scales) == pytest.approx(1.0, rel=0.05)
        assert np.std(np.log(scales)) == pytest.approx(sigma_ln, rel=0.05)


class TestProcessDesignKit:
    def test_for_node_builds(self):
        pdk = ProcessDesignKit.for_node(45)
        assert pdk.tech.node_nm == 45

    def test_corner_plumbing(self):
        pdk = ProcessDesignKit.for_node(45, cmos_corner=CornerName.SS)
        assert pdk.tech.vth_n > TECH_45NM.vth_n

    def test_magnetic_corner_plumbing(self):
        pdk = ProcessDesignKit.for_node(
            45, magnetic_corner=MagneticCornerName.LOW_RA
        )
        nominal = ProcessDesignKit.for_node(45)
        assert (
            pdk.mtj_transport().parallel_resistance
            < nominal.mtj_transport().parallel_resistance
        )

    def test_device_factories(self):
        pdk = ProcessDesignKit.for_node(65)
        assert pdk.nmos(0.2).is_nmos
        assert not pdk.pmos(0.2).is_nmos
        assert pdk.switching_model().critical_current > 0.0

    def test_sample_mtj_instance_varies(self):
        pdk = ProcessDesignKit.for_node(45)
        rng = np.random.default_rng(7)
        resistances = {
            round(pdk.sample_mtj_instance(rng).parallel_resistance) for _ in range(10)
        }
        assert len(resistances) > 1
