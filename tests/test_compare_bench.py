"""The perf-gate logic of ``benchmarks/compare_bench.py``.

The gate itself runs in CI against real snapshots; these tests pin its
decision rules on synthetic ones: >30% wrong-direction drift on a
gated metric fails, improvements and report-only metrics never do,
missing sections compare as ``n/a``, and ``REPRO_BENCH_NO_GATE=1``
downgrades a failure to a report.
"""

import io
import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
)
import compare_bench  # noqa: E402


def _snapshot(**overrides):
    base = {
        "journal": {
            "jsonl_us_per_point_last_decile": 40.0,
            "jsonl_flatness": 1.2,
            "resume_load_s": 0.05,
            "jsonl_speedup_at_tail": 100.0,
        },
        "lease_fold": {
            "watermark_us_per_event_last_decile": 60.0,
            "watermark_flatness": 1.1,
            "watermark_speedup_at_tail": 200.0,
            "cold_fold_s": 0.02,
        },
        "executors": {
            "serial_wall_s": 1.2,
            "pool_speedup": 1.8,
            "worker_pull_speedup": 1.5,
            "network_speedup": 1.4,
        },
        "evaluator": {
            "vector_s_per_point": 0.02,
            "scalar_s_per_point": 1.0,
            "vector_speedup": 50.0,
        },
    }
    for dotted, value in overrides.items():
        section, metric = dotted.split(".")
        base[section][metric] = value
    return base


def _compare(baseline, current):
    out = io.StringIO()
    regressions = compare_bench.compare(baseline, current, out=out)
    return regressions, out.getvalue()


class TestCompare:
    def test_identical_snapshots_are_clean(self):
        regressions, report = _compare(_snapshot(), _snapshot())
        assert regressions == []
        assert "REGRESSION" not in report

    def test_small_drift_within_tolerance(self):
        current = _snapshot(**{"journal.jsonl_us_per_point_last_decile": 50.0})
        regressions, report = _compare(_snapshot(), current)
        assert regressions == []
        assert "(worse)" in report

    def test_down_metric_regression_flagged(self):
        current = _snapshot(**{"evaluator.vector_s_per_point": 0.03})
        regressions, _ = _compare(_snapshot(), current)
        assert len(regressions) == 1
        assert "evaluator.vector_s_per_point" in regressions[0]
        assert regressions[0].startswith("REGRESSION")

    def test_up_metric_regression_flagged(self):
        current = _snapshot(**{"evaluator.vector_speedup": 30.0})
        regressions, _ = _compare(_snapshot(), current)
        assert len(regressions) == 1
        assert "evaluator.vector_speedup" in regressions[0]

    def test_improvement_never_flags(self):
        current = _snapshot(**{
            "evaluator.vector_s_per_point": 0.001,
            "evaluator.vector_speedup": 500.0,
            "journal.jsonl_flatness": 0.9,
        })
        regressions, _ = _compare(_snapshot(), current)
        assert regressions == []

    def test_report_only_metrics_never_gate(self):
        current = _snapshot(**{
            "executors.pool_speedup": 0.5,
            "executors.serial_wall_s": 10.0,
            "lease_fold.cold_fold_s": 1.0,
        })
        regressions, report = _compare(_snapshot(), current)
        assert regressions == []
        assert report.count("(worse)") == 3

    def test_missing_section_is_na_not_failure(self):
        baseline = _snapshot()
        del baseline["evaluator"]
        regressions, report = _compare(baseline, _snapshot())
        assert regressions == []
        assert "n/a" in report


class TestMain:
    def _paths(self, tmp_path, baseline, current):
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return str(base_path), str(cur_path)

    def test_clean_run_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        assert compare_bench.main(
            list(self._paths(tmp_path, _snapshot(), _snapshot()))
        ) == 0
        assert "perf gate: all gated metrics" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_NO_GATE", raising=False)
        current = _snapshot(**{"journal.jsonl_flatness": 5.0})
        assert compare_bench.main(
            list(self._paths(tmp_path, _snapshot(), current))
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION journal.jsonl_flatness" in out
        assert "perf gate: FAILED" in out

    def test_escape_hatch_downgrades_to_report(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_NO_GATE", "1")
        current = _snapshot(**{"journal.jsonl_flatness": 5.0})
        assert compare_bench.main(
            list(self._paths(tmp_path, _snapshot(), current))
        ) == 0
        assert "DISABLED" in capsys.readouterr().out

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            compare_bench.main([str(tmp_path / "missing.json"),
                                str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        assert "cannot read snapshot" in capsys.readouterr().err

    def test_committed_baseline_parses(self, tmp_path):
        root = os.path.join(os.path.dirname(__file__), os.pardir)
        baseline = compare_bench._load(os.path.join(root, "BENCH_dse.json"))
        regressions, _ = _compare(baseline, baseline)
        assert regressions == []
