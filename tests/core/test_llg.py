"""Tests for the macrospin LLGS solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    LLGConfig,
    MacrospinLLG,
    MSS_FREE_LAYER,
    PillarGeometry,
    thermal_equilibrium_angle,
)
from repro.core.llg import normalize
from repro.utils.constants import GILBERT_GYROMAGNETIC


def make_solver(**overrides):
    config = LLGConfig(
        material=MSS_FREE_LAYER,
        geometry=PillarGeometry(diameter=40e-9),
        **overrides,
    )
    return MacrospinLLG(config)


class TestNormalize:
    def test_unit_output(self):
        v = normalize(np.array([3.0, 4.0, 0.0]))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(3))


class TestDeterministicDynamics:
    def test_equilibrium_is_stationary(self):
        solver = make_solver()
        result = solver.run(np.array([0.0, 0.0, 1.0]), duration=1e-9)
        assert result.final[2] == pytest.approx(1.0, abs=1e-9)

    def test_damping_relaxes_to_easy_axis(self):
        solver = make_solver()
        tilted = np.array([math.sin(0.3), 0.0, math.cos(0.3)])
        result = solver.run(tilted, duration=30e-9)
        assert result.final[2] == pytest.approx(1.0, abs=1e-3)
        assert not result.switched

    @settings(deadline=None, max_examples=10)
    @given(
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=0.1, max_value=1),
    )
    def test_norm_preserved(self, x, y, z):
        solver = make_solver()
        initial = np.array([x, y, z])
        result = solver.run(initial, duration=0.5e-9)
        norms = np.linalg.norm(result.magnetization, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_precession_frequency_matches_larmor(self):
        # Free precession around an applied z field with tiny damping.
        material = MSS_FREE_LAYER.with_updates(
            damping=1e-4, interfacial_anisotropy=0.0
        )
        field = 2e5
        config = LLGConfig(
            material=material,
            geometry=PillarGeometry(diameter=100e-9),
            applied_field=(0.0, 0.0, field),
            timestep=0.5e-12,
        )
        solver = MacrospinLLG(config)
        # Start exactly in-plane: the (easy-plane) shape anisotropy then
        # exerts no torque and the orbit is pure Larmor precession.
        result = solver.run(np.array([1.0, 0.0, 0.0]), duration=0.2e-9)
        mx = result.magnetization[:, 0]
        my = result.magnetization[:, 1]
        phase = np.unwrap(np.arctan2(my, mx))
        omega = abs(phase[-1] - phase[0]) / (result.times[-1] - result.times[0])
        # Effective field at mz ~ 0 is just the applied field.
        expected = GILBERT_GYROMAGNETIC * field
        assert omega == pytest.approx(expected, rel=0.05)

    def test_stt_switches_at_high_current(self):
        solver = make_solver(current=-200e-6, timestep=1e-12)
        # Negative current destabilises P (favours AP).
        initial = np.array([math.sin(0.05), 0.0, math.cos(0.05)])
        result = solver.run(initial, duration=20e-9)
        assert result.switched
        assert result.final[2] < -0.9

    def test_subcritical_current_does_not_switch(self):
        solver = make_solver(current=-2e-6, timestep=1e-12)
        initial = np.array([math.sin(0.05), 0.0, math.cos(0.05)])
        result = solver.run(initial, duration=5e-9)
        assert not result.switched

    def test_stop_when_exits_early(self):
        solver = make_solver(current=-200e-6, timestep=1e-12)
        initial = np.array([math.sin(0.05), 0.0, math.cos(0.05)])
        result = solver.run(
            initial, duration=50e-9, stop_when=lambda m: m[2] < 0.0
        )
        assert result.times[-1] < 50e-9

    def test_in_plane_bias_tilts_magnetization(self):
        # Oscillator-mode statics: h = 0.5 must give a 30-degree tilt.
        solver = make_solver()
        bias = 0.5 * solver.anisotropy_field
        tilted_solver = make_solver(applied_field=(bias, 0.0, 0.0))
        final = tilted_solver.relax(np.array([0.05, 0.0, 1.0]))
        tilt = math.degrees(math.acos(final[2]))
        assert tilt == pytest.approx(30.0, abs=1.5)


class TestStochasticDynamics:
    def test_thermal_field_perturbs_trajectory(self):
        solver = make_solver(temperature=300.0, seed=7)
        result = solver.run(np.array([0.0, 0.0, 1.0]), duration=2e-9)
        mz = result.mz()
        assert np.any(mz < 1.0 - 1e-6)
        assert np.linalg.norm(result.final) == pytest.approx(1.0, abs=1e-9)

    def test_seed_reproducibility(self):
        a = make_solver(temperature=300.0, seed=11).run(
            np.array([0.0, 0.0, 1.0]), duration=1e-9
        )
        b = make_solver(temperature=300.0, seed=11).run(
            np.array([0.0, 0.0, 1.0]), duration=1e-9
        )
        assert np.allclose(a.magnetization, b.magnetization)

    def test_thermal_cone_angle_statistics(self):
        rng = np.random.default_rng(3)
        delta = 60.0
        draws = [thermal_equilibrium_angle(delta, rng) for _ in range(4000)]
        mean_theta_sq = np.mean(np.square(draws))
        assert mean_theta_sq == pytest.approx(1.0 / delta, rel=0.1)

    def test_thermal_angle_rejects_bad_delta(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            thermal_equilibrium_angle(0.0, rng)


class TestConfigValidation:
    def test_rejects_bad_timestep(self):
        with pytest.raises(ValueError):
            LLGConfig(
                material=MSS_FREE_LAYER,
                geometry=PillarGeometry(),
                timestep=0.0,
            )

    def test_rejects_negative_temperature(self):
        with pytest.raises(ValueError):
            LLGConfig(
                material=MSS_FREE_LAYER,
                geometry=PillarGeometry(),
                temperature=-1.0,
            )
