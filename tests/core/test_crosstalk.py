"""Tests for the co-integration cross-talk analysis."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CrosstalkAnalysis,
    MSS_FREE_LAYER,
    PillarGeometry,
    astroid_switching_field,
    barrier_degradation_factor,
    design_sensor_mss,
    stray_field_on_axis,
)


@pytest.fixture(scope="module")
def aggressor():
    return design_sensor_mss().bias_magnets


@pytest.fixture(scope="module")
def analysis(aggressor):
    return CrosstalkAnalysis(aggressor, MSS_FREE_LAYER, PillarGeometry(diameter=45e-9))


class TestStrayField:
    def test_decays_with_distance(self, aggressor):
        near = stray_field_on_axis(aggressor, 400e-9)
        far = stray_field_on_axis(aggressor, 2000e-9)
        assert near > far > 0.0

    def test_rejects_point_inside_magnets(self, aggressor):
        inside = aggressor.gap / 2.0 + aggressor.length / 2.0
        with pytest.raises(ValueError):
            stray_field_on_axis(aggressor, inside)

    def test_far_field_dipole_like(self, aggressor):
        # Far away the quadruple-face sum decays fast (> quadratically).
        f1 = stray_field_on_axis(aggressor, 1e-6)
        f2 = stray_field_on_axis(aggressor, 2e-6)
        assert f1 / f2 > 4.0


class TestBarrierDegradation:
    def test_no_field_no_degradation(self):
        assert barrier_degradation_factor(0.0) == 1.0

    def test_full_field_kills_barrier(self):
        assert barrier_degradation_factor(1.0) == 0.0
        assert barrier_degradation_factor(2.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_stoner_wohlfarth_square_law(self, h):
        assert barrier_degradation_factor(h) == pytest.approx((1.0 - h) ** 2)

    def test_rejects_negative_field(self):
        with pytest.raises(ValueError):
            barrier_degradation_factor(-0.1)


class TestAstroid:
    def test_easy_axis_value(self):
        assert astroid_switching_field(0.0) == pytest.approx(1.0)

    def test_hard_axis_value(self):
        assert astroid_switching_field(math.pi / 2.0) == pytest.approx(1.0)

    def test_minimum_at_45_degrees(self):
        assert astroid_switching_field(math.pi / 4.0) == pytest.approx(0.5)

    @given(st.floats(min_value=0.0, max_value=math.pi))
    def test_bounded(self, angle):
        value = astroid_switching_field(angle)
        assert 0.5 - 1e-9 <= value <= 1.0 + 1e-9


class TestKeepOut:
    def test_delta_recovers_with_distance(self, analysis):
        d1 = analysis.disturbed_delta(400e-9)
        d2 = analysis.disturbed_delta(1500e-9)
        assert d1 < d2 <= analysis.undisturbed_delta

    def test_retention_monotone_in_distance(self, analysis):
        assert analysis.retention_at_distance(500e-9) < analysis.retention_at_distance(
            1500e-9
        )

    def test_keep_out_distance_sub_micron(self, analysis):
        keep_out = analysis.keep_out_distance(0.95)
        assert 200e-9 < keep_out < 2000e-9
        # The rule actually delivers the promised Delta.
        assert analysis.disturbed_delta(keep_out) == pytest.approx(
            0.95 * analysis.undisturbed_delta, rel=0.01
        )

    def test_tighter_budget_larger_keep_out(self, analysis):
        assert analysis.keep_out_distance(0.99) > analysis.keep_out_distance(0.90)

    def test_budget_validation(self, analysis):
        with pytest.raises(ValueError):
            analysis.keep_out_distance(1.5)

    def test_stronger_magnets_larger_keep_out(self):
        from repro.core import NDFEB
        import dataclasses

        weak_pair = design_sensor_mss().bias_magnets
        strong_pair = dataclasses.replace(weak_pair, material=NDFEB)
        victim = PillarGeometry(diameter=45e-9)
        weak = CrosstalkAnalysis(weak_pair, MSS_FREE_LAYER, victim)
        strong = CrosstalkAnalysis(strong_pair, MSS_FREE_LAYER, victim)
        assert strong.keep_out_distance(0.95) > weak.keep_out_distance(0.95)
