"""Tests for the MSS mode configurator and the compact models."""

import math

import pytest

from repro.core import (
    BehavioralMTJModel,
    MSS_BARRIER,
    MSS_FREE_LAYER,
    MSSMode,
    PhysicalMTJModel,
    PillarGeometry,
    SwitchingModel,
    design_memory_mss,
    design_oscillator_mss,
    design_sensor_mss,
)

YEAR = 365.25 * 24 * 3600.0


class TestMemoryDesign:
    def test_mode(self):
        assert design_memory_mss().mode is MSSMode.MEMORY

    def test_retention_met(self):
        device = design_memory_mss(retention_seconds=10 * YEAR)
        assert device.thermal_stability().relaxation_time() >= 9 * YEAR

    def test_smaller_retention_smaller_pillar(self):
        short = design_memory_mss(retention_seconds=0.5 * YEAR)
        long = design_memory_mss(retention_seconds=10 * YEAR)
        assert short.geometry.diameter < long.geometry.diameter

    def test_smaller_retention_lower_write_current(self):
        # The paper's whole point: minimise switching current for the
        # specified retention.
        short = design_memory_mss(retention_seconds=0.5 * YEAR)
        long = design_memory_mss(retention_seconds=10 * YEAR)
        assert (
            short.switching_model().critical_current
            < long.switching_model().critical_current
        )

    def test_memory_has_no_bias_magnets(self):
        assert design_memory_mss().bias_magnets is None

    def test_summary_mentions_retention(self):
        assert "retention" in design_memory_mss().summary()


class TestOscillatorDesign:
    def test_mode_and_tilt(self):
        device = design_oscillator_mss()
        assert device.mode is MSSMode.OSCILLATOR
        oscillator = device.oscillator_model()
        assert math.degrees(oscillator.tilt_angle) == pytest.approx(30.0, abs=0.5)

    def test_bias_is_half_hk(self):
        device = design_oscillator_mss()
        assert device.bias_field / device.anisotropy_field == pytest.approx(0.5, rel=1e-3)

    def test_bias_field_kilo_oersted_order(self):
        from repro.utils.units import to_oersted

        device = design_oscillator_mss()
        assert 300 < to_oersted(device.bias_field) < 3000

    def test_summary_mentions_frequency(self):
        assert "GHz" in design_oscillator_mss().summary()


class TestSensorDesign:
    def test_mode_and_bias_margin(self):
        device = design_sensor_mss()
        assert device.mode is MSSMode.SENSOR
        assert device.bias_field > device.anisotropy_field

    def test_larger_pillar_than_memory(self):
        sensor = design_sensor_mss()
        memory = design_memory_mss()
        assert sensor.geometry.diameter > memory.geometry.diameter

    def test_sensor_model_works(self):
        sensor = design_sensor_mss().sensor_model()
        assert sensor.linear_range > 0.0

    def test_rejects_pillar_without_pma(self):
        # A thick free layer loses its interfacial PMA advantage; the
        # designer must refuse the geometry rather than bias it.
        with pytest.raises(ValueError):
            design_sensor_mss(diameter=150e-9, thickness=3e-9)

    def test_same_stack_all_modes(self):
        # The defining property of the MSS: one material stack.
        memory = design_memory_mss()
        sensor = design_sensor_mss()
        oscillator = design_oscillator_mss()
        assert memory.material == sensor.material == oscillator.material
        assert memory.barrier == sensor.barrier == oscillator.barrier


@pytest.fixture
def geometry():
    return PillarGeometry(diameter=45e-9)


class TestBehavioralModel:
    def test_initial_state_resistances(self, geometry):
        p_model = BehavioralMTJModel(MSS_FREE_LAYER, geometry, MSS_BARRIER)
        ap_model = BehavioralMTJModel(
            MSS_FREE_LAYER, geometry, MSS_BARRIER, initial_antiparallel=True
        )
        assert ap_model.resistance() > p_model.resistance()

    def test_switches_after_mean_time(self, geometry):
        model = BehavioralMTJModel(
            MSS_FREE_LAYER, geometry, MSS_BARRIER, initial_antiparallel=True
        )
        current = 5.0 * model.critical_current
        switching = SwitchingModel(MSS_FREE_LAYER, geometry)
        expected = switching.mean_switching_time(current)
        switched = model.advance(current, 2.0 * expected)
        assert switched
        assert not model.state.antiparallel

    def test_wrong_polarity_never_switches(self, geometry):
        model = BehavioralMTJModel(MSS_FREE_LAYER, geometry, MSS_BARRIER)
        # P state + positive current (which favours P) -> no switch.
        switched = model.advance(5.0 * model.critical_current, 50e-9)
        assert not switched
        assert not model.state.antiparallel

    def test_progress_accumulates_across_steps(self, geometry):
        model = BehavioralMTJModel(
            MSS_FREE_LAYER, geometry, MSS_BARRIER, initial_antiparallel=True
        )
        current = 5.0 * model.critical_current
        switching = SwitchingModel(MSS_FREE_LAYER, geometry)
        step = switching.mean_switching_time(current) / 4.0
        flips = [model.advance(current, step) for _ in range(6)]
        assert any(flips)

    def test_rejects_negative_dt(self, geometry):
        model = BehavioralMTJModel(MSS_FREE_LAYER, geometry, MSS_BARRIER)
        with pytest.raises(ValueError):
            model.advance(1e-6, -1e-9)


class TestPhysicalModel:
    def test_resistance_is_continuous_state(self, geometry):
        model = PhysicalMTJModel(MSS_FREE_LAYER, geometry, MSS_BARRIER, seed=1)
        r0 = model.resistance()
        transport = model.transport
        assert transport.parallel_resistance <= r0 <= transport.antiparallel_resistance

    def test_llg_switching_event(self, geometry):
        model = PhysicalMTJModel(
            MSS_FREE_LAYER, geometry, MSS_BARRIER, temperature=0.0, seed=3
        )
        switching = SwitchingModel(MSS_FREE_LAYER, geometry)
        current = -8.0 * switching.critical_current  # drive P -> AP
        switched = model.advance(current, 30e-9)
        assert switched
        assert model.state.antiparallel

    def test_zero_dt_is_noop(self, geometry):
        model = PhysicalMTJModel(MSS_FREE_LAYER, geometry, MSS_BARRIER, seed=5)
        assert model.advance(1e-4, 0.0) is False
