"""Tests for thermal stability, retention and STT switching statistics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ATTEMPT_TIME,
    MSS_FREE_LAYER,
    PillarGeometry,
    SwitchingModel,
    ThermalStability,
    delta_for_retention,
    diameter_for_retention,
)

YEAR = 365.25 * 24 * 3600.0


@pytest.fixture
def stability():
    return ThermalStability(MSS_FREE_LAYER, PillarGeometry(diameter=45e-9))


@pytest.fixture
def switching():
    return SwitchingModel(MSS_FREE_LAYER, PillarGeometry(diameter=45e-9))


class TestThermalStability:
    def test_delta_in_memory_range(self, stability):
        assert 30.0 < stability.delta < 90.0

    def test_delta_grows_with_diameter_in_macrospin_range(self):
        small = ThermalStability(MSS_FREE_LAYER, PillarGeometry(diameter=25e-9))
        large = ThermalStability(MSS_FREE_LAYER, PillarGeometry(diameter=42e-9))
        assert large.delta > small.delta

    def test_delta_decreases_with_temperature(self):
        cold = ThermalStability(MSS_FREE_LAYER, PillarGeometry(), temperature=250.0)
        hot = ThermalStability(MSS_FREE_LAYER, PillarGeometry(), temperature=400.0)
        assert cold.delta > hot.delta

    def test_relaxation_time_is_neel_brown(self, stability):
        tau = stability.relaxation_time()
        expected = ATTEMPT_TIME * math.exp(stability.delta)
        assert tau == pytest.approx(expected)

    def test_current_lowers_barrier(self, stability):
        assert stability.relaxation_time(0.5) < stability.relaxation_time(0.0)

    def test_overdriven_relaxation_is_attempt_time(self, stability):
        assert stability.relaxation_time(1.5) == ATTEMPT_TIME

    def test_failure_probability_monotone_in_time(self, stability):
        p1 = stability.retention_failure_probability(1.0)
        p2 = stability.retention_failure_probability(1e6)
        assert 0.0 <= p1 <= p2 <= 1.0

    def test_rejects_negative_dwell(self, stability):
        with pytest.raises(ValueError):
            stability.retention_failure_probability(-1.0)


class TestRetentionDesign:
    def test_ten_year_delta_is_about_forty(self):
        delta = delta_for_retention(10.0 * YEAR)
        assert 38.0 < delta < 44.0

    def test_delta_grows_with_retention(self):
        assert delta_for_retention(10.0 * YEAR) > delta_for_retention(1.0 * YEAR)

    def test_tighter_failure_budget_needs_more_delta(self):
        loose = delta_for_retention(YEAR, failure_probability=0.5)
        tight = delta_for_retention(YEAR, failure_probability=1e-9)
        assert tight > loose

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            delta_for_retention(0.0)
        with pytest.raises(ValueError):
            delta_for_retention(YEAR, failure_probability=1.0)

    def test_diameter_for_retention_meets_target(self):
        diameter = diameter_for_retention(MSS_FREE_LAYER, 10.0 * YEAR)
        geometry = PillarGeometry(diameter=diameter)
        stability = ThermalStability(MSS_FREE_LAYER, geometry)
        assert stability.relaxation_time() >= 10.0 * YEAR * 0.9

    def test_diameter_scales_with_retention(self):
        short = diameter_for_retention(MSS_FREE_LAYER, 0.1 * YEAR)
        long = diameter_for_retention(MSS_FREE_LAYER, 10.0 * YEAR)
        assert long > short

    def test_unreachable_retention_raises(self):
        with pytest.raises(ValueError):
            diameter_for_retention(MSS_FREE_LAYER, 1e6 * YEAR)


class TestSwitchingModel:
    def test_critical_current_microamp_scale(self, switching):
        assert 5e-6 < switching.critical_current < 60e-6

    def test_critical_current_tracks_delta(self):
        small = SwitchingModel(MSS_FREE_LAYER, PillarGeometry(diameter=30e-9))
        large = SwitchingModel(MSS_FREE_LAYER, PillarGeometry(diameter=42e-9))
        assert large.critical_current > small.critical_current
        # The proportionality I_c0 ~ Delta is exact in this model.
        ratio_ic = large.critical_current / small.critical_current
        ratio_delta = large.stability.delta / small.stability.delta
        assert ratio_ic == pytest.approx(ratio_delta, rel=1e-9)

    def test_mean_switching_time_decreases_with_current(self, switching):
        ic0 = switching.critical_current
        t_low = switching.mean_switching_time(2.0 * ic0)
        t_high = switching.mean_switching_time(6.0 * ic0)
        assert t_high < t_low

    def test_precessional_time_nanosecond_scale(self, switching):
        t = switching.mean_switching_time(5.0 * switching.critical_current)
        assert 0.1e-9 < t < 20e-9

    def test_subcritical_time_is_thermal(self, switching):
        tau = switching.mean_switching_time(0.5 * switching.critical_current)
        assert tau > 1e-3  # astronomically slower than precessional

    def test_wer_decreases_with_pulse_width(self, switching):
        current = 4.0 * switching.critical_current
        wers = [switching.write_error_rate(t, current) for t in (1e-9, 3e-9, 10e-9)]
        assert wers[0] > wers[1] > wers[2]

    def test_wer_decreases_with_current(self, switching):
        wer_weak = switching.write_error_rate(5e-9, 2.0 * switching.critical_current)
        wer_strong = switching.write_error_rate(5e-9, 6.0 * switching.critical_current)
        assert wer_strong < wer_weak

    def test_wer_at_zero_pulse_is_near_one(self, switching):
        wer = switching.write_error_rate(0.0, 4.0 * switching.critical_current)
        assert wer == pytest.approx(1.0, abs=1e-6)

    @settings(deadline=None)
    @given(st.floats(min_value=1e-12, max_value=1e-3))
    def test_pulse_width_for_wer_roundtrip(self, wer_target):
        switching = SwitchingModel(MSS_FREE_LAYER, PillarGeometry(diameter=45e-9))
        current = 5.0 * switching.critical_current
        pulse = switching.pulse_width_for_wer(wer_target, current)
        if pulse > 0.0:
            assert switching.write_error_rate(pulse, current) == pytest.approx(
                wer_target, rel=1e-6
            )

    def test_pulse_for_wer_requires_overdrive(self, switching):
        with pytest.raises(ValueError):
            switching.pulse_width_for_wer(1e-9, 0.5 * switching.critical_current)

    def test_read_disturb_monotone_in_period(self, switching):
        current = 0.2 * switching.critical_current
        p_short = switching.read_disturb_probability(1e-9, current)
        p_long = switching.read_disturb_probability(100e-9, current)
        assert 0.0 <= p_short < p_long <= 1.0

    def test_read_disturb_monotone_in_current(self, switching):
        p_small = switching.read_disturb_probability(5e-9, 0.1 * switching.critical_current)
        p_large = switching.read_disturb_probability(5e-9, 0.4 * switching.critical_current)
        assert p_small < p_large

    def test_read_disturb_zero_current(self, switching):
        p = switching.read_disturb_probability(5e-9, 0.0)
        assert p < 1e-12

    def test_supercritical_read_always_disturbs(self, switching):
        p = switching.read_disturb_probability(5e-9, 2.0 * switching.critical_current)
        assert p == 1.0

    def test_write_energy(self, switching):
        energy = switching.write_energy(4e-9, 60e-6, 5000.0)
        assert energy == pytest.approx(60e-6 ** 2 * 5000.0 * 4e-9)

    def test_write_energy_rejects_bad_resistance(self, switching):
        with pytest.raises(ValueError):
            switching.write_energy(4e-9, 60e-6, 0.0)
