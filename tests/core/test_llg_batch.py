"""Batched LLGS integration (``run_batch``) vs the sequential solver.

The ``(N, 3)`` ensemble stepper is the Monte-Carlo fast path: each row
must evolve exactly as :meth:`MacrospinLLG.run` evolves the same single
vector (deterministic case), and the stochastic ensemble must be
reproducible and statistically consistent with the scalar integrator.
"""

import math

import numpy as np
import pytest

from repro.core import LLGConfig, MacrospinLLG, MSS_FREE_LAYER, PillarGeometry
from repro.core.llg import LLGBatchResult, normalize_rows


def make_solver(**overrides):
    config = LLGConfig(
        material=MSS_FREE_LAYER,
        geometry=PillarGeometry(diameter=40e-9),
        **overrides,
    )
    return MacrospinLLG(config)


def tilted(angle):
    return np.array([math.sin(angle), 0.0, math.cos(angle)])


class TestNormalizeRows:
    def test_unit_rows(self):
        rows = normalize_rows(np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]]))
        np.testing.assert_allclose(
            np.linalg.norm(rows, axis=1), 1.0, atol=1e-12
        )

    def test_rejects_zero_row(self):
        with pytest.raises(ValueError):
            normalize_rows(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))


class TestDeterministicBatch:
    def test_rows_match_sequential_trajectories(self):
        solver = make_solver()
        initials = np.array([tilted(a) for a in (0.1, 0.3, 0.7, 1.2)])
        batch = solver.run_batch(initials, duration=2e-9)
        assert isinstance(batch, LLGBatchResult)
        for k, initial in enumerate(initials):
            scalar = make_solver().run(initial, duration=2e-9)
            np.testing.assert_allclose(batch.times, scalar.times)
            np.testing.assert_allclose(
                batch.magnetization[:, k], scalar.magnetization, atol=1e-10
            )
            assert bool(batch.switched[k]) == scalar.switched

    def test_step_batch_matches_step_scalar(self):
        solver = make_solver()
        m = normalize_rows(np.array([tilted(0.2), tilted(0.9), tilted(1.4)]))
        stepped = solver.step_deterministic_batch(m, 1e-12)
        for k in range(len(m)):
            expected = solver.step_deterministic(m[k], 1e-12)
            np.testing.assert_allclose(stepped[k], expected, atol=1e-13)

    def test_switching_verdicts_with_current(self):
        # A strong spin current reverses the tilted rows; the verdict
        # must match the sequential solver row for row.
        solver = make_solver(current=-200e-6)
        initials = np.array([tilted(0.05), tilted(0.2)])
        batch = solver.run_batch(initials, duration=5e-9)
        for k, initial in enumerate(initials):
            scalar = make_solver(current=-200e-6).run(initial, duration=5e-9)
            assert bool(batch.switched[k]) == scalar.switched

    def test_norms_preserved(self):
        solver = make_solver()
        initials = np.array([tilted(a) for a in (0.2, 0.8)])
        batch = solver.run_batch(initials, duration=1e-9)
        norms = np.linalg.norm(batch.magnetization, axis=2)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)


class TestRecording:
    def test_record_every_thins_trace(self):
        solver = make_solver()
        initials = np.array([tilted(0.3)])
        dense = solver.run_batch(initials, duration=1e-9, record_every=1)
        thin = solver.run_batch(initials, duration=1e-9, record_every=10)
        assert len(dense.times) == 1001
        assert len(thin.times) == 101
        np.testing.assert_allclose(thin.times[1], 10e-12)

    def test_final_sample_always_recorded(self):
        solver = make_solver()
        # 1000 steps, record_every=300: the tail (step 1000) is not a
        # multiple, so run_batch appends the final state explicitly.
        batch = solver.run_batch(
            np.array([tilted(0.3)]), duration=1e-9, record_every=300
        )
        assert batch.times[-1] == pytest.approx(1e-9)
        np.testing.assert_allclose(
            np.linalg.norm(batch.final, axis=1), 1.0, atol=1e-9
        )

    def test_trajectory_extraction(self):
        solver = make_solver()
        initials = np.array([tilted(0.1), tilted(0.5)])
        batch = solver.run_batch(initials, duration=0.5e-9)
        one = batch.trajectory(1)
        np.testing.assert_allclose(one.magnetization, batch.magnetization[:, 1])
        assert one.switched == bool(batch.switched[1])
        assert batch.mz().shape == (len(batch.times), 2)
        assert batch.final.shape == (2, 3)


class TestStochasticBatch:
    def test_reproducible_for_same_seed(self):
        initials = np.array([tilted(0.1)] * 8)
        first = make_solver(temperature=300.0, seed=5).run_batch(
            initials, duration=0.3e-9
        )
        second = make_solver(temperature=300.0, seed=5).run_batch(
            initials, duration=0.3e-9
        )
        np.testing.assert_array_equal(first.magnetization, second.magnetization)

    def test_rows_are_independent_trajectories(self):
        initials = np.array([tilted(0.1)] * 8)
        batch = make_solver(temperature=300.0, seed=6).run_batch(
            initials, duration=0.3e-9
        )
        finals = batch.final
        # Independent thermal fields: identical starts diverge.
        spread = np.ptp(finals[:, 2])
        assert spread > 0.0
        np.testing.assert_allclose(
            np.linalg.norm(batch.magnetization, axis=2), 1.0, atol=1e-9
        )

    def test_ensemble_statistics_match_sequential(self):
        # Same physical model, different RNG consumption: the ensemble
        # mean m_z must agree statistically with sequential runs.
        initials = np.array([tilted(0.3)] * 32)
        batch = make_solver(temperature=300.0, seed=7).run_batch(
            initials, duration=0.3e-9
        )
        sequential = [
            make_solver(temperature=300.0, seed=100 + k)
            .run(tilted(0.3), duration=0.3e-9)
            .final[2]
            for k in range(32)
        ]
        batch_mean = float(np.mean(batch.final[:, 2]))
        seq_mean = float(np.mean(sequential))
        spread = float(np.std(sequential)) / math.sqrt(len(sequential))
        assert abs(batch_mean - seq_mean) < max(6.0 * spread, 5e-3)
