"""Tests for material records and the MTJ transport model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    BarrierMaterial,
    FreeLayerMaterial,
    MSS_BARRIER,
    MSS_FREE_LAYER,
    MTJTransport,
    PillarGeometry,
)


class TestFreeLayerMaterial:
    def test_defaults_valid(self):
        material = FreeLayerMaterial()
        assert material.ms > 0.0

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            FreeLayerMaterial(damping=0.0)
        with pytest.raises(ValueError):
            FreeLayerMaterial(damping=1.5)

    def test_rejects_bad_polarization(self):
        with pytest.raises(ValueError):
            FreeLayerMaterial(polarization=0.0)

    def test_with_updates(self):
        changed = MSS_FREE_LAYER.with_updates(damping=0.02)
        assert changed.damping == 0.02
        assert MSS_FREE_LAYER.damping == 0.01


class TestBarrierMaterial:
    def test_tmr_roll_off_halves_at_vh(self):
        barrier = BarrierMaterial(tmr_zero_bias=1.0, tmr_half_voltage=0.5)
        assert barrier.tmr_at_bias(0.5) == pytest.approx(0.5)

    def test_tmr_symmetric_in_bias(self):
        assert MSS_BARRIER.tmr_at_bias(0.3) == pytest.approx(
            MSS_BARRIER.tmr_at_bias(-0.3)
        )

    def test_rejects_nonpositive_ra(self):
        with pytest.raises(ValueError):
            BarrierMaterial(resistance_area_product=0.0)


@pytest.fixture
def transport():
    return MTJTransport(PillarGeometry(diameter=40e-9), MSS_BARRIER)


class TestMTJTransport:
    def test_parallel_resistance_from_ra(self, transport):
        expected = MSS_BARRIER.resistance_area_product / transport.geometry.area
        assert transport.parallel_resistance == pytest.approx(expected)

    def test_antiparallel_larger(self, transport):
        assert transport.antiparallel_resistance > transport.parallel_resistance

    def test_angular_endpoints(self, transport):
        assert transport.resistance(1.0) == pytest.approx(transport.parallel_resistance)
        assert transport.resistance(-1.0) == pytest.approx(
            transport.antiparallel_resistance
        )

    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_resistance_bounded_by_states(self, cos_angle):
        transport = MTJTransport(PillarGeometry(diameter=40e-9), MSS_BARRIER)
        r = transport.resistance(cos_angle)
        assert transport.parallel_resistance <= r * (1 + 1e-12)
        assert r <= transport.antiparallel_resistance * (1 + 1e-12)

    def test_resistance_monotone_in_angle(self, transport):
        angles = np.linspace(-1.0, 1.0, 21)
        resistances = transport.resistance(angles)
        assert np.all(np.diff(resistances) < 0.0)

    def test_bias_shrinks_read_signal(self, transport):
        assert transport.read_signal(0.05) > transport.read_signal(0.5)

    def test_ap_resistance_drops_with_bias(self, transport):
        assert transport.state_resistance(True, 0.5) < transport.state_resistance(
            True, 0.0
        )

    def test_parallel_resistance_bias_independent(self, transport):
        assert transport.state_resistance(False, 0.5) == pytest.approx(
            transport.state_resistance(False, 0.0)
        )

    def test_bias_for_current_self_consistent(self, transport):
        current = 50e-6
        voltage = transport.bias_for_current(current, antiparallel=True)
        recon = voltage / transport.state_resistance(True, voltage)
        assert recon == pytest.approx(current, rel=1e-6)

    def test_bias_for_current_sign(self, transport):
        assert transport.bias_for_current(-30e-6, False) < 0.0

    def test_conductance_reciprocal(self, transport):
        assert transport.conductance(0.2) == pytest.approx(
            1.0 / transport.resistance(0.2)
        )

    def test_array_input_returns_array(self, transport):
        values = transport.resistance(np.array([-1.0, 0.0, 1.0]))
        assert isinstance(values, np.ndarray)
        assert values.shape == (3,)

    def test_power_dissipation(self, transport):
        power = transport.power_dissipation(0.3, antiparallel=False)
        expected = 0.09 / transport.state_resistance(False, 0.3)
        assert power == pytest.approx(expected)
