"""Tests for bias magnets, sensor mode and oscillator mode."""

import math

import numpy as np
import pytest

from repro.core import (
    BiasMagnetPair,
    COCR,
    MSS_BARRIER,
    MSS_FREE_LAYER,
    MSSFieldSensor,
    MSSOscillator,
    NDFEB,
    PillarGeometry,
    design_bias_magnets,
    equilibrium_tilt,
    oscillator_bias_field_rule,
    rectangular_pole_face_field,
    sensor_bias_field_rule,
)


class TestPoleFaceField:
    def test_field_decays_with_distance(self):
        m = COCR.magnetization
        near = rectangular_pole_face_field(m, 200e-9, 60e-9, 20e-9)
        far = rectangular_pole_face_field(m, 200e-9, 60e-9, 200e-9)
        assert near > far > 0.0

    def test_close_limit_is_half_magnetization(self):
        # Solid angle -> 2 pi at contact: H -> M/2.
        m = COCR.magnetization
        field = rectangular_pole_face_field(m, 1e-6, 1e-6, 1e-10)
        assert field == pytest.approx(m / 2.0, rel=1e-3)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            rectangular_pole_face_field(1e5, 1e-7, 1e-7, 0.0)


class TestBiasMagnetPair:
    def test_field_decreases_with_gap(self):
        narrow = BiasMagnetPair(gap=60e-9)
        wide = BiasMagnetPair(gap=400e-9)
        assert narrow.field_at_center() > wide.field_at_center()

    def test_ndfeb_stronger_than_cocr(self):
        cocr = BiasMagnetPair(material=COCR)
        ndfeb = BiasMagnetPair(material=NDFEB)
        assert ndfeb.field_at_center() > cocr.field_at_center()

    def test_field_vector_along_x(self):
        pair = BiasMagnetPair()
        vector = pair.field_vector()
        assert vector[1] == 0.0 and vector[2] == 0.0
        assert vector[0] == pair.field_at_center()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BiasMagnetPair(gap=0.0)

    def test_design_hits_target(self):
        hk = PillarGeometry(diameter=40e-9).effective_anisotropy_field(MSS_FREE_LAYER)
        target = 0.5 * hk
        pair = design_bias_magnets(target)
        assert pair.field_at_center() == pytest.approx(target, rel=1e-4)

    def test_design_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            design_bias_magnets(COCR.magnetization)  # >> any achievable field


class TestDesignRules:
    def test_oscillator_rule_half(self):
        assert oscillator_bias_field_rule(1e5) == pytest.approx(5e4)

    def test_sensor_rule_above_hk(self):
        assert sensor_bias_field_rule(1e5) > 1e5

    def test_rules_reject_bad_fractions(self):
        with pytest.raises(ValueError):
            oscillator_bias_field_rule(1e5, fraction=1.5)
        with pytest.raises(ValueError):
            sensor_bias_field_rule(1e5, margin=0.9)


@pytest.fixture
def sensor():
    geometry = PillarGeometry(diameter=150e-9)
    hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
    return MSSFieldSensor(MSS_FREE_LAYER, geometry, MSS_BARRIER, bias_field=1.1 * hk)


class TestSensorMode:
    def test_requires_bias_above_hk(self):
        geometry = PillarGeometry(diameter=150e-9)
        hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
        with pytest.raises(ValueError):
            MSSFieldSensor(MSS_FREE_LAYER, geometry, MSS_BARRIER, bias_field=0.5 * hk)

    def test_zero_field_pulls_in_plane(self, sensor):
        point = sensor.operating_point(0.0)
        assert abs(point.mz) < 1e-3

    def test_small_signal_linearity(self, sensor):
        h_small = 0.02 * sensor.linear_range
        up = sensor.operating_point(h_small)
        down = sensor.operating_point(-h_small)
        expected = h_small * sensor.small_signal_mz_sensitivity
        assert up.mz == pytest.approx(expected, rel=0.05)
        assert down.mz == pytest.approx(-expected, rel=0.05)

    def test_small_signal_slope_is_stoner_wohlfarth(self, sensor):
        # mz = hz / (hx - 1) in reduced units.
        expected = 1.0 / (sensor.bias_field - sensor.anisotropy_field)
        assert sensor.small_signal_mz_sensitivity == pytest.approx(expected)

    def test_saturation_beyond_linear_range(self, sensor):
        # Stoner-Wohlfarth saturation is soft: m_z keeps growing past
        # the linear range and approaches 1 only for H_z >> H_k.
        mild = sensor.operating_point(3.0 * sensor.linear_range).mz
        strong = sensor.operating_point(10.0 * sensor.anisotropy_field).mz
        assert 0.5 < mild < strong
        assert strong > 0.9

    def test_transfer_curve_monotone(self, sensor):
        fields = np.linspace(-0.5, 0.5, 11) * sensor.linear_range
        curve = sensor.transfer_curve(fields)
        # Positive H_z aligns the free layer with the reference (+z),
        # lowering the resistance.
        assert np.all(np.diff(curve) < 0.0)

    def test_sensitivity_sign_negative(self, sensor):
        assert sensor.sensitivity < 0.0

    def test_noise_floors_positive(self, sensor):
        assert sensor.thermal_field_noise_density() > 0.0
        assert sensor.johnson_field_noise_density() > 0.0
        assert sensor.detectivity() >= sensor.thermal_field_noise_density()

    def test_digitize_inverts_transfer(self, sensor):
        h_true = 0.05 * sensor.linear_range
        resistance = sensor.operating_point(h_true).resistance
        h_est = sensor.digitize(resistance)
        assert h_est == pytest.approx(h_true, rel=0.08)

    def test_larger_pillar_is_quieter(self):
        def make(diameter):
            geometry = PillarGeometry(diameter=diameter)
            hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
            return MSSFieldSensor(
                MSS_FREE_LAYER, geometry, MSS_BARRIER, bias_field=1.1 * hk
            )

        small, large = make(100e-9), make(200e-9)
        assert large.thermal_field_noise_density() < small.thermal_field_noise_density()


@pytest.fixture
def oscillator():
    geometry = PillarGeometry(diameter=40e-9)
    hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
    return MSSOscillator(MSS_FREE_LAYER, geometry, bias_field=0.5 * hk)


class TestOscillatorMode:
    def test_paper_tilt_thirty_degrees(self, oscillator):
        assert math.degrees(oscillator.tilt_angle) == pytest.approx(30.0, abs=0.01)

    def test_equilibrium_tilt_function(self):
        assert equilibrium_tilt(0.5) == pytest.approx(math.radians(30.0))
        with pytest.raises(ValueError):
            equilibrium_tilt(1.2)

    def test_requires_subcritical_bias(self):
        geometry = PillarGeometry(diameter=40e-9)
        hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
        with pytest.raises(ValueError):
            MSSOscillator(MSS_FREE_LAYER, geometry, bias_field=1.5 * hk)

    def test_fmr_frequency_gigahertz(self, oscillator):
        assert 1e9 < oscillator.fmr_frequency < 20e9

    def test_threshold_current_physical(self, oscillator):
        assert 1e-6 < oscillator.threshold_current < 1e-3

    def test_below_threshold_no_power(self, oscillator):
        point = oscillator.operating_point(0.5 * oscillator.threshold_current)
        assert point.power == 0.0
        assert point.output_power == 0.0

    def test_power_grows_with_supercriticality(self, oscillator):
        p1 = oscillator.operating_point(1.5 * oscillator.threshold_current).power
        p2 = oscillator.operating_point(3.0 * oscillator.threshold_current).power
        assert 0.0 < p1 < p2 < 1.0

    def test_frequency_red_shifts_with_power(self, oscillator):
        f1 = oscillator.operating_point(1.2 * oscillator.threshold_current).frequency
        f2 = oscillator.operating_point(3.0 * oscillator.threshold_current).frequency
        assert f2 < f1 <= oscillator.fmr_frequency

    def test_linewidth_narrows_above_threshold(self, oscillator):
        below = oscillator.operating_point(0.9 * oscillator.threshold_current)
        above = oscillator.operating_point(2.5 * oscillator.threshold_current)
        assert above.linewidth < below.linewidth

    def test_tuning_curve_shape(self, oscillator):
        currents = np.linspace(1.2, 3.0, 8) * oscillator.threshold_current
        curve = oscillator.tuning_curve(currents)
        assert np.all(np.diff(curve) < 0.0)

    def test_rejects_nonpositive_current(self, oscillator):
        with pytest.raises(ValueError):
            oscillator.operating_point(0.0)
