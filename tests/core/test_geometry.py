"""Tests for pillar geometry and demagnetising factors."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    MSS_FREE_LAYER,
    PillarGeometry,
    oblate_spheroid_demag_factor,
)


class TestDemagFactor:
    def test_sphere_limit(self):
        assert oblate_spheroid_demag_factor(1.0) == pytest.approx(1.0 / 3.0)

    def test_near_sphere_continuity(self):
        assert oblate_spheroid_demag_factor(1.001) == pytest.approx(1.0 / 3.0, rel=1e-2)

    def test_thin_film_limit(self):
        assert oblate_spheroid_demag_factor(1e4) > 0.999

    def test_monotone_in_aspect(self):
        values = [oblate_spheroid_demag_factor(m) for m in (1.5, 3.0, 10.0, 40.0)]
        assert values == sorted(values)

    def test_prolate_branch_below_one_third(self):
        assert oblate_spheroid_demag_factor(0.5) < 1.0 / 3.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            oblate_spheroid_demag_factor(0.0)

    @given(st.floats(min_value=1.01, max_value=1e3))
    def test_oblate_range(self, m):
        nz = oblate_spheroid_demag_factor(m)
        assert 1.0 / 3.0 < nz < 1.0


class TestPillarGeometry:
    def test_area_and_volume(self):
        geometry = PillarGeometry(diameter=40e-9, free_layer_thickness=1.3e-9)
        assert geometry.area == pytest.approx(math.pi * (20e-9) ** 2)
        assert geometry.volume == pytest.approx(geometry.area * 1.3e-9)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            PillarGeometry(diameter=0.0)
        with pytest.raises(ValueError):
            PillarGeometry(free_layer_thickness=-1e-9)

    def test_demag_factors_sum_to_one(self):
        geometry = PillarGeometry(diameter=60e-9)
        total = geometry.demag_factor_z + 2.0 * geometry.demag_factor_inplane
        assert total == pytest.approx(1.0)

    def test_anisotropy_field_decreases_with_diameter(self):
        # Bigger pillar -> more demag -> weaker perpendicular anisotropy:
        # the paper's reason for larger sensor pillars.
        small = PillarGeometry(diameter=30e-9)
        large = PillarGeometry(diameter=150e-9)
        hk_small = small.effective_anisotropy_field(MSS_FREE_LAYER)
        hk_large = large.effective_anisotropy_field(MSS_FREE_LAYER)
        assert hk_small > hk_large > 0.0

    def test_anisotropy_field_is_kilo_oersted_scale(self):
        # The paper quotes ~1 kOe (~8e4 A/m) for the effective field.
        geometry = PillarGeometry(diameter=40e-9)
        hk = geometry.effective_anisotropy_field(MSS_FREE_LAYER)
        assert 5e4 < hk < 4e5

    def test_domain_wall_width_positive(self):
        geometry = PillarGeometry(diameter=40e-9)
        wall = geometry.domain_wall_width(MSS_FREE_LAYER)
        assert 10e-9 < wall < 200e-9

    def test_thermally_relevant_volume_capped(self):
        small = PillarGeometry(diameter=30e-9)
        huge = PillarGeometry(diameter=120e-9)
        v_small = small.thermally_relevant_volume(MSS_FREE_LAYER)
        assert v_small == pytest.approx(small.volume)
        v_huge = huge.thermally_relevant_volume(MSS_FREE_LAYER)
        assert v_huge < huge.volume

    def test_with_diameter_copies(self):
        geometry = PillarGeometry(diameter=40e-9)
        changed = geometry.with_diameter(80e-9)
        assert changed.diameter == 80e-9
        assert geometry.diameter == 40e-9

    @given(st.floats(min_value=15e-9, max_value=200e-9))
    def test_aspect_ratio_consistency(self, diameter):
        geometry = PillarGeometry(diameter=diameter)
        assert geometry.aspect_ratio == pytest.approx(
            diameter / geometry.free_layer_thickness
        )
