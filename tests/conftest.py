"""Root test fixtures and import plumbing.

Puts the ``tests/`` directory itself on ``sys.path`` so suites in
subdirectories (``tests/dse``, ...) can import the shared helpers that
live in :mod:`test_utils` (fault injection: ``CrashingRunner``,
``torn_write``) regardless of pytest's collection order.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
