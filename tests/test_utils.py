"""Tests for repro.utils, plus shared fault-injection test helpers.

The helpers at the bottom (:class:`CrashingRunner`, :func:`torn_write`,
:exc:`CampaignKilled`, and the multi-writer hammers
:func:`hammer_cache` / :func:`spawn_hammers`) simulate the ways a
campaign dies or races in the wild — the process is killed between
points, a write is torn mid-append, and many processes write one cache
concurrently — and are imported by the suites under ``tests/dse``
(``tests/conftest.py`` puts this directory on ``sys.path``).
"""


import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    GILBERT_GYROMAGNETIC,
    GYROMAGNETIC_RATIO,
    HBAR,
    MU_0,
    ROOM_TEMPERATURE,
    Table,
    clamp,
    db,
    undb,
    from_oersted,
    to_oersted,
    celsius_to_kelvin,
    kelvin_to_celsius,
    lerp,
    log_interp,
    q_function,
    q_function_inverse,
    smooth_step,
)


class TestConstants:
    def test_boltzmann_magnitude(self):
        assert 1.3e-23 < BOLTZMANN < 1.4e-23

    def test_charge_magnitude(self):
        assert 1.6e-19 < ELEMENTARY_CHARGE < 1.61e-19

    def test_hbar_magnitude(self):
        assert 1.05e-34 < HBAR < 1.06e-34

    def test_gilbert_gamma_is_mu0_gamma(self):
        assert GILBERT_GYROMAGNETIC == pytest.approx(MU_0 * GYROMAGNETIC_RATIO)

    def test_room_temperature(self):
        assert ROOM_TEMPERATURE == 300.0

    def test_thermal_energy_at_room_temperature(self):
        # kT at 300 K is the famous 25.85 meV.
        kt_ev = BOLTZMANN * ROOM_TEMPERATURE / ELEMENTARY_CHARGE
        assert kt_ev == pytest.approx(0.02585, rel=1e-3)


class TestUnits:
    def test_one_kilo_oersted(self):
        # 1 kOe = 1000/(4 pi) kA/m ~ 79.6 kA/m.
        assert from_oersted(1000.0) == pytest.approx(79577.47, rel=1e-4)

    def test_oersted_roundtrip(self):
        assert to_oersted(from_oersted(123.4)) == pytest.approx(123.4)

    def test_celsius_kelvin_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(85.0)) == pytest.approx(85.0)

    def test_db_of_ten_is_ten(self):
        assert db(10.0) == pytest.approx(10.0)

    def test_undb_roundtrip(self):
        assert undb(db(42.0)) == pytest.approx(42.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            db(0.0)


class TestMathHelpers:
    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_below_and_above(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)

    def test_lerp_endpoints(self):
        assert lerp(2.0, 6.0, 0.0) == 2.0
        assert lerp(2.0, 6.0, 1.0) == 6.0

    def test_log_interp_midpoint_is_geometric_mean(self):
        mid = log_interp(0.5, 0.0, 1.0, 1e-10, 1e-2)
        assert mid == pytest.approx(1e-6, rel=1e-9)

    def test_log_interp_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_interp(0.5, 0.0, 1.0, 0.0, 1.0)

    def test_q_function_at_zero(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_q_function_three_sigma(self):
        assert q_function(3.0) == pytest.approx(1.3499e-3, rel=1e-3)

    @given(st.floats(min_value=1e-12, max_value=0.4))
    def test_q_function_inverse_roundtrip(self, p):
        assert q_function(q_function_inverse(p)) == pytest.approx(p, rel=1e-6)

    def test_q_function_inverse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            q_function_inverse(0.0)
        with pytest.raises(ValueError):
            q_function_inverse(1.0)

    def test_smooth_step_edges(self):
        assert smooth_step(0.0, 1.0, -1.0) == 0.0
        assert smooth_step(0.0, 1.0, 2.0) == 1.0
        assert smooth_step(0.0, 1.0, 0.5) == pytest.approx(0.5)

    @given(st.floats(min_value=-10, max_value=10))
    def test_smooth_step_bounded(self, x):
        assert 0.0 <= smooth_step(0.0, 1.0, x) <= 1.0

    def test_smooth_step_degenerate_edges(self):
        assert smooth_step(1.0, 1.0, 0.5) == 0.0
        assert smooth_step(1.0, 1.0, 1.5) == 1.0


class TestTable:
    def test_render_alignment(self):
        table = Table(["a", "bb"])
        table.add_row([1, 2.5])
        text = table.render()
        assert "a" in text and "bb" in text and "2.5" in text

    def test_row_length_mismatch(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_title_rendered(self):
        table = Table(["x"], title="hello")
        table.add_row([1])
        assert table.render().splitlines()[0] == "hello"

    def test_float_formatting_compact(self):
        table = Table(["x"])
        table.add_row([1.23456789e-7])
        assert "1.23e-07" in table.render()

    def test_zero_formatting(self):
        table = Table(["x"])
        table.add_row([0.0])
        assert table.rows[0][0] == "0"


# -- fault-injection helpers (shared by tests/dse) ----------------------


class CampaignKilled(Exception):
    """Raised by :class:`CrashingRunner`: stands in for SIGKILL."""


class CrashingRunner:
    """A :class:`~repro.dse.runner.CampaignRunner` that dies mid-stream.

    Wraps a real runner and raises :exc:`CampaignKilled` after
    ``crash_after`` results have been yielded — *after* the consumer
    (checkpoint layer, progress display) has processed them, exactly
    like a kill landing between two journal appends.  Pair with
    :func:`torn_write` to also tear the journal's final line.

    Args:
        runner: The real runner to wrap.
        crash_after: Results to deliver before dying.
    """

    def __init__(self, runner, crash_after=1):
        self.runner = runner
        self.crash_after = int(crash_after)

    def __getattr__(self, name):
        return getattr(self.runner, name)

    def run_iter(self, jobs, progress=None, **kwargs):
        delivered = 0
        for outcome in self.runner.run_iter(jobs, progress=progress, **kwargs):
            yield outcome
            delivered += 1
            if delivered >= self.crash_after:
                raise CampaignKilled(
                    "killed after %d delivered point(s)" % delivered
                )

    def run(self, jobs, progress=None, **kwargs):
        return list(self.run_iter(jobs, progress=progress, **kwargs))


def torn_write(path, offset):
    """Truncate a file at an arbitrary byte ``offset``.

    Simulates a crash (or power loss) mid-append: everything past the
    offset vanishes, typically leaving a torn final line.  Returns the
    number of bytes removed.
    """
    import os

    size = os.path.getsize(path)
    if not 0 <= offset <= size:
        raise ValueError(
            "offset %d outside file of %d bytes" % (offset, size)
        )
    with open(path, "r+b") as handle:
        handle.truncate(offset)
    return size - offset


def hammer_cache(root, keys, rounds, shards=0):
    """One stress process: write/read overlapping keys, assert sanity.

    Runs in a child process (module-level so it pickles).  Every round
    puts a fresh record for every key and immediately reads it back —
    read-your-writes must hold even while 7 sibling processes replace
    the same files.  Any violation raises, which
    :func:`spawn_hammers`'s caller sees as a nonzero exit code.

    Args:
        root: Cache directory shared by all hammer processes.
        keys: Content-hash keys (overlapping across processes).
        rounds: put+get sweeps to run.
        shards: 0 = plain :class:`ResultCache`; >0 = a
            :class:`ShardedResultCache` with that many shards.
    """
    from repro.dse.cache import ResultCache
    from repro.dse.shard import ShardedResultCache

    cache = (
        ShardedResultCache(root, shards) if shards else ResultCache(root)
    )
    import os

    stamp = os.getpid()
    for round_number in range(rounds):
        for key in keys:
            cache.put(key, {"key": key, "round": round_number, "pid": stamp})
            record = cache.get(key)
            # Another process may have replaced the record (atomic
            # rename), but a reader must never see a torn/absent one.
            assert record is not None, "read-your-writes violated for %s" % key
            assert record["key"] == key, "foreign record under %s" % key
    return cache.writes


def spawn_hammers(root, keys, processes=8, rounds=10, shards=0):
    """Run :func:`hammer_cache` in N concurrent processes; return exitcodes."""
    import multiprocessing

    context = multiprocessing.get_context()
    workers = [
        context.Process(
            target=hammer_cache, args=(root, list(keys), rounds, shards)
        )
        for _ in range(processes)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    return [worker.exitcode for worker in workers]
