"""Tests for the MSS cell library: bit cell, SA, driver, NVFF, I-source."""


import pytest

from repro.cells import (
    CellConfig,
    NonVolatileFlipFlop,
    ProgrammableCurrentSource,
    build_driver_write_path,
    build_read_cell,
    build_sense_path,
    build_write_cell,
    reference_resistance,
)
from repro.pdk import ProcessDesignKit
from repro.spice import transient


@pytest.fixture(scope="module")
def pdk():
    return ProcessDesignKit.for_node(45)


class TestBitCellWrite:
    @pytest.mark.parametrize("to_ap", [True, False])
    def test_both_polarities_switch(self, pdk, to_ap):
        handles = build_write_cell(pdk, write_to_antiparallel=to_ap)
        transient(handles.circuit, stop_time=8e-9, timestep=2e-11)
        assert handles.mtj.is_antiparallel == to_ap
        assert len(handles.mtj.switch_log) == 1

    def test_no_pulse_no_switch(self, pdk):
        handles = build_write_cell(pdk, write_to_antiparallel=True, pulse_delay=50e-9)
        transient(handles.circuit, stop_time=5e-9, timestep=2e-11)
        assert not handles.mtj.is_antiparallel


class TestBitCellRead:
    @pytest.mark.parametrize("stored_ap", [True, False])
    def test_read_current_distinguishes_states(self, pdk, stored_ap):
        handles = build_read_cell(pdk, stored_antiparallel=stored_ap)
        result = transient(
            handles.circuit, stop_time=4e-9, timestep=2e-11,
            record_currents_of=["vbl"],
        )
        current = abs(result.waveforms.trace("i(vbl)").average(1e-9, 3.5e-9))
        transport = pdk.mtj_transport()
        # AP (higher R) must draw visibly less current than P.
        if stored_ap:
            assert current < 0.08 / transport.parallel_resistance
        else:
            assert current > 0.08 / transport.antiparallel_resistance

    def test_read_preserves_state(self, pdk):
        handles = build_read_cell(pdk, stored_antiparallel=True)
        transient(handles.circuit, stop_time=4e-9, timestep=2e-11)
        assert handles.mtj.is_antiparallel
        assert handles.mtj.switch_log == []


class TestSensePath:
    @pytest.mark.parametrize("stored_ap", [True, False])
    def test_comparator_resolves_state(self, pdk, stored_ap):
        handles = build_sense_path(pdk, stored_antiparallel=stored_ap)
        result = transient(handles.circuit, stop_time=4e-9, timestep=2e-11)
        out = result.waveforms.trace("v(%s)" % handles.output_node)
        final = out.values[-1]
        vdd = pdk.tech.vdd
        if stored_ap:
            assert final > 0.8 * vdd
        else:
            assert final < 0.2 * vdd

    def test_read_does_not_disturb(self, pdk):
        handles = build_sense_path(pdk, stored_antiparallel=True)
        transient(handles.circuit, stop_time=4e-9, timestep=2e-11)
        assert handles.mtj.is_antiparallel

    def test_reference_resistance_is_geometric_mean(self, pdk):
        transport = pdk.mtj_transport()
        r_ref = reference_resistance(pdk)
        r_p = transport.state_resistance(False, 0.1)
        r_ap = transport.state_resistance(True, 0.1)
        assert r_p < r_ref < r_ap


class TestWriteDriver:
    def test_driver_writes_ap(self, pdk):
        handles = build_driver_write_path(pdk, write_to_antiparallel=True)
        transient(handles.circuit, stop_time=8e-9, timestep=2e-11)
        assert handles.mtj.is_antiparallel

    def test_driver_writes_p(self, pdk):
        handles = build_driver_write_path(pdk, write_to_antiparallel=False)
        transient(handles.circuit, stop_time=8e-9, timestep=2e-11)
        assert not handles.mtj.is_antiparallel

    def test_weak_corner_slows_switching(self, pdk):
        nominal = build_driver_write_path(pdk, True)
        weak = build_driver_write_path(pdk, True, vth_shift_n=0.1, k_prime_scale=0.75)
        transient(nominal.circuit, stop_time=10e-9, timestep=2e-11)
        transient(weak.circuit, stop_time=10e-9, timestep=2e-11)
        t_nominal = nominal.mtj.switch_log[0][0]
        t_weak = weak.mtj.switch_log[0][0]
        assert t_weak > t_nominal


class TestNVFF:
    def test_store_restore_roundtrip(self, pdk):
        for bit in (True, False):
            ff = NonVolatileFlipFlop(pdk)
            ff.clock(bit)
            ff.store()
            ff.power_down()
            assert ff.restore() == bit

    def test_power_down_blocks_clock(self, pdk):
        ff = NonVolatileFlipFlop(pdk)
        ff.power_down()
        with pytest.raises(RuntimeError):
            ff.clock(True)

    def test_store_requires_power(self, pdk):
        ff = NonVolatileFlipFlop(pdk)
        ff.power_down()
        with pytest.raises(RuntimeError):
            ff.store()

    def test_store_is_idempotent(self, pdk):
        ff = NonVolatileFlipFlop(pdk)
        ff.clock(True)
        ff.store()
        ff.store()
        ff.power_down()
        assert ff.restore() is True

    def test_characterization_numbers(self, pdk):
        timings = NonVolatileFlipFlop(pdk).characterize()
        assert 0.0 < timings.store_delay < 50e-9
        assert timings.store_energy > timings.dynamic_energy
        assert timings.restore_delay > 0.0
        assert timings.leakage_power > 0.0

    def test_rejects_subcritical_store_current(self, pdk):
        ic0 = pdk.switching_model().critical_current
        with pytest.raises(ValueError):
            NonVolatileFlipFlop(pdk, write_current=0.5 * ic0)


class TestProgrammableCurrentSource:
    def test_level_count(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=3)
        assert len(source.levels()) == 8

    def test_levels_sorted_and_distinct(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=4)
        currents = [level.current for level in source.levels()]
        assert currents == sorted(currents)
        assert source.resolution() > 0.0

    def test_all_ap_is_minimum_current(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=3)
        source.program(0b111)
        low = source.output_current()
        source.program(0b000)
        high = source.output_current()
        assert low < high

    def test_program_validation(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=2)
        with pytest.raises(ValueError):
            source.program(4)

    def test_dynamic_range(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=4)
        assert source.dynamic_range() > 1.5

    def test_levels_restore_state(self, pdk):
        source = ProgrammableCurrentSource(pdk, num_junctions=3)
        source.program(0b101)
        before = list(source.states)
        source.levels()
        assert source.states == before

    def test_rejects_bad_reference(self, pdk):
        with pytest.raises(ValueError):
            ProgrammableCurrentSource(pdk, reference_voltage=0.9)


class TestCellConfig:
    def test_render_parse_roundtrip(self, pdk):
        config = CellConfig(
            node_nm=45, pillar_diameter_nm=40.0,
            resistance_parallel=4774.0, resistance_antiparallel=10031.0,
            switching_current=1e-4, critical_current=1.5e-5,
            switching_delay=1.2e-9, write_pulse_width=6e-9,
            write_energy=1.4e-12, read_current=2.3e-5,
            read_delay=1e-10, read_energy=1.4e-14,
            leakage_current=1e-7, thermal_stability=34.7,
        )
        parsed = CellConfig.parse(config.render())
        assert parsed == config
        assert parsed.tmr() == pytest.approx(config.tmr())

    def test_parse_rejects_missing_key(self):
        with pytest.raises(ValueError):
            CellConfig.parse("node_nm = 45")
