"""Tests for the SPICE + MDL characterisation flow (Sec. IV-A)."""

import pytest

from repro.cells import CharacterizationSettings, characterize_cell
from repro.pdk import ProcessDesignKit


@pytest.fixture(scope="module")
def config45():
    return characterize_cell(ProcessDesignKit.for_node(45))


class TestCharacterizationFlow:
    def test_resistances_match_transport(self, config45):
        pdk = ProcessDesignKit.for_node(45)
        transport = pdk.mtj_transport()
        assert config45.resistance_parallel == pytest.approx(
            transport.state_resistance(False, 0.15), rel=1e-6
        )
        assert config45.resistance_antiparallel > config45.resistance_parallel

    def test_write_current_physical(self, config45):
        # Tens of microamps through the bit cell, well above I_c0.
        assert 20e-6 < config45.switching_current < 500e-6
        assert config45.switching_current > 2.0 * config45.critical_current

    def test_switching_delay_nanosecond(self, config45):
        assert 0.1e-9 < config45.switching_delay < 6e-9

    def test_write_energy_picojoule(self, config45):
        assert 0.05e-12 < config45.write_energy < 20e-12

    def test_read_nondestructive_and_fast(self, config45):
        assert 0.0 < config45.read_delay < 2e-9
        assert config45.read_current < config45.switching_current

    def test_read_energy_much_below_write(self, config45):
        assert config45.read_energy < 0.1 * config45.write_energy

    def test_thermal_stability_carried_over(self, config45):
        pdk = ProcessDesignKit.for_node(45)
        assert config45.thermal_stability == pytest.approx(
            pdk.switching_model().stability.delta
        )

    def test_node_recorded(self, config45):
        assert config45.node_nm == 45

    def test_settings_respected(self):
        pdk = ProcessDesignKit.for_node(45)
        settings = CharacterizationSettings(write_pulse_width=4e-9)
        config = characterize_cell(pdk, settings)
        assert config.write_pulse_width == 4e-9

    def test_65nm_also_characterizes(self):
        config = characterize_cell(ProcessDesignKit.for_node(65))
        assert config.node_nm == 65
        assert config.switching_current > 0.0
