"""Edge branches of the error-rate and Monte-Carlo kernels.

Unit tests for paths the campaign-level suites do not reach: stuck
(non-switching) cells through both the vectorised and scalar-reference
WER kernels, margin-solver input validation, the read-margin solve,
and the stuck-bit cap inside the scalar write reduction.
"""

import numpy as np
import pytest

from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import VAETSTT
from repro.vaet.error_rates import ErrorRateAnalysis
from repro.vaet.variation_model import SCALAR_REFERENCE_ENV

POPULATION = 200


@pytest.fixture(scope="module")
def tool():
    return VAETSTT(ProcessDesignKit.for_node(45), MemoryConfig(word_bits=16))


@pytest.fixture(scope="module")
def analysis(tool):
    return ErrorRateAnalysis(tool.engine, population=POPULATION, seed=11)


class TestStuckCells:
    STUCK = 3

    @pytest.fixture
    def stuck(self, analysis, monkeypatch):
        # Force a handful of non-switching cells: the sampled 45 nm
        # population is healthy, but the stuck branch must still count
        # each such cell at WER 1 in both kernels.
        switching = analysis._switching.copy()
        switching[: self.STUCK] = False
        monkeypatch.setattr(analysis, "_switching", switching)
        return analysis

    def test_scalar_matches_vector_with_stuck_cells(self, stuck, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        fast = stuck.mean_cell_wer(20e-9)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = stuck.mean_cell_wer(20e-9)
        assert fast == pytest.approx(reference, rel=1e-12)
        assert fast >= self.STUCK / POPULATION

    def test_long_pulse_floors_at_stuck_fraction(self, stuck):
        # Healthy cells decay to ~0 WER at a millisecond pulse; only
        # the stuck cells remain, each contributing exactly 1.
        assert stuck.mean_cell_wer(1e-3) == pytest.approx(
            self.STUCK / POPULATION, rel=1e-6
        )


class TestMarginValidation:
    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_write_margin_rejects_bad_target(self, analysis, target):
        with pytest.raises(ValueError, match="WER target"):
            analysis.write_margin(target)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_read_margin_rejects_bad_target(self, analysis, target):
        with pytest.raises(ValueError, match="RER target"):
            analysis.read_margin(target)


class TestReadMargin:
    def test_solves_the_rer_target(self, analysis):
        result = analysis.read_margin(1e-6)
        assert result.rer_target == 1e-6
        assert 1e-12 <= result.sense_time <= 1e-6
        # brentq runs at xtol 1e-4 in log space; the solved sense time
        # must land the word RER on the target well within that.
        assert analysis.word_rer(result.sense_time) == pytest.approx(
            1e-6, rel=1e-2
        )
        assert result.total_latency > result.sense_time

    def test_word_rer_nonpositive_time_is_certain_error(self, analysis):
        assert analysis.word_rer(0.0) == 1.0
        assert analysis.word_rer(-1e-9) == 1.0


class TestScalarWriteReduction:
    def test_stuck_bit_caps_word_latency(self, tool):
        engine = tool.engine
        bits = engine.word_bits
        times = np.full(2 * bits, 5e-9)
        times[3] = np.inf  # word 0 contains a stuck bit
        currents = np.full(2 * bits, 50e-6)
        samples = engine._sample_writes_scalar(
            times, currents, 2, margin_sigmas=0.0
        )
        assert samples.latency[0] == pytest.approx(
            engine._overhead + 2.0 * 100e-9
        )
        assert samples.latency[1] == pytest.approx(
            engine._overhead + 2.0 * 5e-9
        )
        assert np.all(np.isfinite(samples.energy))
        np.testing.assert_array_equal(samples.cell_times, times)

    def test_matches_vector_reduction_on_stuck_words(self, tool, monkeypatch):
        # The vectorised sample_writes caps stuck words at the same
        # 100 ns window; drive both reductions from identical per-cell
        # samples by pinning the RNG seed.
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        vector = tool.engine.sample_writes(np.random.default_rng(3), 40)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = tool.engine.sample_writes(np.random.default_rng(3), 40)
        np.testing.assert_allclose(
            vector.latency, reference.latency, rtol=1e-12
        )
