"""Scalar-reference vs vectorised VAET-STT kernels (``REPRO_VAET_SCALAR``).

The tentpole guarantee of the batch fast path: the vectorised kernels
in ``variation_model`` / ``montecarlo`` / ``error_rates`` are pinned
against cell-at-a-time reference implementations selected by the
``REPRO_VAET_SCALAR`` environment flag.

Equivalence comes in two strengths, matching what numpy can promise:

* **bit-identical RNG streams** — the scalar reference consumes the
  ``Generator`` stream in exactly the same order and quantity as one
  vectorised draw, so the generator state after sampling is equal and
  the raw draws are the same numbers;
* **last-ulp numerics** — array ufunc loops (SIMD) may round a rare
  element differently than their scalar counterparts, so derived
  columns agree to tight relative tolerance (~1e-13), and word-level
  aggregates (numpy pairwise sums vs ``math.fsum``) to ~1e-12.

Run by the ``vector-equivalence`` CI job across python/numpy corners.
"""

import math

import numpy as np
import pytest

from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import VAETSTT
from repro.vaet.error_rates import ErrorRateAnalysis
from repro.vaet.variation_model import (
    SCALAR_REFERENCE_ENV,
    scalar_reference_enabled,
)

#: Last-ulp tolerance for per-cell derived columns (array-vs-scalar
#: ufunc rounding) and word aggregates (pairwise sum vs fsum).
COLUMN_RTOL = 1e-13
AGGREGATE_RTOL = 1e-12

CELLS = 400
WORDS = 25


@pytest.fixture(scope="module")
def tool():
    # Narrow words keep the scalar (python-loop) reference fast while
    # still exercising word reductions over multiple bits.
    return VAETSTT(ProcessDesignKit.for_node(45), MemoryConfig(word_bits=16))


@pytest.fixture(scope="module")
def analysis(tool):
    return ErrorRateAnalysis(tool.engine, population=CELLS, seed=7)


@pytest.fixture
def scalar_mode(monkeypatch):
    monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")


def _columns(cells):
    return {
        "diameter": cells.diameter,
        "delta": cells.delta,
        "critical_current": cells.critical_current,
        "resistance_p": cells.resistance_p,
        "resistance_ap_write": cells.resistance_ap_write,
        "drive_strength": cells.drive_strength,
        "rate_prefactor": cells.rate_prefactor,
    }


class TestFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        assert not scalar_reference_enabled()

    def test_zero_and_empty_disable(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(SCALAR_REFERENCE_ENV, value)
            assert not scalar_reference_enabled()

    def test_one_enables(self, scalar_mode):
        assert scalar_reference_enabled()


class TestCellSampling:
    def test_rng_streams_bit_identical(self, tool, monkeypatch):
        """Both paths consume exactly the same generator stream."""
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        rng_vec = np.random.default_rng(11)
        tool.variation.sample_cells(rng_vec, CELLS)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        rng_ref = np.random.default_rng(11)
        tool.variation.sample_cells(rng_ref, CELLS)
        assert rng_vec.bit_generator.state == rng_ref.bit_generator.state
        # And the *next* draws coincide, so downstream sampling stays
        # aligned across the two paths.
        assert rng_vec.standard_normal() == rng_ref.standard_normal()

    def test_cell_columns_agree_to_last_ulp(self, tool, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        vector = tool.variation.sample_cells(np.random.default_rng(12), CELLS)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = tool.variation.sample_cells(np.random.default_rng(12), CELLS)
        for name, column in _columns(vector).items():
            np.testing.assert_allclose(
                column, _columns(reference)[name], rtol=COLUMN_RTOL,
                err_msg="column %s diverged" % name,
            )

    def test_switching_times_agree(self, tool, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        rng = np.random.default_rng(13)
        cells = tool.variation.sample_cells(rng, CELLS)
        vector = tool.variation.sample_switching_times(cells, rng)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        rng = np.random.default_rng(13)
        cells = tool.variation.sample_cells(rng, CELLS)
        reference = tool.variation.sample_switching_times(cells, rng)
        finite = np.isfinite(vector)
        assert np.array_equal(finite, np.isfinite(reference))
        np.testing.assert_allclose(
            vector[finite], reference[finite], rtol=AGGREGATE_RTOL
        )


class TestMonteCarloEngine:
    def _samples(self, tool, monkeypatch, method):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        vector = getattr(tool.engine, method)(np.random.default_rng(21), WORDS)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = getattr(tool.engine, method)(np.random.default_rng(21), WORDS)
        return vector, reference

    def test_sample_writes_equivalent(self, tool, monkeypatch):
        vector, reference = self._samples(tool, monkeypatch, "sample_writes")
        np.testing.assert_allclose(
            vector.latency, reference.latency, rtol=AGGREGATE_RTOL
        )
        np.testing.assert_allclose(
            vector.energy, reference.energy, rtol=AGGREGATE_RTOL
        )
        finite = np.isfinite(vector.cell_times)
        assert np.array_equal(finite, np.isfinite(reference.cell_times))
        np.testing.assert_allclose(
            vector.cell_times[finite],
            reference.cell_times[finite],
            rtol=AGGREGATE_RTOL,
        )

    def test_sample_reads_equivalent(self, tool, monkeypatch):
        vector, reference = self._samples(tool, monkeypatch, "sample_reads")
        np.testing.assert_allclose(
            vector.latency, reference.latency, rtol=AGGREGATE_RTOL
        )
        np.testing.assert_allclose(
            vector.energy, reference.energy, rtol=AGGREGATE_RTOL
        )
        np.testing.assert_allclose(
            vector.signal_currents,
            reference.signal_currents,
            rtol=COLUMN_RTOL,
        )


class TestErrorRates:
    PULSES = (2e-9, 5e-9, 12e-9, 40e-9)
    SENSE_TIMES = (0.2e-9, 0.5e-9, 1.5e-9, 4e-9)

    def test_mean_cell_wer_matches_reference(self, analysis, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        fast = [analysis.mean_cell_wer(pulse) for pulse in self.PULSES]
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = [analysis.mean_cell_wer(pulse) for pulse in self.PULSES]
        np.testing.assert_allclose(fast, reference, rtol=AGGREGATE_RTOL)
        assert analysis.mean_cell_wer(0.0) == 1.0

    def test_word_wer_matches_reference(self, analysis, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        fast = [analysis.word_wer(pulse) for pulse in self.PULSES]
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = [analysis.word_wer(pulse) for pulse in self.PULSES]
        np.testing.assert_allclose(fast, reference, rtol=AGGREGATE_RTOL)

    def test_word_rer_matches_reference(self, analysis, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        fast = [analysis.word_rer(t) for t in self.SENSE_TIMES]
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = [analysis.word_rer(t) for t in self.SENSE_TIMES]
        np.testing.assert_allclose(fast, reference, rtol=AGGREGATE_RTOL)

    def test_word_wer_batch_matches_scalar_calls(self, analysis, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        pulses = np.array(self.PULSES)
        batch = analysis.word_wer(pulses)
        assert isinstance(batch, np.ndarray) and batch.shape == pulses.shape
        scalars = [analysis.word_wer(float(pulse)) for pulse in pulses]
        np.testing.assert_allclose(batch, scalars, rtol=AGGREGATE_RTOL)

    def test_word_rer_batch_matches_scalar_calls(self, analysis, monkeypatch):
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        times = np.array(self.SENSE_TIMES)
        batch = analysis.word_rer(times)
        assert isinstance(batch, np.ndarray) and batch.shape == times.shape
        scalars = [analysis.word_rer(float(t)) for t in times]
        np.testing.assert_allclose(batch, scalars, rtol=AGGREGATE_RTOL)

    def test_batch_handles_nonpositive_entries(self, analysis):
        batch = analysis.word_wer(np.array([0.0, -1e-9, 5e-9]))
        assert batch[0] == 1.0 and batch[1] == 1.0 and batch[2] < 1.0
        rer = analysis.word_rer(np.array([0.0, 1e-9]))
        assert rer[0] == 1.0 and rer[1] < 1.0

    def test_margin_solves_agree(self, analysis, monkeypatch):
        """The brentq margin solves land on the same pulse both ways."""
        monkeypatch.delenv(SCALAR_REFERENCE_ENV, raising=False)
        fast = analysis.write_margin(1e-6)
        monkeypatch.setenv(SCALAR_REFERENCE_ENV, "1")
        reference = analysis.write_margin(1e-6)
        # brentq xtol 1e-4 in log space bounds the solver spread.
        assert fast.pulse_width == pytest.approx(
            reference.pulse_width, rel=1e-3
        )
        assert math.isfinite(fast.total_latency)
