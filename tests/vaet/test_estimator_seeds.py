"""Fast seed-threading tests for VAETSTT (kept out of the slow tier).

The heavyweight Table-1 suites carry the ``slow`` marker, so these
small-population checks keep the new seed semantics covered in the
``-m "not slow"`` loop.
"""

import pytest

from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import VAETSTT


@pytest.fixture(scope="module")
def tool():
    config = MemoryConfig(
        rows=512, cols=512, word_bits=64, subarray_rows=128, subarray_cols=128
    )
    return VAETSTT(
        ProcessDesignKit.for_node(45), config, error_population=10_000
    )


class TestEstimateSeed:
    def test_default_matches_tool_seed(self, tool):
        a = tool.estimate(num_words=200)
        b = tool.estimate(num_words=200, seed=tool.seed)
        assert a.write_latency.mean == b.write_latency.mean
        assert a.read_energy.mean == b.read_energy.mean

    def test_explicit_seed_reproducible(self, tool):
        a = tool.estimate(num_words=200, seed=7)
        b = tool.estimate(num_words=200, seed=7)
        assert a.write_latency.mean == b.write_latency.mean

    def test_different_seed_different_samples(self, tool):
        a = tool.estimate(num_words=200, seed=7)
        b = tool.estimate(num_words=200, seed=8)
        assert a.write_latency.mean != b.write_latency.mean


class TestErrorRatesSeed:
    def test_default_cached(self, tool):
        assert tool.error_rates() is tool.error_rates()

    def test_cached_per_seed(self, tool):
        default = tool.error_rates()
        other = tool.error_rates(seed=7)
        assert other is not default
        assert tool.error_rates(seed=7) is other

    def test_tool_seed_aliases_default(self, tool):
        assert tool.error_rates(seed=tool.seed) is tool.error_rates()


class TestErrorPopulation:
    def test_population_knob_respected(self, tool):
        assert tool.error_rates().cells.diameter.shape[0] == 10_000
