"""Corner-aware VAET runs and stuck-cell failure injection."""

import dataclasses

import numpy as np
import pytest

from repro.nvsim import MemoryConfig
from repro.pdk import CornerName, MagneticCornerName, ProcessDesignKit
from repro.pdk.variation import CMOSVariation, MTJVariation, ProcessVariation
from repro.vaet import VAETSTT


@pytest.fixture(scope="module")
def array():
    return MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )


class TestCornersThroughVAET:
    def test_slow_corner_slower_writes(self, array):
        tt = VAETSTT(ProcessDesignKit.for_node(45, cmos_corner=CornerName.TT), array)
        ss = VAETSTT(ProcessDesignKit.for_node(45, cmos_corner=CornerName.SS), array)
        assert (
            ss.nvsim.estimate().write_latency > tt.nvsim.estimate().write_latency
        )

    def test_fast_corner_faster_writes(self, array):
        tt = VAETSTT(ProcessDesignKit.for_node(45, cmos_corner=CornerName.TT), array)
        ff = VAETSTT(ProcessDesignKit.for_node(45, cmos_corner=CornerName.FF), array)
        assert (
            ff.nvsim.estimate().write_latency < tt.nvsim.estimate().write_latency
        )

    def test_high_ra_corner_lowers_write_current(self, array):
        nominal = VAETSTT(ProcessDesignKit.for_node(45), array)
        high_ra = VAETSTT(
            ProcessDesignKit.for_node(
                45, magnetic_corner=MagneticCornerName.HIGH_RA
            ),
            array,
        )
        assert (
            high_ra.nvsim.subarray.write_current()
            < nominal.nvsim.subarray.write_current()
        )

    def test_weak_pma_corner_lowers_delta(self, array):
        nominal = VAETSTT(ProcessDesignKit.for_node(45), array)
        weak = VAETSTT(
            ProcessDesignKit.for_node(
                45, magnetic_corner=MagneticCornerName.WEAK_PMA
            ),
            array,
        )
        d_nominal = nominal.nvsim.subarray._switching.stability.delta
        d_weak = weak.nvsim.subarray._switching.stability.delta
        assert d_weak < d_nominal


class TestStuckCellInjection:
    def _tool_with_mgo_sigma(self, array, mgo_sigma):
        """Stuck cells come from the RA tail: MgO thickness is
        *exponential* in resistance, so a thick-barrier outlier starves
        the write path below I_c0 — CD spread alone cannot do this
        (smaller pillars lose I_c0 as fast as they lose current)."""
        pdk = ProcessDesignKit.for_node(45)
        variation = ProcessVariation(
            cmos=CMOSVariation(k_prime_sigma_rel=0.17),
            mtj=MTJVariation(mgo_thickness_sigma_rel=mgo_sigma),
        )
        return VAETSTT(dataclasses.replace(pdk, variation=variation), array)

    def test_thick_barrier_tail_creates_stuck_floor(self, array):
        """Failure injection: a pathological MgO spread produces cells
        whose delivered current never exceeds I_c0; the WER solve must
        refuse targets below that floor instead of lying."""
        tool = self._tool_with_mgo_sigma(array, 0.06)
        analysis = tool.error_rates()
        stuck_fraction = float(np.mean(analysis._rates <= 0.0))
        assert stuck_fraction > 0.0
        with pytest.raises(ValueError, match="stuck-cell floor|error correction"):
            analysis.write_margin(stuck_fraction / 100.0)

    def test_healthy_population_has_no_floor(self, array):
        tool = self._tool_with_mgo_sigma(array, 0.005)
        analysis = tool.error_rates()
        assert float(np.mean(analysis._rates <= 0.0)) == 0.0
        margin = analysis.write_margin(1e-12)
        assert margin.pulse_width > 0.0

    def test_word_wer_saturates_at_stuck_floor(self, array):
        tool = self._tool_with_mgo_sigma(array, 0.06)
        analysis = tool.error_rates()
        stuck_fraction = float(np.mean(analysis._rates <= 0.0))
        # Even an absurdly long pulse cannot beat the stuck population.
        floor = analysis.word_wer(1e-3)
        assert floor >= stuck_fraction
