"""Tests for VAET-STT: variation model, Monte Carlo, margins, ECC, disturb."""

import math

import numpy as np
import pytest

from repro.core.geometry import oblate_spheroid_demag_factor
from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import (
    VAETSTT,
    bch_parity_bits,
    block_failure_probability,
    exceedance_quantile,
    oblate_demag_factor_vec,
    per_bit_budget,
    summarize,
)

pytestmark = pytest.mark.slow  # module-scope Monte Carlo fixtures


@pytest.fixture(scope="module")
def table1_config():
    return MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )


@pytest.fixture(scope="module")
def tool45(table1_config):
    return VAETSTT(ProcessDesignKit.for_node(45), table1_config)


@pytest.fixture(scope="module")
def tool65(table1_config):
    return VAETSTT(ProcessDesignKit.for_node(65), table1_config)


@pytest.fixture(scope="module")
def estimate45(tool45):
    return tool45.estimate(num_words=2000)


@pytest.fixture(scope="module")
def estimate65(tool65):
    return tool65.estimate(num_words=2000)


class TestVariationModel:
    def test_vectorised_demag_matches_scalar(self):
        aspects = np.array([2.0, 10.0, 40.0, 100.0])
        vector = oblate_demag_factor_vec(aspects)
        for aspect, value in zip(aspects, vector):
            assert value == pytest.approx(oblate_spheroid_demag_factor(aspect))

    def test_cell_samples_physical(self, tool45):
        rng = np.random.default_rng(0)
        cells = tool45.variation.sample_cells(rng, 5000)
        assert np.all(cells.diameter > 0.0)
        assert np.all(cells.delta > 0.0)
        assert np.all(cells.resistance_p > 0.0)
        assert np.all(cells.critical_current > 0.0)

    def test_delivered_current_above_critical_for_most(self, tool45):
        rng = np.random.default_rng(1)
        cells = tool45.variation.sample_cells(rng, 5000)
        current = tool45.variation.delivered_write_current(cells)
        overdrive = current / cells.critical_current
        assert np.mean(overdrive > 1.0) > 0.99

    def test_switching_times_positive_finite_mostly(self, tool45):
        rng = np.random.default_rng(2)
        cells = tool45.variation.sample_cells(rng, 5000)
        times = tool45.variation.sample_switching_times(cells, rng)
        finite = np.isfinite(times)
        assert np.mean(finite) > 0.99
        assert np.all(times[finite] > 0.0)

    def test_seed_reproducibility(self, tool45):
        a = tool45.variation.sample_cells(np.random.default_rng(9), 100)
        b = tool45.variation.sample_cells(np.random.default_rng(9), 100)
        assert np.allclose(a.diameter, b.diameter)
        assert np.allclose(a.resistance_p, b.resistance_p)


class TestDistributions:
    def test_summarize_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.p50 == pytest.approx(2.5)
        assert summary.count == 4

    def test_summarize_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0, float("inf")])

    def test_exceedance_within_range(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(1.0, 100_000)
        q = exceedance_quantile(samples, 0.01)
        assert q == pytest.approx(-math.log(0.01), rel=0.1)

    def test_exceedance_extrapolates_tail(self):
        rng = np.random.default_rng(4)
        samples = rng.exponential(1.0, 50_000)
        q = exceedance_quantile(samples, 1e-9)
        assert q == pytest.approx(-math.log(1e-9), rel=0.25)

    def test_exceedance_validation(self):
        with pytest.raises(ValueError):
            exceedance_quantile(np.array([1.0]), 1.5)


class TestTable1Shapes:
    def test_variation_mean_far_above_nominal_write(self, estimate45):
        # The paper's headline: mu is much higher than nominal.
        assert estimate45.write_latency.mean > 1.8 * estimate45.nominal.write_latency
        assert estimate45.write_energy.mean > 1.8 * estimate45.nominal.write_energy

    def test_write_sigma_nanosecond_scale(self, estimate45):
        assert 0.3e-9 < estimate45.write_latency.std < 4e-9

    def test_read_sigma_tiny(self, estimate45):
        assert estimate45.read_latency.std < 0.1 * estimate45.write_latency.std

    def test_read_energy_sigma_negligible(self, estimate45):
        assert estimate45.read_energy.std < 0.01 * estimate45.read_energy.mean

    def test_smaller_node_noisier(self, estimate45, estimate65):
        # sigma(45 nm) > sigma(65 nm) for the write latency (Table 1);
        # for reads, where the 65 nm baseline develop time is longer in
        # absolute terms, the ordering holds for the relative sigma.
        assert estimate45.write_latency.std > estimate65.write_latency.std
        rel45 = estimate45.read_latency.std / estimate45.read_latency.mean
        rel65 = estimate65.read_latency.std / estimate65.read_latency.mean
        assert rel45 > rel65

    def test_render_table(self, estimate45):
        text = estimate45.render()
        assert "nominal" in text and "sigma" in text


class TestErrorRateMargins:
    def test_write_margin_hits_target(self, tool45):
        analysis = tool45.error_rates()
        result = analysis.write_margin(1e-8)
        achieved = analysis.word_wer(result.pulse_width)
        assert achieved == pytest.approx(1e-8, rel=0.05)

    def test_tighter_wer_longer_latency(self, tool45):
        analysis = tool45.error_rates()
        latencies = [
            analysis.write_margin(target).total_latency
            for target in (1e-5, 1e-10, 1e-15)
        ]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_wer_monotone_in_pulse(self, tool45):
        analysis = tool45.error_rates()
        assert analysis.word_wer(2e-9) > analysis.word_wer(10e-9)

    def test_tighter_rer_longer_latency(self, tool45):
        analysis = tool45.error_rates()
        latencies = [
            analysis.read_margin(target).total_latency
            for target in (1e-5, 1e-10, 1e-15)
        ]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_read_margin_much_below_write(self, tool45):
        analysis = tool45.error_rates()
        read = analysis.read_margin(1e-10).total_latency
        write = analysis.write_margin(1e-10).total_latency
        assert read < 0.2 * write

    def test_margin_validation(self, tool45):
        analysis = tool45.error_rates()
        with pytest.raises(ValueError):
            analysis.write_margin(0.0)
        with pytest.raises(ValueError):
            analysis.read_margin(1.0)


class TestECC:
    def test_parity_bits(self):
        assert bch_parity_bits(1024, 0) == 0
        assert bch_parity_bits(1024, 1) == 11
        assert bch_parity_bits(1024, 3) == 33

    def test_block_failure_edges(self):
        assert block_failure_probability(100, 0.0, 1) == 0.0
        assert block_failure_probability(100, 1.0, 1) == 1.0

    def test_per_bit_budget_loosens_with_t(self):
        budgets = [per_bit_budget(1024, t, 1e-18) for t in (0, 1, 2, 3)]
        assert budgets == sorted(budgets)
        assert budgets[1] > 1e4 * budgets[0]

    def test_per_bit_budget_verifies(self):
        p = per_bit_budget(1024, 2, 1e-12)
        assert block_failure_probability(1024, p, 2) == pytest.approx(1e-12, rel=0.05)

    def test_fig8_shape(self, tool45):
        # Drastic 0->1 improvement, diminishing returns beyond.
        points = tool45.ecc().sweep(3, 1e-18)
        latencies = [p.total_latency for p in points]
        assert latencies[0] > latencies[1] > latencies[2] > latencies[3]
        first_gain = latencies[0] - latencies[1]
        second_gain = latencies[1] - latencies[2]
        assert first_gain > 1.5 * second_gain

    def test_ecc_storage_overhead_grows(self, tool45):
        points = tool45.ecc().sweep(2, 1e-15)
        overheads = [p.storage_overhead for p in points]
        assert overheads[0] == 0.0
        assert overheads[1] < overheads[2]

    def test_decoder_latency_grows_with_t(self, tool45):
        ecc = tool45.ecc()
        assert ecc.decoder_latency(0, 1024) == 0.0
        assert ecc.decoder_latency(2, 1046) > ecc.decoder_latency(1, 1035)


class TestReadDisturb:
    def test_monotone_in_period(self, tool45):
        disturb = tool45.read_disturb()
        sweep = disturb.sweep([1e-9, 10e-9, 100e-9])
        probabilities = [p.per_bit_probability for p in sweep]
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_per_word_union_bound(self, tool45):
        disturb = tool45.read_disturb()
        point = disturb.point(5e-9)
        assert point.per_word_probability <= 1.0
        assert point.per_word_probability >= point.per_bit_probability

    def test_max_read_period_respects_budget(self, tool45):
        disturb = tool45.read_disturb()
        budget = 1e-6
        period = disturb.max_read_period(budget)
        achieved = disturb.point(period).per_word_probability
        assert achieved <= budget * 1.3

    def test_rejects_negative_period(self, tool45):
        with pytest.raises(ValueError):
            tool45.read_disturb().per_bit_probability(-1.0)
