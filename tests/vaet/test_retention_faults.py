"""Tests for the retention-fault / scrubbing analysis."""

import pytest

from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import RetentionFaultModel, VAETSTT


@pytest.fixture(scope="module")
def retention_tool():
    """VAET on a retention-grade pillar (the design_memory_mss point)."""
    config = MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )
    pdk = ProcessDesignKit.for_node(45, pillar_diameter=48e-9)
    return VAETSTT(pdk, config)


@pytest.fixture(scope="module")
def model(retention_tool):
    return RetentionFaultModel(
        retention_tool.error_rates(), ecc_correct_bits=1, screen_quantile=0.001
    )


class TestFlipStatistics:
    def test_flip_probability_monotone_in_interval(self, model):
        p1 = model.per_bit_flip_probability(3600.0)
        p2 = model.per_bit_flip_probability(86400.0)
        assert 0.0 <= p1 < p2 <= 1.0

    def test_word_failure_above_bit_failure_scale(self, model):
        interval = 86400.0
        p_bit = model.per_bit_flip_probability(interval)
        p_word = model.word_failure_probability(interval)
        # With t=1, the word needs >= 2 flips: p_word << n * p_bit.
        assert p_word < 1024 * p_bit

    def test_ecc_strength_reduces_word_failure(self, retention_tool):
        weak = RetentionFaultModel(retention_tool.error_rates(), ecc_correct_bits=0)
        strong = RetentionFaultModel(retention_tool.error_rates(), ecc_correct_bits=2)
        interval = 86400.0
        assert strong.word_failure_probability(interval) < weak.word_failure_probability(
            interval
        )

    def test_heat_accelerates_flips(self, retention_tool):
        cold = RetentionFaultModel(retention_tool.error_rates(), temperature_factor=1.0)
        hot = RetentionFaultModel(retention_tool.error_rates(), temperature_factor=1.2)
        assert hot.per_bit_flip_probability(3600.0) > cold.per_bit_flip_probability(
            3600.0
        )

    def test_screening_helps(self, retention_tool):
        raw = RetentionFaultModel(retention_tool.error_rates(), screen_quantile=0.0)
        screened = RetentionFaultModel(
            retention_tool.error_rates(), screen_quantile=0.005
        )
        assert screened.per_bit_flip_probability(
            86400.0
        ) < raw.per_bit_flip_probability(86400.0)

    def test_validation(self, retention_tool):
        analysis = retention_tool.error_rates()
        with pytest.raises(ValueError):
            RetentionFaultModel(analysis, ecc_correct_bits=-1)
        with pytest.raises(ValueError):
            RetentionFaultModel(analysis, temperature_factor=0.0)
        with pytest.raises(ValueError):
            RetentionFaultModel(analysis, screen_quantile=0.9)


class TestScrubDesign:
    def test_fit_falls_with_faster_scrubbing(self, model):
        fast = model.point(600.0)
        slow = model.point(7 * 86400.0)
        assert fast.array_fit < slow.array_fit

    def test_scrub_interval_solve_consistent(self, model):
        target = 1e6
        interval = model.scrub_interval_for_fit(target)
        achieved = model.point(interval).array_fit
        assert achieved == pytest.approx(target, rel=0.1)

    def test_unreachable_fit_raises(self, model):
        with pytest.raises(ValueError):
            model.scrub_interval_for_fit(1e-6)

    def test_scrub_energy_scales_with_rate(self, model):
        fast = model.scrub_energy_per_day(3600.0, 10e-12)
        slow = model.scrub_energy_per_day(86400.0, 10e-12)
        assert fast == pytest.approx(24.0 * slow)

    def test_sweep(self, model):
        points = model.sweep([3600.0, 86400.0])
        assert len(points) == 2
        assert points[0].scrub_interval == 3600.0


class TestCacheGradeFinding:
    def test_write_calibrated_array_is_cache_grade(self):
        """The Table-1 array (Delta ~ 35) cannot hold data for years —
        the quantitative version of the paper's 'adjustable retention':
        small pillars trade retention for write current, which is fine
        for cache but requires scrubbing for storage."""
        config = MemoryConfig(
            rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
        )
        cache_tool = VAETSTT(ProcessDesignKit.for_node(45), config)
        cache_model = RetentionFaultModel(cache_tool.error_rates())
        day = cache_model.per_bit_flip_probability(86400.0)
        assert day > 1e-6  # noticeably volatile at the day scale
