"""Multi-writer cache stress: 8 processes, overlapping keys, torn writes.

The multi-host claim of the worker-pull executor rests on the cache
being multi-writer safe with zero locks.  These tests hammer one store
from 8 concurrent processes (plain and sharded), inject torn writes
afterwards, and prove the three invariants the design promises:

* no reader ever observes a torn or missing record (read-your-writes
  under concurrent replacement);
* membership, ``get`` and the session counters stay mutually
  consistent, with corrupt files quarantined on first contact;
* merging shard directories that were written concurrently is
  idempotent and converges to the union.
"""

import json
import os
import random

from repro.dse import ResultCache, ShardedResultCache, content_key, merge_caches
from test_utils import spawn_hammers, torn_write

KEYS = [content_key("stress", {"i": i}) for i in range(32)]


def _assert_store_sane(cache, keys):
    """get/contains/counters agree for every key; no unparseable member."""
    present = 0
    for key in keys:
        record = cache.get(key)
        member = key in cache
        assert member == (record is not None)
        if record is not None:
            present += 1
            assert record["key"] == key
    assert cache.hits == present
    assert cache.misses == len(keys) - present
    return present


class TestConcurrentWriters:
    def test_eight_processes_one_plain_cache(self, tmp_path):
        root = str(tmp_path / "plain")
        exitcodes = spawn_hammers(root, KEYS, processes=8, rounds=8)
        assert exitcodes == [0] * 8  # no hammer saw a torn/missing read
        cache = ResultCache(root)
        assert _assert_store_sane(cache, KEYS) == len(KEYS)
        # Every surviving record is one whole, parseable JSON document.
        for key in KEYS:
            with open(cache.path_for(key)) as handle:
                assert json.load(handle)["key"] == key

    def test_eight_processes_one_sharded_cache(self, tmp_path):
        root = str(tmp_path / "sharded")
        exitcodes = spawn_hammers(root, KEYS, processes=8, rounds=8, shards=4)
        assert exitcodes == [0] * 8
        cache = ShardedResultCache(root, shards=4)
        assert _assert_store_sane(cache, KEYS) == len(KEYS)
        assert len(cache) == len(KEYS)

    def test_torn_writes_quarantined_after_the_stampede(self, tmp_path):
        """Records torn post-hoc read as misses, exactly once, forever."""
        root = str(tmp_path / "torn")
        assert spawn_hammers(root, KEYS, processes=4, rounds=4) == [0] * 4
        cache = ResultCache(root)
        rng = random.Random(2018)
        torn_keys = sorted(rng.sample(KEYS, 8))
        for key in torn_keys:
            path = cache.path_for(key)
            torn_write(path, rng.randrange(1, os.path.getsize(path)))
        present = _assert_store_sane(cache, KEYS)
        assert present == len(KEYS) - len(torn_keys)
        assert cache.corrupt == len(torn_keys)
        # Quarantine means the bad bytes moved aside: a re-read is a
        # plain miss (no re-parse), and a re-put repairs the slot.
        for key in torn_keys:
            assert os.path.exists(cache.path_for(key) + ".corrupt")
            assert not os.path.exists(cache.path_for(key))
            cache.put(key, {"key": key, "repaired": True})
            assert cache.get(key)["repaired"] is True

    def test_concurrent_shard_merge_is_idempotent(self, tmp_path):
        """Shards written by racing processes merge to one clean union."""
        roots = [str(tmp_path / ("worker-%d" % i)) for i in range(2)]
        # Overlapping key sets: both shard dirs hold half the keys in
        # common, simulating two workers that both evaluated them.
        assert spawn_hammers(roots[0], KEYS[:24], processes=4, rounds=4) == [0] * 4
        assert spawn_hammers(roots[1], KEYS[8:], processes=4, rounds=4) == [0] * 4
        dest = ShardedResultCache(str(tmp_path / "merged"), shards=4)
        first = merge_caches(dest, roots)
        # 24 + 24 source records with 16 keys in common: the union is
        # copied once, the second copy of the overlap skips.
        assert first["merged"] == len(KEYS)
        assert first["skipped"] == 16
        assert first["corrupt"] == 0
        assert len(dest) == len(KEYS)
        again = merge_caches(dest, roots)
        assert again["merged"] == 0
        assert again["skipped"] == 48
        assert len(dest) == len(KEYS)
        for key in KEYS:
            record = dest.get(key)
            assert record is not None and record["key"] == key
